//! Offline shim for the `parking_lot` lock API over `std::sync`.
//!
//! `parking_lot` locks do not poison: a panic while holding the lock leaves
//! it usable. The shim reproduces that by unwrapping `PoisonError` into the
//! inner guard.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
