//! Offline shim for `crossbeam::scope`, backed by `std::thread::scope`
//! (stable since Rust 1.63, which makes the crossbeam dependency
//! unnecessary for plain scoped spawning).

use std::any::Any;
use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`: `spawn` passes the
/// scope back into the closure so workers can spawn further workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns.
///
/// `std::thread::scope` re-raises child panics at join time, so the `Err`
/// variant of the crossbeam-style result is never actually produced; it is
/// kept so call sites written against crossbeam compile unchanged.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn workers_can_respawn() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}
