//! Offline shim for the slice of the `proptest` API this workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert!` macros, `Strategy` with
//! `prop_map` and `boxed`, integer ranges and tuples as strategies, `any`,
//! and the `prop::{collection::vec, sample::select, option::of}` helpers.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case panics with the case number; re-run
//!   with the same seed (generation is deterministic per test name) to
//!   reproduce it exactly.
//! * `prop_assert!` / `prop_assert_eq!` are plain `assert!` / `assert_eq!`.
//! * The default case count is 64 (`ProptestConfig::default()`), and
//!   `PROPTEST_CASES` overrides it, as in real proptest.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name, so
    /// every run of a given property replays the same case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut state: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x100000001b3);
            }
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values — the shim keeps proptest's name and
    /// `Value` associated type but generates directly (no value trees, no
    /// shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy, produced by `Strategy::boxed` and `prop_oneof!`.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen through i128 so signed ranges (e.g. -100..100i8,
                    // where end - start overflows the type) measure their
                    // span correctly; the wrapping add then lands in range
                    // by two's-complement arithmetic for every listed type.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for a `Vec<T>` (module mirrors `proptest::collection`).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Uniform pick from a fixed list (`proptest::sample::select`).
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }

    pub(crate) fn select_strategy<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    /// `None` or `Some(inner)`, 50/50 (`proptest::option::of`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.flip() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    pub(crate) fn option_strategy<S>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            (rng.next_u64() >> 32) as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// The strategy returned by `any`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{vec_strategy, Strategy, VecStrategy};
    use std::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, size)
    }
}

/// `proptest::sample` — sampling from fixed collections.
pub mod sample {
    use crate::strategy::{select_strategy, Select};

    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        select_strategy(choices)
    }
}

/// `proptest::option` — strategies for `Option<T>`.
pub mod option {
    use crate::strategy::{option_strategy, OptionStrategy, Strategy};

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        option_strategy(inner)
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` re-export module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines `#[test]` functions that run a property over generated cases.
///
/// Supports the subset of proptest's grammar used here: an optional leading
/// `#![proptest_config(EXPR)]`, then any number of attributed test
/// functions whose arguments are `name in strategy_expr` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic per test name; rerun reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Uniform choice among the listed strategies; all arms must produce the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Shim `prop_assert!`: a plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Shim `prop_assert_eq!`: a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Shim `prop_assert_ne!`: a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("smoke");
        let s = (0..5usize, 1..4u32).prop_map(|(a, b)| a as u32 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..8).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_spanning_zero_stay_in_bounds() {
        // Regression: `end - start` used to overflow the element type for
        // signed ranges wider than the type's positive half.
        let mut rng = crate::test_runner::TestRng::from_name("signed");
        let bytes = -100..100i8;
        let wide = i64::MIN..i64::MAX;
        for _ in 0..500 {
            let b = bytes.generate(&mut rng);
            assert!((-100..100).contains(&b));
            let w = wide.generate(&mut rng);
            assert!(w < i64::MAX);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_name("arms");
        let s = prop_oneof![0..1usize, 10..11usize, 20..21usize];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [0, 10, 20].into_iter().collect());
    }

    #[test]
    fn collection_vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::from_name("vecs");
        let s = prop::collection::vec(0..3usize, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn select_and_option_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("sel");
        let s = prop::option::of(prop::sample::select(vec!["a", "b"]));
        let mut nones = 0;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                None => nones += 1,
                Some(x) => assert!(x == "a" || x == "b"),
            }
        }
        assert!(nones > 10 && nones < 90);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, config, and doc-comment metas.
        #[test]
        fn macro_binds_arguments(x in 0..10usize, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
