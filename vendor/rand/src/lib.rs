//! Offline shim for the slice of the `rand` 0.8 API this workspace uses:
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer ranges, and `rngs::StdRng`.
//!
//! The generator is splitmix64 — deterministic, seedable, and statistically
//! fine for sampling candidate executions; it is NOT the real `StdRng`
//! (ChaCha12) and must not be used for anything security-relevant.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        // The casts are identities for the widest types in the list.
        #[allow(clippy::unnecessary_cast)]
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        #[allow(clippy::unnecessary_cast)]
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                // Widen before the +1: for a full-width u64/usize range the
                // span wraps to 0, which selects the every-value branch
                // instead of overflowing in debug builds.
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0..=4u32);
            assert!(y <= 4);
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        // Regression: the span `+ 1` used to overflow in debug builds for
        // full-width inclusive ranges before reaching the every-value branch.
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(0..=usize::MAX);
        let x = rng.gen_range(250..=u8::MAX);
        assert!(x >= 250);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
