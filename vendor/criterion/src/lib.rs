//! Offline shim for the slice of the `criterion` API this workspace uses.
//!
//! It is a real harness, not a stub: `Bencher::iter` times the closure over
//! `sample_size` samples after a short warm-up and reports min / mean / max
//! per iteration. There is no statistical outlier analysis, HTML report, or
//! baseline comparison — swap in real criterion for those.
//!
//! Environment knobs:
//! * `BENCH_SAMPLE_SIZE` — override every group's sample size (CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        match &self.name {
            Some(n) => format!("{n}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId::from_parameter(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId::from_parameter(s)
    }
}

/// Hands the measurement closure to the benchmark body.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let samples = self
            .criterion
            .sample_size_override
            .unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.label()), &bencher.durations);
    }
}

fn report(label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    println!(
        "{label:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The harness entry point, created by `criterion_main!`.
pub struct Criterion {
    sample_size_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size_override = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok());
        Criterion {
            sample_size_override,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", f);
        group.finish();
        self
    }
}

/// Declares a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target. Arguments passed by
/// `cargo bench` (e.g. `--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("compute", 8).label(), "compute/8");
        assert_eq!(BenchmarkId::from_parameter("SB").label(), "SB");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            durations: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.durations.len(), 5);
        assert_eq!(count, 6); // 5 samples + 1 warm-up
    }
}
