//! E7 — Theorem 4.8 (completeness): every valid axiomatic execution of a
//! program is reachable through the RA semantics.
//!
//! Mechanised as a round trip: explore the program under the
//! *pre-execution* semantics to termination; enumerate every `(rf, mo)`
//! justification of each pre-execution (Definition 4.3); replay each
//! justification through the RA semantics along a linearization of
//! `sb ∪ rf`, asserting the prefix equality of Theorem 4.8 at every step.
//! Conversely, every RA-reachable final state must appear among the
//! justifications of its own event/sb skeleton.

use c11_operational::axiomatic::justify::justifications;
use c11_operational::axiomatic::replay::replay;
use c11_operational::prelude::*;
use std::collections::HashSet;

fn completeness_round_trip(src: &str) -> (usize, usize) {
    let prog = parse_program(src).unwrap();

    // Forward: PE finals → justifications → RA replay.
    let pe = Explorer::new(PreExecutionModel::for_program(&prog));
    let pe_res = pe.explore(&prog, ExploreConfig::default());
    assert!(!pe_res.truncated, "PE exploration must finish");
    let mut replayed = 0usize;
    let mut justified: HashSet<_> = HashSet::new();
    for f in &pe_res.finals {
        for j in justifications(&f.mem) {
            replay(&j).unwrap_or_else(|e| {
                panic!(
                    "completeness violated: {e:?} for\n{}",
                    j.render(&prog.var_names)
                )
            });
            justified.insert(j.canonical());
            replayed += 1;
        }
    }

    // Backward: every RA-reachable final state is one of the justified
    // executions (soundness meets completeness: the two sets coincide).
    let ra = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
    assert!(!ra.truncated);
    let mut ra_finals = HashSet::new();
    for f in &ra.finals {
        assert!(
            justified.contains(&f.mem.canonical()),
            "RA-reachable state missing from the justification set:\n{}",
            f.mem.render(&prog.var_names)
        );
        ra_finals.insert(f.mem.canonical());
    }
    // And the sets are *equal*: every justified execution is RA-reachable
    // as a final state of the program.
    assert_eq!(
        justified, ra_finals,
        "justified executions and RA-final states must coincide"
    );
    (replayed, ra_finals.len())
}

#[test]
fn e7_completeness_example_4_5() {
    let (replayed, finals) = completeness_round_trip(
        "vars x z;
         thread t1 { z := x; }
         thread t2 { x := 5; }",
    );
    assert!(replayed >= 2);
    assert!(finals >= 2);
}

#[test]
fn e7_completeness_message_passing() {
    let (replayed, _) = completeness_round_trip(
        "vars d f;
         thread t1 { d := 1; f :=R 1; }
         thread t2 { r0 <-A f; r1 <- d; }",
    );
    assert!(replayed >= 3);
}

#[test]
fn e7_completeness_store_buffering() {
    let (replayed, finals) = completeness_round_trip(
        "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }",
    );
    // SB has 4 read outcomes × mo orders.
    assert!(replayed >= 4);
    assert!(finals >= 4);
}

#[test]
fn e7_completeness_with_updates() {
    let (replayed, _) = completeness_round_trip(
        "vars x;
         thread t1 { x.swap(1); }
         thread t2 { x.swap(2); r0 <- x; }",
    );
    assert!(replayed >= 2);
}

#[test]
fn e7_completeness_three_threads() {
    let (replayed, _) = completeness_round_trip(
        "vars x;
         thread t1 { x := 1; }
         thread t2 { x := 2; }
         thread t3 { r0 <- x; }",
    );
    assert!(replayed >= 6, "3 read choices × 2 mo orders at least");
}
