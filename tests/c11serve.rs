//! `c11serve` end to end: request JSON lines in on stdin, one report
//! line per request (in request order) plus a `batch-summary` line out,
//! malformed lines answered with error reports, and the exit code
//! reflecting errors and litmus failures.

use c11_operational::api::json::Json;
use std::process::{Command, Stdio};

fn run_c11serve(args: &[&str], stdin: &str) -> (bool, Vec<Json>) {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "--quiet", "--bin", "c11serve", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn cargo run c11serve");
    {
        use std::io::Write as _;
        child
            .stdin
            .take()
            .unwrap()
            .write_all(stdin.as_bytes())
            .unwrap();
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let lines = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {l}")))
        .collect();
    (out.status.success(), lines)
}

fn s<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

const SB: &str = "vars x y; thread t1 { x := 1; r0 <- y; } thread t2 { y := 1; r0 <- x; }";

#[test]
fn clean_stream_round_trips_in_order_with_cache_hits() {
    let input = format!(
        concat!(
            "{{\"id\":\"sb\",\"program\":\"{sb}\",\"traces\":true}}\n",
            "\n", // blank lines are skipped, not errors
            "{{\"id\":\"sb-again\",\"program\":\"{sb}\",\"traces\":true}}\n",
            "{{\"id\":\"mp\",\"litmus_path\":\"litmus/mp_ra.litmus\"}}\n",
            "{{\"id\":\"count\",\"program\":\"vars x; thread t {{ x := 1; }}\",",
            "\"mode\":\"count\",\"backend\":{{\"kind\":\"parallel\",\"workers\":2}}}}\n",
        ),
        sb = SB
    );
    let (ok, lines) = run_c11serve(&["--workers", "3"], &input);
    assert!(ok, "clean stream must exit 0: {lines:?}");
    assert_eq!(lines.len(), 5, "4 reports + summary: {lines:?}");

    // Responses come back in request order with ids echoed.
    assert_eq!(s(&lines[0], "id"), Some("sb"));
    assert_eq!(s(&lines[0], "status"), Some("ok"));
    assert_eq!(s(&lines[0], "schema"), Some("c11check/v1"));
    assert_eq!(s(&lines[0], "mode"), Some("outcomes"));
    assert_eq!(
        lines[0].get("cache_hit").and_then(Json::as_bool),
        Some(false)
    );

    // The duplicate is a cache hit with the identical payload.
    assert_eq!(s(&lines[1], "id"), Some("sb-again"));
    assert_eq!(
        lines[1].get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(lines[1].get("outcomes"), lines[0].get("outcomes"));

    assert_eq!(s(&lines[2], "id"), Some("mp"));
    assert_eq!(s(&lines[2], "mode"), Some("litmus"));
    assert_eq!(lines[2].get("pass").and_then(Json::as_bool), Some(true));

    assert_eq!(s(&lines[3], "id"), Some("count"));
    assert_eq!(s(&lines[3], "mode"), Some("count"));
    assert_eq!(
        lines[3]
            .get("backend")
            .and_then(|b| b.get("workers"))
            .and_then(Json::as_usize),
        Some(2)
    );

    // Summary: counters add up and one exploration was saved.
    let summary = &lines[4];
    assert_eq!(s(summary, "mode"), Some("batch-summary"));
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(4));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(4));
    assert_eq!(summary.get("errors").and_then(Json::as_usize), Some(0));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_usize), Some(1));
    assert_eq!(
        summary.get("explorations").and_then(Json::as_usize),
        Some(3)
    );
}

#[test]
fn malformed_lines_get_error_reports_and_fail_the_exit_code() {
    let input = concat!(
        "this is not json\n",
        "{\"id\":\"no-input\",\"model\":\"ra\"}\n",
        "{\"id\":\"bad-model\",\"program\":\"vars x; thread t { x := 1; }\",\"model\":\"tso\"}\n",
        "{\"id\":\"bad-prog\",\"program\":\"vars x; thread t { y := 1; }\"}\n",
        "{\"id\":\"unknown-key\",\"program\":\"vars x; thread t { x := 1; }\",\"frobnicate\":1}\n",
        "{\"id\":\"fine\",\"program\":\"vars x; thread t { x := 1; }\"}\n",
    );
    let (ok, lines) = run_c11serve(&[], input);
    assert!(!ok, "a stream with errors must exit non-zero");
    assert_eq!(lines.len(), 7, "6 lines + summary: {lines:?}");

    // Malformed JSON: no parsable id, so the line number stands in.
    assert_eq!(s(&lines[0], "id"), Some("line-1"));
    assert_eq!(s(&lines[0], "status"), Some("error"));
    assert!(s(&lines[0], "error").unwrap().contains("json error"));

    for (idx, needle) in [
        (1, "exactly one of"),
        (2, "\"model\" must be"),
        (3, "parse error"),
        (4, "unknown key"),
    ] {
        assert_eq!(s(&lines[idx], "status"), Some("error"), "{lines:?}");
        assert!(
            s(&lines[idx], "error").unwrap().contains(needle),
            "line {idx}: {:?}",
            lines[idx]
        );
    }

    // The good line still got its report — errors are per-line.
    assert_eq!(s(&lines[5], "id"), Some("fine"));
    assert_eq!(s(&lines[5], "status"), Some("ok"));

    let summary = &lines[6];
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(6));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(1));
    assert_eq!(summary.get("errors").and_then(Json::as_usize), Some(5));
}

#[test]
fn litmus_corpus_streams_through_the_service() {
    // The CI smoke job in shell form: one litmus_path request per corpus
    // file, every line must come back ok with a passing verdict.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 12, "12-file corpus expected");
    let input: String = files
        .iter()
        .map(|p| {
            format!(
                "{{\"id\":\"{}\",\"litmus_path\":\"{}\"}}\n",
                p.file_stem().unwrap().to_str().unwrap(),
                p.display()
            )
        })
        .collect();
    let (ok, lines) = run_c11serve(&["--workers", "4"], &input);
    assert!(ok, "corpus must stream clean: {lines:?}");
    let (summary, reports) = lines.split_last().unwrap();
    assert_eq!(reports.len(), files.len());
    for (line, file) in reports.iter().zip(&files) {
        assert_eq!(s(line, "status"), Some("ok"), "{}", file.display());
        assert_eq!(
            line.get("pass").and_then(Json::as_bool),
            Some(true),
            "{}",
            file.display()
        );
    }
    assert_eq!(
        summary.get("litmus_failed").and_then(Json::as_usize),
        Some(0)
    );
    assert_eq!(
        summary.get("ok").and_then(Json::as_usize),
        Some(files.len())
    );
}

/// The DPOR backend over the request-line surface, both spellings
/// (`"backend":"dpor"` and `{"kind":"dpor"}`): first submission
/// computes, resubmission in the same stream is a cache hit (the cache
/// key is backend-free), and unknown backend names are rejected.
#[test]
fn dpor_backend_requests_compute_cold_and_hit_warm() {
    let input = concat!(
        "{\"id\":\"cold\",\"litmus_path\":\"litmus/mp_ra.litmus\",\"backend\":\"dpor\"}\n",
        "{\"id\":\"warm\",\"litmus_path\":\"litmus/mp_ra.litmus\",\"backend\":\"dpor\"}\n",
        "{\"id\":\"obj\",\"program\":\"vars x; thread t { x := 1; }\",",
        "\"backend\":{\"kind\":\"dpor\"}}\n",
        "{\"id\":\"bad\",\"program\":\"vars x; thread t { x := 1; }\",",
        "\"backend\":\"warp-drive\"}\n",
    );
    let (ok, lines) = run_c11serve(&[], input);
    assert!(!ok, "the bad backend line must fail the exit code");
    assert_eq!(lines.len(), 5, "4 reports + summary: {lines:?}");

    let hit = |v: &Json| v.get("cache_hit").and_then(Json::as_bool);
    assert_eq!(s(&lines[0], "id"), Some("cold"));
    assert_eq!(hit(&lines[0]), Some(false), "first dpor pass computes");
    assert_eq!(s(&lines[1], "id"), Some("warm"));
    assert_eq!(hit(&lines[1]), Some(true), "resubmission hits the cache");
    for line in &lines[..2] {
        assert_eq!(s(line, "status"), Some("ok"));
        assert_eq!(
            line.get("backend").and_then(|b| s(b, "kind")),
            Some("dpor"),
            "reports carry the computing backend"
        );
        assert_eq!(line.get("pass").and_then(Json::as_bool), Some(true));
    }
    assert_eq!(s(&lines[2], "status"), Some("ok"), "object spelling works");
    assert_eq!(
        lines[2].get("backend").and_then(|b| s(b, "kind")),
        Some("dpor")
    );
    assert_eq!(s(&lines[3], "status"), Some("error"));
    assert!(
        s(&lines[3], "error").unwrap().contains("dpor"),
        "the error names the valid backends: {:?}",
        lines[3]
    );
}
