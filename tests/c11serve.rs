//! `c11serve` end to end: request JSON lines in on stdin, one report
//! line per request (in request order) plus a `batch-summary` line out,
//! malformed lines answered with error reports, and the exit code
//! reflecting errors and litmus failures.

use c11_operational::api::json::Json;
use std::process::{Command, Stdio};

fn run_c11serve(args: &[&str], stdin: &str) -> (bool, Vec<Json>) {
    run_c11serve_bytes(args, stdin.as_bytes())
}

fn run_c11serve_bytes(args: &[&str], stdin: &[u8]) -> (bool, Vec<Json>) {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "--quiet", "--bin", "c11serve", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn cargo run c11serve");
    {
        use std::io::Write as _;
        child.stdin.take().unwrap().write_all(stdin).unwrap();
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let lines = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {l}")))
        .collect();
    (out.status.success(), lines)
}

fn s<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

const SB: &str = "vars x y; thread t1 { x := 1; r0 <- y; } thread t2 { y := 1; r0 <- x; }";

#[test]
fn clean_stream_round_trips_in_order_with_cache_hits() {
    let input = format!(
        concat!(
            "{{\"id\":\"sb\",\"program\":\"{sb}\",\"traces\":true}}\n",
            "\n", // blank lines are skipped, not errors
            "{{\"id\":\"sb-again\",\"program\":\"{sb}\",\"traces\":true}}\n",
            "{{\"id\":\"mp\",\"litmus_path\":\"litmus/mp_ra.litmus\"}}\n",
            "{{\"id\":\"count\",\"program\":\"vars x; thread t {{ x := 1; }}\",",
            "\"mode\":\"count\",\"backend\":{{\"kind\":\"parallel\",\"workers\":2}}}}\n",
        ),
        sb = SB
    );
    let (ok, lines) = run_c11serve(&["--workers", "3"], &input);
    assert!(ok, "clean stream must exit 0: {lines:?}");
    assert_eq!(lines.len(), 5, "4 reports + summary: {lines:?}");

    // Responses come back in request order with ids echoed.
    assert_eq!(s(&lines[0], "id"), Some("sb"));
    assert_eq!(s(&lines[0], "status"), Some("ok"));
    assert_eq!(s(&lines[0], "schema"), Some("c11check/v1"));
    assert_eq!(s(&lines[0], "mode"), Some("outcomes"));

    // The duplicate coalesces: exactly one of the two identical jobs
    // explored (which one computed first is a pool race), the other is
    // a cache hit with the byte-identical payload.
    assert_eq!(s(&lines[1], "id"), Some("sb-again"));
    let hits = [&lines[0], &lines[1]]
        .iter()
        .filter(|l| l.get("cache_hit").and_then(Json::as_bool) == Some(true))
        .count();
    assert_eq!(hits, 1, "one cold + one warm: {lines:?}");
    assert_eq!(lines[1].get("outcomes"), lines[0].get("outcomes"));

    assert_eq!(s(&lines[2], "id"), Some("mp"));
    assert_eq!(s(&lines[2], "mode"), Some("litmus"));
    assert_eq!(lines[2].get("pass").and_then(Json::as_bool), Some(true));

    assert_eq!(s(&lines[3], "id"), Some("count"));
    assert_eq!(s(&lines[3], "mode"), Some("count"));
    assert_eq!(
        lines[3]
            .get("backend")
            .and_then(|b| b.get("workers"))
            .and_then(Json::as_usize),
        Some(2)
    );

    // Summary: counters add up and one exploration was saved.
    let summary = &lines[4];
    assert_eq!(s(summary, "mode"), Some("batch-summary"));
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(4));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(4));
    assert_eq!(summary.get("errors").and_then(Json::as_usize), Some(0));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_usize), Some(1));
    assert_eq!(
        summary.get("explorations").and_then(Json::as_usize),
        Some(3)
    );
}

#[test]
fn malformed_lines_get_error_reports_and_fail_the_exit_code() {
    let input = concat!(
        "this is not json\n",
        "{\"id\":\"no-input\",\"model\":\"ra\"}\n",
        "{\"id\":\"bad-model\",\"program\":\"vars x; thread t { x := 1; }\",\"model\":\"tso\"}\n",
        "{\"id\":\"bad-prog\",\"program\":\"vars x; thread t { y := 1; }\"}\n",
        "{\"id\":\"unknown-key\",\"program\":\"vars x; thread t { x := 1; }\",\"frobnicate\":1}\n",
        "{\"id\":\"fine\",\"program\":\"vars x; thread t { x := 1; }\"}\n",
    );
    let (ok, lines) = run_c11serve(&[], input);
    assert!(!ok, "a stream with errors must exit non-zero");
    assert_eq!(lines.len(), 7, "6 lines + summary: {lines:?}");

    // Malformed JSON: no parsable id, so the line number stands in.
    assert_eq!(s(&lines[0], "id"), Some("line-1"));
    assert_eq!(s(&lines[0], "status"), Some("error"));
    assert!(s(&lines[0], "error").unwrap().contains("json error"));

    for (idx, needle) in [
        (1, "exactly one of"),
        (2, "\"model\" must be"),
        (3, "parse error"),
        (4, "unknown key"),
    ] {
        assert_eq!(s(&lines[idx], "status"), Some("error"), "{lines:?}");
        assert!(
            s(&lines[idx], "error").unwrap().contains(needle),
            "line {idx}: {:?}",
            lines[idx]
        );
    }

    // The good line still got its report — errors are per-line.
    assert_eq!(s(&lines[5], "id"), Some("fine"));
    assert_eq!(s(&lines[5], "status"), Some("ok"));

    let summary = &lines[6];
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(6));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(1));
    assert_eq!(summary.get("errors").and_then(Json::as_usize), Some(5));
}

#[test]
fn litmus_corpus_streams_through_the_service() {
    // The CI smoke job in shell form: one litmus_path request per corpus
    // file, every line must come back ok with a passing verdict.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 12, "12-file corpus expected");
    let input: String = files
        .iter()
        .map(|p| {
            format!(
                "{{\"id\":\"{}\",\"litmus_path\":\"{}\"}}\n",
                p.file_stem().unwrap().to_str().unwrap(),
                p.display()
            )
        })
        .collect();
    let (ok, lines) = run_c11serve(&["--workers", "4"], &input);
    assert!(ok, "corpus must stream clean: {lines:?}");
    let (summary, reports) = lines.split_last().unwrap();
    assert_eq!(reports.len(), files.len());
    for (line, file) in reports.iter().zip(&files) {
        assert_eq!(s(line, "status"), Some("ok"), "{}", file.display());
        assert_eq!(
            line.get("pass").and_then(Json::as_bool),
            Some(true),
            "{}",
            file.display()
        );
    }
    assert_eq!(
        summary.get("litmus_failed").and_then(Json::as_usize),
        Some(0)
    );
    assert_eq!(
        summary.get("ok").and_then(Json::as_usize),
        Some(files.len())
    );
}

/// The sleep-set reduction over the request-line surface, the new
/// `"reduction"` key and the legacy `"backend":"dpor"` shim alike: first
/// submission computes, resubmission in the same stream is a cache hit
/// (an exhaustive-contract reduction does not split the cache key), and
/// unknown names are rejected.
#[test]
fn dpor_backend_requests_compute_cold_and_hit_warm() {
    let input = concat!(
        "{\"id\":\"cold\",\"litmus_path\":\"litmus/mp_ra.litmus\",\"reduction\":\"sleep-set\"}\n",
        "{\"id\":\"warm\",\"litmus_path\":\"litmus/mp_ra.litmus\",\"backend\":\"dpor\"}\n",
        "{\"id\":\"obj\",\"program\":\"vars x; thread t { x := 1; }\",",
        "\"reduction\":{\"kind\":\"sleep-set\"}}\n",
        "{\"id\":\"bad\",\"program\":\"vars x; thread t { x := 1; }\",",
        "\"backend\":\"warp-drive\"}\n",
        "{\"id\":\"mix\",\"program\":\"vars x; thread t { x := 1; }\",",
        "\"backend\":\"dpor\",\"reduction\":\"none\"}\n",
    );
    let (ok, lines) = run_c11serve(&[], input);
    assert!(!ok, "the bad backend line must fail the exit code");
    assert_eq!(lines.len(), 6, "5 reports + summary: {lines:?}");

    let hit = |v: &Json| v.get("cache_hit").and_then(Json::as_bool);
    assert_eq!(s(&lines[0], "id"), Some("cold"));
    assert_eq!(hit(&lines[0]), Some(false), "first sleep-set pass computes");
    assert_eq!(s(&lines[1], "id"), Some("warm"));
    assert_eq!(
        hit(&lines[1]),
        Some(true),
        "legacy-spelled resubmission hits the same cache entry"
    );
    for line in &lines[..2] {
        assert_eq!(s(line, "status"), Some("ok"));
        assert_eq!(
            line.get("backend").and_then(|b| s(b, "kind")),
            Some("sequential"),
            "reports carry the computing engine"
        );
        assert_eq!(
            line.get("reduction").and_then(|r| s(r, "kind")),
            Some("sleep-set"),
            "reports carry the computing reduction"
        );
        assert_eq!(
            line.get("reduction").and_then(|r| s(r, "contract")),
            Some("exhaustive")
        );
        assert_eq!(line.get("pass").and_then(Json::as_bool), Some(true));
    }
    assert_eq!(s(&lines[2], "status"), Some("ok"), "object spelling works");
    assert_eq!(
        lines[2].get("reduction").and_then(|r| s(r, "kind")),
        Some("sleep-set")
    );
    assert_eq!(s(&lines[3], "status"), Some("error"));
    assert!(
        s(&lines[3], "error").unwrap().contains("dpor"),
        "the error names the valid backends: {:?}",
        lines[3]
    );
    assert_eq!(s(&lines[4], "status"), Some("error"));
    assert!(
        s(&lines[4], "error").unwrap().contains("legacy"),
        "backend + reduction must be rejected as a legacy clash: {:?}",
        lines[4]
    );
}

/// An oversized request line is answered with a positioned error — and
/// only that line: the stream keeps going and later requests still get
/// their reports.
#[test]
fn oversized_lines_get_a_positioned_error_and_the_stream_continues() {
    let mut input = Vec::new();
    input.extend_from_slice(&vec![b'a'; (1 << 20) + 64]);
    input.push(b'\n');
    input.extend_from_slice(b"{\"id\":\"after\",\"program\":\"vars x; thread t { x := 1; }\"}\n");
    let (ok, lines) = run_c11serve_bytes(&[], &input);
    assert!(!ok, "an oversized line is a genuine error");
    assert_eq!(lines.len(), 3, "error + report + summary: {lines:?}");
    assert_eq!(s(&lines[0], "id"), Some("line-1"));
    assert_eq!(s(&lines[0], "status"), Some("error"));
    let err = s(&lines[0], "error").unwrap();
    assert!(
        err.contains("line 1") && err.contains("byte cap"),
        "positioned oversize error: {err}"
    );
    assert_eq!(s(&lines[1], "id"), Some("after"));
    assert_eq!(s(&lines[1], "status"), Some("ok"));
}

/// Bytes that are not valid UTF-8 no longer kill the stream: the line
/// is rejected with the offset of the first bad byte and reading
/// continues at the next line.
#[test]
fn malformed_utf8_lines_are_rejected_in_place() {
    let mut input = Vec::new();
    input.extend_from_slice(b"{\"id\":\"first\",\"program\":\"vars x; thread t { x := 1; }\"}\n");
    input.extend_from_slice(b"{\"id\":\"bad\xff\xfe\"}\n");
    input.extend_from_slice(b"{\"id\":\"last\",\"program\":\"vars x; thread t { x := 2; }\"}\n");
    let (ok, lines) = run_c11serve_bytes(&[], &input);
    assert!(!ok, "the invalid line must fail the exit code");
    assert_eq!(lines.len(), 4, "2 reports + error + summary: {lines:?}");
    assert_eq!(s(&lines[0], "status"), Some("ok"));
    assert_eq!(s(&lines[1], "id"), Some("line-2"));
    assert_eq!(s(&lines[1], "status"), Some("error"));
    let err = s(&lines[1], "error").unwrap();
    assert!(
        err.contains("UTF-8") && err.contains("offset 10"),
        "positioned UTF-8 error: {err}"
    );
    assert_eq!(s(&lines[2], "id"), Some("last"));
    assert_eq!(s(&lines[2], "status"), Some("ok"));
}

/// A request whose deadline already passed comes back as a well-formed
/// `"timed_out"` report — not an error, not a hang — under all three
/// backends, and timeouts do not fail the exit code.
#[test]
fn tiny_timeouts_yield_timed_out_reports_not_errors() {
    let contended = "vars x; \
         thread t1 { x := 1; x := 2; x := 3; x := 4; } \
         thread t2 { x := 5; x := 6; x := 7; x := 8; } \
         thread t3 { x := 9; x := 10; x := 11; x := 12; } \
         thread t4 { x := 13; x := 14; x := 15; x := 16; }";
    let input = format!(
        concat!(
            "{{\"id\":\"seq\",\"program\":\"{p}\",\"timeout_ms\":0}}\n",
            "{{\"id\":\"par\",\"program\":\"{p}\",\"timeout_ms\":0,\"backend\":{{\"kind\":\"parallel\",\"workers\":4}}}}\n",
            "{{\"id\":\"dpor\",\"program\":\"{p}\",\"timeout_ms\":0,\"backend\":\"dpor\"}}\n",
        ),
        p = contended
    );
    let (ok, lines) = run_c11serve(&["--auto-parallel", "0"], &input);
    assert!(ok, "timeouts are not genuine errors: {lines:?}");
    assert_eq!(lines.len(), 4, "3 reports + summary: {lines:?}");
    for (line, id) in lines[..3].iter().zip(["seq", "par", "dpor"]) {
        assert_eq!(s(line, "id"), Some(id));
        assert_eq!(s(line, "status"), Some("timed_out"), "{line:?}");
        assert_eq!(
            line.get("stats")
                .and_then(|st| st.get("interrupt"))
                .and_then(Json::as_str),
            Some("timed_out")
        );
    }
    let summary = &lines[3];
    assert_eq!(summary.get("interrupted").and_then(Json::as_usize), Some(3));
    assert_eq!(summary.get("errors").and_then(Json::as_usize), Some(0));
}

/// The `{"stats": true}` control line answers with the session counters
/// as a `session-stats` document; extra keys are rejected strictly.
#[test]
fn stats_control_lines_report_session_counters() {
    let input = format!(
        concat!(
            "{{\"id\":\"warmup\",\"program\":\"{sb}\"}}\n",
            "{{\"id\":\"again\",\"program\":\"{sb}\"}}\n",
            "{{\"id\":\"reduced\",\"program\":\"{sb}\",\"reduction\":\"source-set\"}}\n",
            "{{\"id\":\"st\",\"stats\":true}}\n",
            "{{\"id\":\"bad\",\"stats\":true,\"program\":\"vars x; thread t {{ x := 1; }}\"}}\n",
            "{{\"id\":\"off\",\"stats\":false}}\n",
        ),
        sb = SB
    );
    let (ok, lines) = run_c11serve(&[], &input);
    assert!(!ok, "the malformed stats lines must fail the exit code");
    assert_eq!(lines.len(), 7, "6 responses + summary: {lines:?}");
    let stats = &lines[3];
    assert_eq!(s(stats, "id"), Some("st"));
    assert_eq!(s(stats, "status"), Some("ok"));
    assert_eq!(s(stats, "mode"), Some("session-stats"));
    // Two explorations: the exhaustive warmup and the finals-only
    // source-set pass, which may not share a cache entry (the contract
    // is part of the key) and is tallied under its own counter.
    assert_eq!(stats.get("explorations").and_then(Json::as_usize), Some(2));
    assert_eq!(
        stats.get("explorations_none").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        stats.get("explorations_sleep_set").and_then(Json::as_usize),
        Some(0)
    );
    assert_eq!(
        stats
            .get("explorations_source_set")
            .and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(stats.get("cache_hits").and_then(Json::as_usize), Some(1));
    assert_eq!(stats.get("completed").and_then(Json::as_usize), Some(3));
    assert_eq!(
        stats.get("persist_loaded").and_then(Json::as_usize),
        Some(0)
    );
    // A stats key mixed into a check request is ambiguous: rejected.
    assert_eq!(s(&lines[4], "status"), Some("error"));
    // So is any value other than `true`.
    assert_eq!(s(&lines[5], "status"), Some("error"));
    // Stats probes are not jobs: the summary counts only the real ones.
    assert_eq!(lines[6].get("jobs").and_then(Json::as_usize), Some(5))
}

/// SIGINT requests the same graceful drain as SIGTERM: the service stops
/// reading *while stdin is still open*, answers everything in flight,
/// prints the batch summary, and exits 0.
#[test]
fn sigint_drains_gracefully_with_stdin_still_open() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut child = Command::new(env!("CARGO_BIN_EXE_c11serve"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn c11serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    writeln!(stdin, "{{\"id\":\"one\",\"program\":\"{SB}\"}}").unwrap();
    stdin.flush().unwrap();
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let report = Json::parse(line.trim()).unwrap();
    assert_eq!(s(&report, "id"), Some("one"));
    assert_eq!(s(&report, "status"), Some("ok"));

    Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    // A blank line wakes the (blocking) reader so it can see the flag;
    // stdin stays open throughout — only the signal ends the stream.
    writeln!(stdin).unwrap();
    stdin.flush().unwrap();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    let summary = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad summary ({e}): {line}"));
    assert_eq!(s(&summary, "mode"), Some("batch-summary"));
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(1));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(1));
    let status = child.wait().unwrap();
    assert!(status.success(), "a signal-driven drain exits 0");
    drop(stdin);
}

/// A burst past `--max-queue` gets structured `"overloaded"` lines
/// instead of unbounded queueing; accepted requests still complete and
/// overload alone does not fail the exit code.
#[test]
fn bursts_beyond_max_queue_answer_overloaded() {
    let input: String = (0..24)
        .map(|n| {
            format!(
                "{{\"id\":\"burst-{n}\",\"program\":\"vars x y z; \
                 thread t1 {{ x := {n}; y := {n}; z := {n}; }} \
                 thread t2 {{ y := 1; z := 2; x := 3; }} \
                 thread t3 {{ r0 <- z; r1 <- x; r2 <- y; }}\"}}\n"
            )
        })
        .collect();
    let (ok, lines) = run_c11serve(&["--workers", "1", "--max-queue", "1"], &input);
    assert!(ok, "overload is not a genuine error: {lines:?}");
    assert_eq!(lines.len(), 25, "24 responses + summary: {lines:?}");
    let mut served = 0;
    let mut bounced = 0;
    for line in &lines[..24] {
        match s(line, "status") {
            Some("ok") => served += 1,
            Some("overloaded") => bounced += 1,
            other => panic!("unexpected status {other:?}: {line:?}"),
        }
    }
    assert!(served >= 1, "the first request is always accepted");
    assert!(bounced >= 1, "queue depth 1 must bounce part of a 24-burst");
    let summary = &lines[24];
    assert_eq!(
        summary.get("overloaded").and_then(Json::as_usize),
        Some(bounced)
    );
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(served));
}
