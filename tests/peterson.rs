//! E11 — the Peterson verification (Theorem 5.8 + Lemma D.1), and
//! E4 — the Example 3.6 snapshot.

use c11_operational::core::semantics::{read_transitions, update_transitions};
use c11_operational::core::Config;
use c11_operational::prelude::*;
use c11_operational::verify::peterson::{
    check_peterson, mutual_exclusion_holds, peterson_program, peterson_relaxed_program,
};

/// Theorem 5.8 and invariants (4)–(10), bounded model checking at a budget
/// that covers full lock rounds of both threads plus spinning.
#[test]
fn e11_peterson_mutual_exclusion_and_invariants() {
    let report = check_peterson(18);
    assert!(report.mutual_exclusion, "Theorem 5.8 violated");
    assert!(
        report.invariant_failures.is_empty(),
        "Lemma D.1 invariants failed: {:?}",
        report.invariant_failures
    );
    assert!(
        report.stats.truncated,
        "Peterson loops forever; bound expected"
    );
    assert!(report.stats.unique > 10_000);
}

/// Negative control: with all annotations relaxed, mutual exclusion fails
/// (the checker can find the bug the RA annotations prevent).
#[test]
fn e11_relaxed_peterson_fails() {
    let (holds, _states) = mutual_exclusion_holds(&peterson_relaxed_program(), 16);
    assert!(!holds);
}

/// A half-weakened variant: keep the RA swap but drop the acquire on the
/// flag read and the release on the flag reset. FINDING (recorded in
/// EXPERIMENTS.md, E11): within our bounds mutual exclusion *still holds*
/// — the RA swap chain alone publishes the flag writes (each swap reads
/// the previous one, and the flag write is sb-before its thread's swap).
/// The load-bearing annotation is the swap: replacing it by a plain write
/// breaks mutual exclusion (`e11_relaxed_peterson_fails`). The flag
/// annotations are what the paper's *proof* (rules Transfer/AcqRd) and
/// real-hardware fencing rely on, not bounded safety in the RAR model.
#[test]
fn e11_flag_relaxed_peterson_still_safe_within_bound() {
    let prog = parse_program(
        "vars flag1 flag2 turn=1;
         thread t1 {
           while (true) {
             2: flag1 := true;
             3: turn.swap(2);
             4: while (flag2 == 1 && turn == 2) { skip; }
             5: skip;
             6: flag1 := false;
           }
         }
         thread t2 {
           while (true) {
             2: flag2 := true;
             3: turn.swap(1);
             4: while (flag1 == 1 && turn == 1) { skip; }
             5: skip;
             6: flag2 := false;
           }
         }",
    )
    .unwrap();
    let (holds, states) = mutual_exclusion_holds(&prog, 18);
    assert!(holds, "see FINDING above — checked to 22 events offline");
    assert!(states > 10_000);
}

/// E4 — Example 3.6: the state where thread 1 has reached the guard and
/// thread 2 is about to swap `turn`.
#[test]
fn e4_example_3_6_snapshot() {
    // Build the snapshot operationally: t1: flag1:=1; turn.swap(2);
    // t2: flag2:=1; then t2's swap (the boxed event).
    let prog = peterson_program();
    let f1 = prog.var("flag1").unwrap();
    let f2 = prog.var("flag2").unwrap();
    let turn = prog.var("turn").unwrap();
    let s = C11State::initial(&[0, 0, 1]); // flag1, flag2, turn=1

    let w1 = &c11_operational::core::semantics::write_transitions(&s, ThreadId(1), f1, 1, false)[0];
    let u1 = &update_transitions(&w1.state, ThreadId(1), turn, 2)[0];
    let w2 =
        &c11_operational::core::semantics::write_transitions(&u1.state, ThreadId(2), f2, 1, false)
            [0];

    // Before the boxed event: thread 2 can read turn from wr0(turn,1) via
    // a READ, but cannot update over it — wr0 is covered by t1's update.
    let pre_box = &w2.state;
    assert!(read_transitions(pre_box, ThreadId(2), turn, false)
        .iter()
        .any(|t| t.observed == 2)); // event 2 = init write of turn
    let u2s = update_transitions(pre_box, ThreadId(2), turn, 1);
    assert_eq!(u2s.len(), 1, "only t1's update is uncovered");
    assert_eq!(u2s[0].observed, u1.event);
    assert_eq!(u2s[0].action.rdval(), Some(2), "turn updated from 2 to 1");

    // After the boxed event:
    let post = &u2s[0].state;
    // Thread 2 has encountered wr1(flag1,1) — wait, it has *not*; but it
    // HAS encountered its own swap, which reads t1's update, which is
    // sb-after wr1(flag1,1): t2 can no longer observe wr0(flag1,0).
    let reads_f1: Vec<_> = read_transitions(post, ThreadId(2), f1, true)
        .iter()
        .map(|t| t.action.rdval().unwrap())
        .collect();
    assert_eq!(reads_f1, vec![1], "t2's guard must read flag1 = 1");
    // And t2 can only observe its own update of turn (t1's is superseded).
    let reads_turn: Vec<_> = read_transitions(post, ThreadId(2), turn, false)
        .iter()
        .map(|t| t.action.rdval().unwrap())
        .collect();
    assert_eq!(reads_turn, vec![1], "t2 spins: guard evaluates true");

    // Thread 1, in contrast, has not encountered wr2(flag2,1) or t2's
    // update: it may read flag2 ∈ {0, 1} and turn ∈ {2, 1}.
    let mut reads_f2: Vec<_> = read_transitions(post, ThreadId(1), f2, true)
        .iter()
        .map(|t| t.action.rdval().unwrap())
        .collect();
    reads_f2.sort_unstable();
    assert_eq!(reads_f2, vec![0, 1], "t1 may exit or spin");
    let mut reads_turn1: Vec<_> = read_transitions(post, ThreadId(1), turn, false)
        .iter()
        .map(|t| t.action.rdval().unwrap())
        .collect();
    reads_turn1.sort_unstable();
    assert_eq!(reads_turn1, vec![1, 2]);
}

/// Non-vacuity: the mutual-exclusion result is meaningful only if each
/// thread actually reaches the critical section in some execution, and
/// both can complete full lock rounds within the budget.
#[test]
fn e11_critical_section_is_reachable() {
    let prog = peterson_program();
    let explorer = Explorer::new(RaModel);
    let mut t1_in_cs = false;
    let mut t2_in_cs = false;
    let mut t1_second_round = false;
    explorer.for_each_reachable(
        &prog,
        ExploreConfig {
            max_events: 18,
            record_traces: false,
            ..Default::default()
        },
        |cfg| {
            t1_in_cs |= cfg.pc(ThreadId(1)) == Some(5);
            t2_in_cs |= cfg.pc(ThreadId(2)) == Some(5);
            // A second round of t1 shows the loop re-entry works: t1 back
            // at line 2 with its release reset already in memory.
            if cfg.pc(ThreadId(1)) == Some(2) && cfg.mem.len() > 8 {
                t1_second_round = true;
            }
        },
    );
    assert!(t1_in_cs, "thread 1 must reach its critical section");
    assert!(t2_in_cs, "thread 2 must reach its critical section");
    assert!(t1_second_round, "the budget must cover loop re-entry");
}

/// The initial Peterson configuration satisfies the paper's initial
/// conditions (Appendix D: pc = 2, turn ∈ {1,2}, flags false).
#[test]
fn peterson_initial_conditions() {
    let prog = peterson_program();
    let cfg = Config::initial(&RaModel, &prog);
    assert_eq!(cfg.pc(ThreadId(1)), Some(2));
    assert_eq!(cfg.pc(ThreadId(2)), Some(2));
    let turn = prog.var("turn").unwrap();
    let v = cfg.mem.last(turn).and_then(|w| cfg.mem.event(w).wrval());
    assert!(v == Some(1) || v == Some(2));
}
