//! Corpus-wide equivalence of the parallel backend's *full results* with
//! the sequential engine — not just the unique-state count (which
//! `tests/fingerprint_dedup.rs` already pins): for every litmus test and
//! 1/2/4 workers, the multiset of final register snapshots and the
//! truncation flag must match, both through the raw engines and through
//! the `CheckRequest` front door (the acceptance bar for promoting the
//! parallel explorer to a full backend).

use c11_operational::explore::{parallel_explore, ExploreBackend, ParallelBackend};
use c11_operational::litmus::corpus;
use c11_operational::prelude::*;
use std::collections::HashMap;

fn multiset(snaps: Vec<RegSnapshot>) -> HashMap<RegSnapshot, usize> {
    let mut m = HashMap::new();
    for s in snaps {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

#[test]
fn parallel_full_results_match_sequential_on_corpus() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let cfg = ExploreConfig::default().max_events(test.max_events);
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let seq_snaps = multiset(seq.final_snapshots());
        for workers in [1usize, 2, 4] {
            let par = parallel_explore(&RaModel, &prog, &cfg, workers);
            assert_eq!(
                par.truncated, seq.truncated,
                "{}: truncation at {workers} workers",
                test.name
            );
            assert_eq!(par.unique, seq.unique, "{}: unique", test.name);
            assert_eq!(
                multiset(par.final_snapshots()),
                seq_snaps,
                "{}: final snapshot multiset at {workers} workers",
                test.name
            );
        }
    }
}

#[test]
fn parallel_backend_trait_matches_for_sc_too() {
    // The backend trait must agree for store-based models as well (their
    // states do not grow, so dedup carries the termination argument).
    for test in corpus().iter().take(6) {
        let prog = parse_program(&test.source).expect("corpus parses");
        let cfg = ExploreConfig::default();
        let seq = SequentialBackend.run(&ScModel, &prog, &cfg);
        let par = ParallelBackend::new(4).run(&ScModel, &prog, &cfg);
        assert_eq!(par.unique, seq.unique, "{}", test.name);
        assert_eq!(
            multiset(par.final_snapshots()),
            multiset(seq.final_snapshots()),
            "{}",
            test.name
        );
    }
}

/// The acceptance criterion, verbatim: `CheckRequest { backend:
/// Parallel { workers: 4 }, mode: Outcomes }` over the litmus corpus
/// yields final register snapshots identical (as multisets) to the
/// sequential backend.
#[test]
fn check_request_outcomes_identical_across_backends_on_corpus() {
    for test in corpus() {
        let name = test.name.clone();
        let run = |backend: Backend| {
            let report = CheckRequest::litmus(test.clone())
                .mode(Mode::Outcomes)
                .backend(backend)
                .run()
                .expect("corpus programs parse");
            let CheckReport::Outcomes(o) = report else {
                panic!("{name}: expected an outcomes report");
            };
            o
        };
        let seq = run(Backend::Sequential);
        let par = run(Backend::Parallel { workers: 4 });
        // Outcome rows are deterministically sorted multiset rows, so
        // equality is exact (counts included).
        assert_eq!(seq.outcomes, par.outcomes, "{name}: outcome rows");
        assert_eq!(
            seq.stats.truncated, par.stats.truncated,
            "{name}: truncation"
        );
        assert_eq!(seq.stats.finals, par.stats.finals, "{name}: finals");
    }
}
