//! The source-set reduction's acceptance bar: the **finals-only
//! contract**. Source-set DPOR intentionally visits fewer states than
//! the exhaustive engines (unique/generated shrink — that is the whole
//! point), but everything a verdict rests on must be untouched: litmus
//! verdicts, final-snapshot multisets and axiom validity agree with the
//! sequential reference across the corpus at several bounds (truncating
//! ones included, where `truncated` is one-sided: source truncation
//! implies sequential truncation), race-free programs collapse to a
//! single execution (one state per Mazurkiewicz trace), and the
//! contended acceptance shape beats sleep-set DPOR by ≥ 2× generated
//! states.

use c11_operational::explore::{explore_dpor, explore_source};
use c11_operational::litmus::{corpus, LitmusTest};
use c11_operational::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn multiset(snaps: Vec<RegSnapshot>) -> HashMap<RegSnapshot, usize> {
    let mut m = HashMap::new();
    for s in snaps {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

/// Raw-engine finals-only equality on one program under one config:
/// the same final-snapshot multiset and a truncation flag that is never
/// set unless the exhaustive walk's is, while never visiting more
/// states than the exhaustive walk.
fn assert_source_matches_sequential_finals(prog: &Prog, cfg: &ExploreConfig, what: &str) {
    let seq = Explorer::new(RaModel).explore(prog, cfg.clone());
    let src = explore_source(&RaModel, prog, cfg);
    assert_eq!(
        multiset(src.final_snapshots()),
        multiset(seq.final_snapshots()),
        "{what}: finals multiset"
    );
    // `truncated` is one-sided: source-set truncation implies sequential
    // truncation, but the exhaustive walk may additionally trip the
    // bound on a τ-late linearisation of a trace whose τ-eager
    // representative completes inside it. `src.truncated == false`
    // therefore still guarantees the finals above are the complete set.
    assert!(
        !src.truncated || seq.truncated,
        "{what}: source truncation must imply sequential truncation"
    );
    assert!(
        src.unique <= seq.unique,
        "{what}: a reduction must not visit more ({} vs {})",
        src.unique,
        seq.unique
    );
}

/// The corpus at the tests' own bounds, at a tight truncating event
/// bound, and at a depth bound: finals-only equality everywhere.
#[test]
fn source_finals_match_sequential_on_corpus_at_several_bounds() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let bounds = [
            ExploreConfig::default().max_events(test.max_events),
            // Tight event bound: most corpus shapes truncate here, so
            // this pins the widening-on-truncation path.
            ExploreConfig::default().max_events(6),
            ExploreConfig::default().max_depth(7),
        ];
        for (i, cfg) in bounds.iter().enumerate() {
            assert_source_matches_sequential_finals(
                &prog,
                cfg,
                &format!("{} (bound set {i})", test.name),
            );
        }
    }
}

/// Through the front door: source-set litmus verdicts (pass,
/// RA-observability, SC-observability) and outcome reports (rows and
/// the Theorem-4.4 validity self-check) are identical to sequential on
/// the whole corpus — only the work counters may differ.
#[test]
fn source_verdicts_and_outcomes_match_sequential_on_corpus() {
    for test in corpus() {
        let name = test.name.clone();
        let run_litmus = |t: LitmusTest, r: Reduction| {
            let report = CheckRequest::litmus(t).reduction(r).run().expect("parses");
            let CheckReport::Litmus(l) = report else {
                panic!("litmus requests produce litmus reports");
            };
            l
        };
        let seq = run_litmus(test.clone(), Reduction::None);
        let src = run_litmus(test.clone(), Reduction::SourceSet);
        assert_eq!(src.pass, seq.pass, "{name}: verdict");
        assert_eq!(src.observed_ra, seq.observed_ra, "{name}: RA observability");
        assert_eq!(src.observed_sc, seq.observed_sc, "{name}: SC observability");
        assert!(src.ra.unique <= seq.ra.unique, "{name}: RA unique");

        let run_outcomes = |t: LitmusTest, r: Reduction| {
            let report = CheckRequest::litmus(t)
                .mode(Mode::Outcomes)
                .reduction(r)
                .run()
                .expect("parses");
            let CheckReport::Outcomes(o) = report else {
                panic!("outcome requests produce outcome reports");
            };
            o
        };
        let seq = run_outcomes(test.clone(), Reduction::None);
        let src = run_outcomes(test, Reduction::SourceSet);
        assert_eq!(src.outcomes, seq.outcomes, "{name}: outcome rows");
        assert_eq!(
            src.invalid_finals, seq.invalid_finals,
            "{name}: validity violations"
        );
        assert_eq!(src.invalid_finals, 0, "{name}: Theorem 4.4 self-check");
    }
}

/// A race-free program (threads over disjoint variables) has exactly one
/// Mazurkiewicz trace, so the source-set walk collapses to one linear
/// execution: a single path (every generated state is a new unique one)
/// ending in the single final state.
#[test]
fn race_free_programs_explore_one_state_per_trace() {
    let src = "vars a b c;
         thread t1 { a := 1; a := 2; }
         thread t2 { b := 1; b := 2; }
         thread t3 { c := 1; c := 2; }";
    let prog = parse_program(src).unwrap();
    let cfg = ExploreConfig::default().max_events(16);
    let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
    let result = explore_source(&RaModel, &prog, &cfg);
    assert!(!result.truncated, "the shape fits the bound");
    assert_eq!(result.finals.len(), 1, "one trace, one final");
    assert_eq!(
        result.generated,
        result.unique - 1,
        "one trace, one execution: the walk is a single path"
    );
    assert_eq!(
        multiset(result.final_snapshots()),
        multiset(seq.final_snapshots()),
        "and that path ends where the exhaustive walk does"
    );
}

/// The ISSUE's measured acceptance bar, pinned: on `E16-contended-4`
/// source-set generates at least 2× fewer states than sleep-set DPOR,
/// with the identical finals multiset.
#[test]
fn source_beats_sleep_set_two_fold_on_the_contended_shape() {
    let src = "vars x; \
         thread t1 { x := 1; x := 2; x := 3; x := 4; } \
         thread t2 { x := 100; x := 101; x := 102; x := 103; }";
    let prog = parse_program(src).unwrap();
    let cfg = ExploreConfig::default().max_events(16);
    let sleep = explore_dpor(&RaModel, &prog, &cfg);
    let source = explore_source(&RaModel, &prog, &cfg);
    assert!(
        source.generated * 2 <= sleep.generated,
        "source-set must generate ≤ half of sleep-set's states ({} vs {})",
        source.generated,
        sleep.generated
    );
    assert_eq!(
        multiset(source.final_snapshots()),
        multiset(sleep.final_snapshots()),
        "with the identical finals multiset"
    );
}

// ---- randomised programs ------------------------------------------------

const VARS2: [&str; 2] = ["x", "y"];

fn arb_stmt() -> impl Strategy<Value = String> {
    let var = prop::sample::select(VARS2.to_vec());
    let val = 1..4u32;
    prop_oneof![
        (var.clone(), val.clone(), any::<bool>())
            .prop_map(|(x, v, rel)| format!("{x} :={} {v};", if rel { "R" } else { "" })),
        (var.clone(), 0..2u8, any::<bool>())
            .prop_map(|(x, r, acq)| format!("r{r} <-{} {x};", if acq { "A" } else { "" })),
        (var, val).prop_map(|(x, v)| format!("r0 <- {x}.swap({v});")),
    ]
}

fn arb_thread_src() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(), 1..4).prop_map(|stmts| stmts.join(" "))
}

fn arb_prog_src() -> impl Strategy<Value = String> {
    (arb_thread_src(), arb_thread_src())
        .prop_map(|(t1, t2)| format!("vars x y;\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two-thread programs over two shared variables (reads,
    /// writes — release/acquire mixed — and swaps): the source-set
    /// finals multiset and truncation flag equal the sequential
    /// engine's, both unbounded and under a truncating event bound.
    #[test]
    fn prop_source_finals_match_sequential(src in arb_prog_src()) {
        let prog = parse_program(&src).expect("generated programs parse");
        for cfg in [
            ExploreConfig::default(),
            ExploreConfig::default().max_events(5),
        ] {
            let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
            let source = explore_source(&RaModel, &prog, &cfg);
            prop_assert_eq!(
                multiset(source.final_snapshots()),
                multiset(seq.final_snapshots()),
                "RA finals ({})", src.clone()
            );
            prop_assert!(
                !source.truncated || seq.truncated,
                "RA truncated must be one-sided ({})", src.clone()
            );
            prop_assert!(source.unique <= seq.unique, "RA unique ({})", src.clone());
        }
    }
}
