//! E12 — Example 5.7 (message passing), the proof replayed mechanically.

use c11_operational::prelude::*;
use c11_operational::verify::mp::{check_mp, mp_program};

#[test]
fn e12_example_5_7() {
    let report = check_mp(16);
    assert!(report.writer_assertions, "d =_1 5 ∧ d → f after thread 1");
    assert!(
        report.reader_assertion,
        "d =_2 5 when thread 2 reaches line 2"
    );
    assert!(report.end_to_end, "every terminated run reads r = 5");
    assert!(report.stats.unique > 100);
}

/// The paper's program invariant feeding the Transfer rule: every write of
/// 1 to `f` is a releasing write of thread 1 and is `last(f)`.
#[test]
fn e12_flag_invariant() {
    let prog = mp_program();
    let f = prog.var("f").unwrap();
    let explorer = Explorer::new(RaModel);
    explorer.for_each_reachable(&prog, ExploreConfig::default().max_events(14), |cfg| {
        for w in cfg.mem.writes_to(f) {
            let ev = cfg.mem.event(w);
            if ev.wrval() == Some(1) {
                assert_eq!(ev.tid, ThreadId(1));
                assert!(ev.is_release());
                assert_eq!(cfg.mem.last(f), Some(w), "f=1 write is last(f)");
            }
        }
    });
}
