//! JSON report smoke tests: the `c11check --json` machine-readable output
//! is parsed by a minimal recursive-descent JSON reader (the workspace is
//! offline — no serde) and validated against the `c11check/v1` schema
//! documented in the README, both through the library front door and
//! through the installed binary (`cargo run --bin c11check`).

use c11_operational::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// A tiny JSON parser (validation only; numbers as u128, no floats —
// the report schema emits none).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum V {
    Null,
    Bool(bool),
    Num(u128),
    Str(String),
    Arr(Vec<V>),
    Obj(BTreeMap<String, V>),
}

impl V {
    fn get(&self, key: &str) -> Option<&V> {
        match self {
            V::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            V::Str(s) => Some(s),
            _ => None,
        }
    }

    fn num(&self) -> Option<u128> {
        match self {
            V::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[V]> {
        match self {
            V::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn lit(&mut self, word: &str) -> bool {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i).ok_or("eof in string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("eof in escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.i = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn value(&mut self) -> Result<V, String> {
        match self.peek().ok_or("eof")? {
            b'{' => {
                self.eat(b'{')?;
                let mut m = BTreeMap::new();
                if self.peek() == Some(b'}') {
                    self.eat(b'}')?;
                    return Ok(V::Obj(m));
                }
                loop {
                    let k = self.string()?;
                    self.eat(b':')?;
                    let v = self.value()?;
                    if m.insert(k.clone(), v).is_some() {
                        return Err(format!("duplicate key {k:?}"));
                    }
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b'}')?;
                Ok(V::Obj(m))
            }
            b'[' => {
                self.eat(b'[')?;
                let mut a = Vec::new();
                if self.peek() == Some(b']') {
                    self.eat(b']')?;
                    return Ok(V::Arr(a));
                }
                loop {
                    a.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b']')?;
                Ok(V::Arr(a))
            }
            b'"' => Ok(V::Str(self.string()?)),
            b't' => {
                self.ws();
                if self.lit("true") {
                    Ok(V::Bool(true))
                } else {
                    Err("bad literal".into())
                }
            }
            b'f' => {
                self.ws();
                if self.lit("false") {
                    Ok(V::Bool(false))
                } else {
                    Err("bad literal".into())
                }
            }
            b'n' => {
                self.ws();
                if self.lit("null") {
                    Ok(V::Null)
                } else {
                    Err("bad literal".into())
                }
            }
            c if c.is_ascii_digit() => {
                self.ws();
                let start = self.i;
                while self.s.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
                let n: u128 = std::str::from_utf8(&self.s[start..self.i])
                    .unwrap()
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                Ok(V::Num(n))
            }
            c => Err(format!("unexpected {:?}", c as char)),
        }
    }
}

fn parse_json(s: &str) -> V {
    let mut p = P {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.value().unwrap_or_else(|e| panic!("bad JSON ({e}): {s}"));
    p.ws();
    assert_eq!(p.i, s.len(), "trailing garbage in JSON: {s}");
    v
}

fn check_stats(stats: &V, ctx: &str) {
    for key in ["unique", "generated", "finals", "stuck", "wall_micros"] {
        assert!(
            stats.get(key).and_then(V::num).is_some(),
            "{ctx}: stats.{key} must be a number"
        );
    }
    assert!(
        matches!(stats.get("truncated"), Some(V::Bool(_))),
        "{ctx}: stats.truncated must be a bool"
    );
}

// ---------------------------------------------------------------------
// Library-level schema checks.
// ---------------------------------------------------------------------

const SB: &str = "vars x y;
     thread t1 { x := 1; r0 <- y; }
     thread t2 { y := 1; r0 <- x; }";

#[test]
fn outcomes_json_schema_is_stable() {
    let report = CheckRequest::program(SB)
        .backend(Backend::Parallel { workers: 4 })
        .traces(true)
        .run()
        .unwrap();
    let v = parse_json(&report.to_json());
    assert_eq!(v.get("schema").and_then(V::str), Some("c11check/v1"));
    assert_eq!(v.get("mode").and_then(V::str), Some("outcomes"));
    assert_eq!(v.get("model").and_then(V::str), Some("ra"));
    let backend = v.get("backend").expect("backend object");
    assert_eq!(backend.get("kind").and_then(V::str), Some("parallel"));
    assert_eq!(backend.get("workers").and_then(V::num), Some(4));
    assert_eq!(
        v.get("cache_hit"),
        Some(&V::Bool(false)),
        "one-shot runs never hit the session cache"
    );
    check_stats(v.get("stats").expect("stats"), "outcomes");
    assert_eq!(v.get("invalid_finals").and_then(V::num), Some(0));
    let outcomes = v.get("outcomes").and_then(V::arr).expect("outcomes array");
    assert_eq!(outcomes.len(), 4, "SB has 4 distinct outcomes under RA");
    for row in outcomes {
        assert!(row.get("count").and_then(V::num).is_some());
        let threads = row.get("threads").and_then(V::arr).unwrap();
        assert_eq!(threads.len(), 2);
        assert!(
            row.get("witness").and_then(V::arr).is_some(),
            "traces(true)"
        );
    }
}

#[test]
fn litmus_json_schema_is_stable() {
    let test = c11_operational::litmus::corpus()
        .into_iter()
        .find(|t| t.name == "MP-ra")
        .unwrap();
    let report = CheckRequest::litmus(test).run().unwrap();
    let v = parse_json(&report.to_json());
    assert_eq!(v.get("mode").and_then(V::str), Some("litmus"));
    assert_eq!(v.get("cache_hit"), Some(&V::Bool(false)));
    assert_eq!(v.get("name").and_then(V::str), Some("MP-ra"));
    assert_eq!(v.get("expect_ra").and_then(V::str), Some("forbidden"));
    assert_eq!(v.get("observed_ra"), Some(&V::Bool(false)));
    assert_eq!(v.get("pass"), Some(&V::Bool(true)));
    check_stats(v.get("ra").expect("ra stats"), "litmus.ra");
    check_stats(v.get("sc").expect("sc stats"), "litmus.sc");
}

// ---------------------------------------------------------------------
// Binary-level smoke: `c11check --json --workers 4` end to end.
// ---------------------------------------------------------------------

fn run_c11check(args: &[&str], stdin: Option<&str>) -> (bool, String) {
    use std::process::{Command, Stdio};
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "--quiet", "--bin", "c11check", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn cargo run c11check");
    if let Some(input) = stdin {
        use std::io::Write as _;
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
    }
    let out = child.wait_with_output().unwrap();
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn c11check_json_workers_emits_valid_report() {
    let (ok, stdout) = run_c11check(&["-", "--json", "--workers", "4"], Some(SB));
    assert!(ok, "c11check exited nonzero:\n{stdout}");
    let v = parse_json(&stdout);
    assert_eq!(v.get("schema").and_then(V::str), Some("c11check/v1"));
    assert_eq!(
        v.get("backend")
            .and_then(|b| b.get("workers"))
            .and_then(V::num),
        Some(4)
    );
    let outcomes = v.get("outcomes").and_then(V::arr).expect("outcomes");
    assert_eq!(outcomes.len(), 4);
    // The parallel backend's report must be byte-identical to the
    // sequential one modulo backend identity and wall time.
    let (ok, seq_stdout) = run_c11check(&["-", "--json"], Some(SB));
    assert!(ok);
    let seq = parse_json(&seq_stdout);
    assert_eq!(seq.get("outcomes"), v.get("outcomes"));
}

#[test]
fn c11check_litmus_json_covers_the_directory() {
    let (ok, stdout) = run_c11check(&["--litmus", "litmus", "--json"], None);
    assert!(ok, "litmus corpus must pass:\n{stdout}");
    let v = parse_json(&stdout);
    assert_eq!(v.get("schema").and_then(V::str), Some("c11check-litmus/v1"));
    assert_eq!(v.get("failed").and_then(V::num), Some(0));
    let tests = v.get("tests").and_then(V::arr).expect("tests array");
    assert!(tests.len() >= 12, "shipped corpus files + the new shapes");
    for t in tests {
        assert_eq!(t.get("pass"), Some(&V::Bool(true)));
        check_stats(t.get("ra").expect("ra stats"), "litmus dir");
    }
    // The shapes added by PR 3 and PR 4 are present.
    let names: Vec<&str> = tests
        .iter()
        .filter_map(|t| t.get("name").and_then(V::str))
        .collect();
    for expected in ["IRIW-acq", "WRC-ra", "2+2W-rlx", "R", "S", "ISA2"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}
