//! E1–E3: the worked examples of §3 (Examples 3.2–3.5), checked against
//! the literal definitions.

use c11_operational::core::obs::{covered_writes, encountered_writes, observable_writes};
use c11_operational::core::paper_examples::{example_3_2, example_3_3};
use c11_operational::core::semantics::{update_transitions, write_transitions};
use c11_operational::prelude::*;

fn sorted(v: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = v.into_iter().collect();
    v.sort_unstable();
    v
}

/// E1 — Example 3.4's encountered / observable / covered sets. The
/// expectations are *computed from Definition §3.2*; they match the
/// paper's printed lists except for EW(1), OW(1), OW(2), where the paper
/// overlooks the hb-path `wr₂(y,1) →sb wrR₂(x,2) →sw updRA₁(x,2,4)`
/// (recorded as an erratum in EXPERIMENTS.md).
#[test]
fn e1_example_3_4_sets() {
    let (s, [u1, w2y, w2x, _r3, w3, u4, _r4]) = example_3_2();
    let ew = |t: u8| sorted(encountered_writes(&s, ThreadId(t)).iter());
    let ow = |t: u8| sorted(observable_writes(&s, ThreadId(t)).iter());

    assert_eq!(ew(1), sorted([0, 1, 2, u1, w2y, w2x, u4]));
    assert_eq!(ew(2), sorted([0, 1, 2, w2y, w2x, u4])); // paper ✓
    assert_eq!(ew(3), sorted([0, 1, 2, w2y, w2x, w3, u4])); // paper ✓
    assert_eq!(ew(4), sorted([0, 1, 2, w3, u4])); // paper ✓

    assert_eq!(ow(1), sorted([2, w2y, w3, u1]));
    assert_eq!(ow(2), sorted([2, w2y, w2x, w3, u1]));
    assert_eq!(ow(3), sorted([w2y, w2x, w3, u1])); // paper ✓
    assert_eq!(ow(4), sorted([0, w2y, w2x, w3, u1, u4])); // paper ✓

    // CW = {wr0(y), wrR₂(x,2)} — paper ✓.
    assert_eq!(sorted(covered_writes(&s).iter()), sorted([1, w2x]));

    // The example state is valid per Definition 4.2.
    assert!(is_valid(&s), "{:?}", check_validity(&s));
}

/// E2 — Example 3.3: the eco closed form (Lemma C.9) on the chain state.
#[test]
fn e2_example_3_3_eco_closed_form() {
    let s = example_3_3();
    assert!(is_valid(&s), "{:?}", check_validity(&s));
    let closed = c11_operational::axiomatic::canonical::eco_closed_form(&s);
    assert_eq!(&closed, s.eco());
    assert!(c11_operational::axiomatic::canonical::coherence_inclusions(&s).is_ok());
}

/// E3 — Example 3.5: covered writes forbid insertion between a write and
/// the update that reads it.
#[test]
fn e3_example_3_5_no_insertion_into_covered_pairs() {
    let (s, [u1, _w2y, w2x, ..]) = example_3_2();
    // wrR₂(x,2) is covered by updRA₁(x,2,4): every thread's write/update
    // transitions on x must avoid observing it.
    for t in 1..=4u8 {
        for tr in write_transitions(&s, ThreadId(t), VarId(0), 9, false) {
            assert_ne!(tr.observed, w2x, "write of t{t} slipped under the update");
        }
        for tr in update_transitions(&s, ThreadId(t), VarId(0), 9) {
            assert_ne!(tr.observed, w2x);
        }
    }
    // …and the resulting states stay valid.
    for tr in write_transitions(&s, ThreadId(1), VarId(0), 9, false) {
        assert!(is_valid(&tr.state));
        // The only x-insertion point for thread 1 is after the update.
        assert!(tr.state.mo().contains(u1, tr.event));
    }
}

/// Every reachable successor of the Example 3.2 state stays valid — a
/// localized soundness probe on a state with updates, releases and
/// acquires in play.
#[test]
fn example_3_2_successors_stay_valid() {
    let (s, _) = example_3_2();
    for t in 1..=4u8 {
        for var in [VarId(0), VarId(1), VarId(2)] {
            for tr in
                c11_operational::core::semantics::read_transitions(&s, ThreadId(t), var, t % 2 == 0)
            {
                assert!(is_valid(&tr.state), "{:?}", check_validity(&tr.state));
            }
            for tr in write_transitions(&s, ThreadId(t), var, 7, t % 2 == 1) {
                assert!(is_valid(&tr.state));
            }
            for tr in update_transitions(&s, ThreadId(t), var, 8) {
                assert!(is_valid(&tr.state));
            }
        }
    }
}
