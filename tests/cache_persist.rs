//! Disk-backed cache persistence end to end over the `Session` API:
//! a snapshot written on drop (or `flush_cache`) warms a fresh session
//! so resubmissions answer `cache_hit: true` with the byte-identical
//! report, corrupt or mismatched lines are skipped (and counted), and
//! interrupted results never round-trip through the file.

use c11_operational::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SB: &str = "vars x y; thread t1 { x := 1; r0 <- y; } thread t2 { y := 1; r0 <- x; }";

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("c11-cache-persist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn litmus_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus/mp_ra.litmus")
}

/// The report's JSON with only the cache flag cleared: a warm hit must
/// be byte-identical to the cold run *including* its wall times, since
/// the persisted entry carries the original measurement.
fn sans_cache_flag(report: &CheckReport) -> String {
    report
        .to_json()
        .replace("\"cache_hit\":true", "\"cache_hit\":false")
}

#[test]
fn snapshot_on_drop_warms_a_fresh_session_byte_identically() {
    let path = temp_path("warm-restart");
    let mp = c11_operational::litmus::load_litmus_file(&litmus_file()).unwrap();
    let cold_program;
    let cold_litmus;
    {
        let session = Session::new(SessionConfig::default().workers(2).cache_path(&path));
        assert_eq!(session.stats().persist_loaded, 0, "no file yet: cold start");
        cold_program = session.run(CheckRequest::program(SB).traces(true)).unwrap();
        cold_litmus = session.run(CheckRequest::litmus(mp.clone())).unwrap();
        assert!(!cold_program.cache_hit() && !cold_litmus.cache_hit());
        // Dropping the session writes the snapshot.
    }
    let text = std::fs::read_to_string(&path).expect("snapshot written on drop");
    assert_eq!(text.lines().count(), 2, "one line per cached result");
    assert!(
        !text.contains("\"cache_hit\":true"),
        "entries persist as cold results"
    );

    let warm = Session::new(SessionConfig::default().workers(2).cache_path(&path));
    let stats = warm.stats();
    assert_eq!(stats.persist_loaded, 2, "both entries load");
    assert_eq!(stats.persist_skipped, 0);
    let hit_program = warm.run(CheckRequest::program(SB).traces(true)).unwrap();
    let hit_litmus = warm.run(CheckRequest::litmus(mp)).unwrap();
    assert!(hit_program.cache_hit(), "program warmed from disk");
    assert!(hit_litmus.cache_hit(), "litmus warmed from disk");
    assert_eq!(
        warm.stats().explorations,
        0,
        "a warmed session explores nothing"
    );
    // Byte identity modulo the cache flag — wall times included, since
    // the hit replays the persisted measurement.
    assert_eq!(sans_cache_flag(&hit_program), cold_program.to_json());
    assert_eq!(sans_cache_flag(&hit_litmus), cold_litmus.to_json());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_and_mismatched_lines_are_skipped_and_counted() {
    let path = temp_path("corrupt");
    {
        let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
        session.run(CheckRequest::program(SB)).unwrap();
    }
    let good = std::fs::read_to_string(&path).unwrap();
    let good_line = good.lines().next().unwrap();
    // A snapshot mangled in every way the loader must survive: truncated
    // mid-record, plain garbage, a wrong schema version, and a smuggled
    // cache_hit flag — plus blank lines, which are not errors.
    let mangled = format!(
        "{}\n{}\nnot json at all\n{}\n\n{}\n",
        good_line,
        &good_line[..good_line.len() / 2],
        good_line.replace("c11check/v1", "c11check/v0"),
        good_line.replace("\"cache_hit\":false", "\"cache_hit\":true"),
    );
    std::fs::write(&path, mangled).unwrap();

    let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
    let stats = session.stats();
    assert_eq!(stats.persist_loaded, 1, "only the intact line loads");
    assert_eq!(stats.persist_skipped, 4, "every mangled line is counted");
    assert!(
        session.run(CheckRequest::program(SB)).unwrap().cache_hit(),
        "the intact entry still serves"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_results_never_reach_the_snapshot() {
    let path = temp_path("interrupted");
    let contended = "vars x; \
         thread t1 { x := 1; x := 2; x := 3; x := 4; } \
         thread t2 { x := 5; x := 6; x := 7; x := 8; } \
         thread t3 { x := 9; x := 10; x := 11; x := 12; }";
    {
        let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
        let report = session
            .run(CheckRequest::program(contended).timeout(Duration::ZERO))
            .unwrap();
        assert!(report.interrupt().is_some(), "deadline 0 must interrupt");
        assert_eq!(session.flush_cache().unwrap(), 0, "nothing persistable");
    }
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    assert_eq!(
        text.trim(),
        "",
        "an interrupted result must never round-trip via disk"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_capacity_is_enforced_against_loaded_snapshots() {
    let path = temp_path("capacity");
    {
        let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
        for i in 0..3 {
            let src = format!("vars x; thread t {{ x := {i}; }}");
            session.run(CheckRequest::program(src.as_str())).unwrap();
        }
        assert_eq!(session.flush_cache().unwrap(), 3);
    }
    let session = Session::new(
        SessionConfig::default()
            .workers(1)
            .cache_capacity(1)
            .cache_path(&path),
    );
    let stats = session.stats();
    assert_eq!(stats.persist_loaded, 3, "every line parses");
    assert_eq!(
        session.cache_len(),
        1,
        "the capacity bound holds against a larger snapshot"
    );
    assert_eq!(stats.evictions, 2, "the overflow is evicted (and counted)");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flush_without_a_path_is_a_quiet_no_op() {
    let session = Session::new(SessionConfig::default().workers(1));
    session.run(CheckRequest::program(SB)).unwrap();
    assert_eq!(session.flush_cache().unwrap(), 0);
    // And with caching disabled, a configured path stays untouched.
    let path = temp_path("no-cache");
    let session = Session::new(
        SessionConfig::default()
            .workers(1)
            .cache(false)
            .cache_path(&path),
    );
    session.run(CheckRequest::program(SB)).unwrap();
    assert_eq!(session.flush_cache().unwrap(), 0);
    drop(session);
    assert!(!path.exists(), "cache off: no snapshot file appears");
}

#[test]
fn held_snapshot_lock_skips_load_and_flush_with_counted_stat() {
    let path = temp_path("flock-held");
    {
        let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
        session.run(CheckRequest::program(SB)).unwrap();
        // Dropping the session writes the snapshot (lock uncontended).
    }
    assert!(path.exists(), "snapshot written on drop");
    // "Another process" holds the sidecar lock: flock conflicts are per
    // open file description, so a second open within this process
    // conflicts exactly like a foreign one.
    let foreign = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(path.with_extension("lock"))
        .unwrap();
    foreign.try_lock().expect("the sidecar lock starts free");
    let session = Session::new(SessionConfig::default().workers(1).cache_path(&path));
    let stats = session.stats();
    assert_eq!(
        stats.persist_loaded, 0,
        "held lock: the warm load is skipped"
    );
    assert_eq!(stats.persist_locked, 1, "…and the skip is counted");
    session.run(CheckRequest::program(SB)).unwrap();
    assert_eq!(
        session.flush_cache().unwrap(),
        0,
        "held lock: the rewrite is skipped, not raced"
    );
    assert_eq!(session.stats().persist_locked, 2);
    drop(foreign);
    assert_eq!(
        session.flush_cache().unwrap(),
        1,
        "released lock: the rewrite proceeds"
    );
    assert_eq!(
        session.stats().persist_locked,
        2,
        "no further skips counted"
    );
    drop(session);
    let warm = Session::new(SessionConfig::default().workers(1).cache_path(&path));
    assert_eq!(
        warm.stats().persist_loaded,
        1,
        "the snapshot survived intact"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("lock"));
}
