//! E5 — Example 4.5: pre-executions admit reads before the write they
//! read from; the RA semantics cannot take that order, but reaches the
//! same final state after reordering (the permutation argument behind
//! Lemma 4.7 / Theorem 4.8).

use c11_operational::axiomatic::justify::justifications;
use c11_operational::axiomatic::replay::replay;
use c11_operational::core::model::pe_steps_commute;
use c11_operational::prelude::*;

/// The program of Example 4.5: `thread 1: z := x`, `thread 2: x := 5`.
fn example_program() -> Prog {
    parse_program(
        "vars x z;
         thread t1 { z := x; }
         thread t2 { x := 5; }",
    )
    .unwrap()
}

/// Under the pre-execution semantics the read of `x = 5` can happen
/// *first* (before thread 2's write exists).
#[test]
fn pe_admits_read_before_write() {
    let prog = example_program();
    let model = PreExecutionModel::for_program(&prog);
    let cfg = c11_operational::core::Config::initial(&model, &prog);
    // First step: thread 1 reads x. The PE model offers every universe
    // value, including 5, which no write has produced yet.
    let read5 = cfg
        .successors(&model)
        .into_iter()
        .find(|s| {
            s.tid == ThreadId(1)
                && matches!(
                    s.label,
                    c11_operational::lang::StepLabel::Act(Action::Rd { val: 5, .. })
                )
        })
        .expect("PE read of 5 enabled before the write");
    assert_eq!(read5.next.mem.len(), 3); // 2 inits + the read event
    assert!(read5.next.mem.rf().is_empty());
}

/// Under RA, no read of `x = 5` is enabled in the initial state.
#[test]
fn ra_rejects_read_before_write() {
    let prog = example_program();
    let cfg = c11_operational::core::Config::initial(&RaModel, &prog);
    assert!(cfg.successors(&RaModel).into_iter().all(|s| {
        !(s.tid == ThreadId(1)
            && matches!(
                s.label,
                c11_operational::lang::StepLabel::Act(Action::Rd { val: 5, .. })
            ))
    }));
}

/// The full pre-execution of Example 4.5 is justifiable, and the replay
/// (Theorem 4.8) reaches the justifying C11 state through the RA
/// semantics in rf-respecting order.
#[test]
fn e5_example_4_5_round_trip() {
    let prog = example_program();
    let model = PreExecutionModel::for_program(&prog);
    let explorer = Explorer::new(model);
    let res = explorer.explore(&prog, ExploreConfig::default());
    assert!(!res.truncated);
    // Among all terminated pre-executions, the one reading 5 must be
    // justifiable, and its justification replayable.
    let mut justified_runs = 0;
    for f in &res.finals {
        let js = justifications(&f.mem);
        for j in &js {
            replay(j).expect("every justification is RA-reachable");
            justified_runs += 1;
        }
    }
    assert!(justified_runs >= 2, "x=0 and x=5 runs both justify");
    // And some pre-execution (the one reading garbage, e.g. 1) has no
    // justification at all.
    assert!(res.finals.iter().any(|f| justifications(&f.mem).is_empty()));
}

/// Lemma 4.7: every linearization of `sb` of a pre-execution run is itself
/// a pre-execution run reaching the same `(D, sb)`.
#[test]
fn lemma_4_7_all_sb_linearizations_replay() {
    use c11_operational::core::Event;
    use c11_operational::relations::{all_linearizations, BitSet};
    // Build a PE state with two threads, two events each.
    let s0 = C11State::initial(&[0, 0]);
    let (s, _) = s0.append_event(Event::new(
        ThreadId(1),
        Action::Wr {
            var: VarId(0),
            val: 1,
            release: false,
        },
    ));
    let (s, _) = s.append_event(Event::new(
        ThreadId(1),
        Action::Rd {
            var: VarId(1),
            val: 7,
            acquire: false,
        },
    ));
    let (s, _) = s.append_event(Event::new(
        ThreadId(2),
        Action::Wr {
            var: VarId(1),
            val: 7,
            release: true,
        },
    ));
    let (target, _) = s.append_event(Event::new(
        ThreadId(2),
        Action::Rd {
            var: VarId(0),
            val: 0,
            acquire: true,
        },
    ));
    let non_init = BitSet::from_iter(target.ids().filter(|&e| !target.event(e).is_init()));
    let canon = target.canonical();
    let mut count = 0usize;
    all_linearizations(target.sb(), &non_init, |lin| {
        // Replay events in this order through PE appends.
        let mut cur = s0.clone();
        for &e in lin {
            let (next, _) = cur.append_event(*target.event(e));
            cur = next;
        }
        assert_eq!(cur.canonical(), canon, "Lemma 4.7 replay");
        count += 1;
        true
    });
    // 2 independent threads of 2 events each: C(4,2) = 6 linearizations.
    assert_eq!(count, 6);
}

/// Proposition 4.1 / 2.3: cross-thread PE steps commute.
#[test]
fn pe_commutation_property() {
    let prog = example_program();
    let model = PreExecutionModel::for_program(&prog);
    let s = model.init(&prog);
    let a = (
        ThreadId(1),
        Action::Rd {
            var: VarId(0),
            val: 5,
            acquire: false,
        },
    );
    let b = (
        ThreadId(2),
        Action::Wr {
            var: VarId(0),
            val: 5,
            release: false,
        },
    );
    assert!(pe_steps_commute(&s, a, b));
    assert!(pe_steps_commute(&s, b, a));
}
