//! The `Session` service layer, end to end over the litmus corpora:
//! fingerprint-keyed result caching (cache-hit reports byte-identical to
//! cold runs modulo `wall_micros`/`cache_hit`), batch submission vs
//! sequential one-shot equivalence at 1/2/4 pool workers, and the
//! acceptance bar — a warm-cache `run_batch` over the 12-file `litmus/`
//! corpus performs **zero** new explorations (≤ 1 per distinct program
//! fingerprint overall), asserted through the session's counters.

use c11_operational::prelude::*;
use std::path::Path;

fn litmus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus")
}

/// The report's JSON with the run-dependent bits (wall times, cache
/// flag) normalised away — byte-equality of the rest is the contract.
fn normalized_json(report: &CheckReport) -> String {
    let mut r = report.clone();
    r.clear_run_identity();
    r.to_json()
}

/// Test-local normalisation via the public fields.
trait ClearRunIdentity {
    fn clear_run_identity(&mut self);
}

impl ClearRunIdentity for CheckReport {
    fn clear_run_identity(&mut self) {
        match self {
            CheckReport::Outcomes(r) => {
                r.meta.cache_hit = false;
                r.stats.wall_micros = 0;
            }
            CheckReport::Count(r) => {
                r.meta.cache_hit = false;
                r.stats.wall_micros = 0;
            }
            CheckReport::Invariant(r) => {
                r.meta.cache_hit = false;
                r.stats.wall_micros = 0;
            }
            CheckReport::Litmus(r) => {
                r.meta.cache_hit = false;
                r.ra.wall_micros = 0;
                r.sc.wall_micros = 0;
            }
        }
    }
}

/// Acceptance criterion: a warm-cache batch over the 12-file corpus does
/// at most one exploration per distinct program fingerprint — i.e. the
/// second batch does none at all.
#[test]
fn warm_batch_explores_at_most_once_per_fingerprint() {
    let session = Session::new(SessionConfig::default().workers(4));
    let batch = || BatchRequest::litmus_dir(&litmus_dir()).expect("corpus loads");
    let n = batch().len();
    assert!(n >= 12, "litmus/ must hold the 12-file corpus, found {n}");

    let cold = session.run_batch(batch());
    assert!(cold.all_ok(), "{:?}", cold.stats);
    assert_eq!(cold.stats.jobs, n);
    let explorations_cold = session.stats().explorations;
    assert_eq!(
        explorations_cold, n,
        "cold: exactly one exploration per distinct fingerprint"
    );

    let warm = session.run_batch(batch());
    assert!(warm.all_ok());
    assert_eq!(warm.stats.cache_hits, n, "warm: every job served cached");
    assert_eq!(
        session.stats().explorations,
        explorations_cold,
        "warm batch must not explore anything new"
    );
    // Every warm report carries the flag.
    for report in &warm.reports {
        assert!(report.as_ref().unwrap().cache_hit());
    }
}

/// Duplicate submissions inside one batch coalesce on the pending slot:
/// still one exploration per distinct fingerprint, even cold.
#[test]
fn duplicates_within_one_cold_batch_coalesce() {
    let tests = c11_operational::litmus::load_litmus_dir(&litmus_dir()).unwrap();
    let mp = tests.iter().find(|t| t.name == "MP-ra-file").unwrap();
    let batch: BatchRequest = (0..6).map(|_| CheckRequest::litmus(mp.clone())).collect();
    let session = Session::new(SessionConfig::default().workers(4));
    let out = session.run_batch(batch);
    assert!(out.all_ok());
    assert_eq!(session.stats().explorations, 1);
    assert_eq!(out.stats.cache_hits, 5);
}

/// Cache-hit reports are byte-identical to cold runs (modulo
/// `wall_micros` and `cache_hit`) across the whole built-in corpus —
/// and both match a fresh exploration in an unrelated session, so the
/// cache can never change an answer.
#[test]
fn cache_hits_are_byte_identical_across_the_corpus() {
    let session = Session::default();
    for test in c11_operational::litmus::corpus() {
        let cold = session.run(CheckRequest::litmus(test.clone())).unwrap();
        let warm = session.run(CheckRequest::litmus(test.clone())).unwrap();
        assert!(!cold.cache_hit(), "{}", test.name);
        assert!(warm.cache_hit(), "{}", test.name);
        assert_eq!(
            normalized_json(&cold),
            normalized_json(&warm),
            "{}: warm report must equal its cold run",
            test.name
        );
        // A fresh session recomputes; the answer must still be identical.
        let fresh = Session::default()
            .run(CheckRequest::litmus(test.clone()))
            .unwrap();
        assert_eq!(
            normalized_json(&fresh),
            normalized_json(&warm),
            "{}: caching must not change the answer",
            test.name
        );
    }
}

/// `run_batch` and N one-shot `run()` calls produce equal report
/// multisets (element-wise, in fact: batch order is submission order) at
/// 1, 2 and 4 pool workers, over litmus verdicts and program outcomes
/// alike.
#[test]
fn run_batch_matches_sequential_runs_at_1_2_4_workers() {
    let tests = c11_operational::litmus::load_litmus_dir(&litmus_dir()).unwrap();
    let requests = || -> Vec<CheckRequest> {
        let mut reqs: Vec<CheckRequest> = tests
            .iter()
            .map(|t| CheckRequest::litmus(t.clone()))
            .collect();
        reqs.push(CheckRequest::program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        ));
        reqs.push(
            CheckRequest::program("vars x; thread t { x := 1; x := 2; }").mode(Mode::CountOnly),
        );
        reqs
    };
    let baseline: Vec<String> = requests()
        .into_iter()
        .map(|r| normalized_json(&r.run().unwrap()))
        .collect();
    for workers in [1usize, 2, 4] {
        let session = Session::new(SessionConfig::default().workers(workers));
        let out = session.run_batch(requests().into());
        assert!(out.all_ok());
        let batch: Vec<String> = out
            .reports
            .iter()
            .map(|r| normalized_json(r.as_ref().unwrap()))
            .collect();
        assert_eq!(batch, baseline, "batch at {workers} workers diverged");
    }
}

/// The new R/S/ISA2 file shapes are present and verified under both
/// models through the batch API (each litmus job explores RA and SC).
#[test]
fn r_s_isa2_file_shapes_pass_under_both_models() {
    let session = Session::new(SessionConfig::default().workers(2));
    let out = session.run_batch(BatchRequest::litmus_dir(&litmus_dir()).unwrap());
    let mut seen = Vec::new();
    for report in &out.reports {
        let CheckReport::Litmus(r) = report.as_ref().unwrap() else {
            panic!("litmus batch produces litmus reports");
        };
        if ["R", "S", "ISA2"].contains(&r.name.as_str()) {
            seen.push(r.name.clone());
            assert!(r.pass, "{}", r.name);
            // Both models actually explored (RA and SC stats populated),
            // and neither was cut short — the verdicts are unconditional.
            assert!(r.ra.unique > 0 && r.sc.unique > 0, "{}", r.name);
            assert!(!r.ra.truncated && !r.sc.truncated, "{}", r.name);
            assert!(!r.observed_ra && !r.observed_sc, "{}", r.name);
        }
    }
    seen.sort();
    assert_eq!(seen, ["ISA2", "R", "S"], "all three new shapes present");
}

/// The one-shot `CheckRequest::run()` shim and an explicit session give
/// identical reports — the shim really is a throwaway session.
#[test]
fn one_shot_run_is_a_session_shim() {
    let req = || {
        CheckRequest::program(
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        )
        .traces(true)
    };
    let shim = req().run().unwrap();
    let session = Session::default().run(req()).unwrap();
    assert_eq!(normalized_json(&shim), normalized_json(&session));
}
