//! The DPOR backend's acceptance bar: corpus-wide equality with the
//! sequential reference engine — identical state sets, finals multisets,
//! litmus verdicts and truncation at several bounds (truncating ones
//! included) — plus byte-identical `CheckReport`s through the
//! `CheckRequest` front door (modulo `wall_micros`/work counters, which
//! is exactly where DPOR differs: strictly fewer generated states on
//! programs with independent steps), and the `c11check` CLI surface
//! (`--reduction sleep-set`, the deprecated `--backend dpor` shim,
//! `--help` guidance, unknown-value rejection).

use c11_operational::explore::{explore_dpor, Stats};
use c11_operational::litmus::{corpus, LitmusTest};
use c11_operational::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn multiset(snaps: Vec<RegSnapshot>) -> HashMap<RegSnapshot, usize> {
    let mut m = HashMap::new();
    for s in snaps {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

/// Raw-engine equality on one program under one config: every state,
/// every final, the same truncation — and never more generated work.
fn assert_dpor_matches_sequential(prog: &Prog, cfg: &ExploreConfig, what: &str) {
    let seq = Explorer::new(RaModel).explore(prog, cfg.clone());
    let dpor = explore_dpor(&RaModel, prog, cfg);
    assert_eq!(dpor.unique, seq.unique, "{what}: unique");
    assert_eq!(dpor.truncated, seq.truncated, "{what}: truncated");
    assert_eq!(dpor.stuck, seq.stuck, "{what}: stuck");
    assert_eq!(
        multiset(dpor.final_snapshots()),
        multiset(seq.final_snapshots()),
        "{what}: finals multiset"
    );
    assert!(
        dpor.generated <= seq.generated,
        "{what}: DPOR must never generate more ({} vs {})",
        dpor.generated,
        seq.generated
    );
}

/// The corpus at the tests' own bounds, at a tight truncating event
/// bound, and at a depth bound: full equality everywhere.
#[test]
fn dpor_full_results_match_sequential_on_corpus_at_several_bounds() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let bounds = [
            ExploreConfig::default().max_events(test.max_events),
            // Tight event bound: most corpus shapes truncate here, so
            // this pins the truncation-equality contract.
            ExploreConfig::default().max_events(6),
            ExploreConfig::default().max_depth(7),
        ];
        for (i, cfg) in bounds.iter().enumerate() {
            assert_dpor_matches_sequential(&prog, cfg, &format!("{} (bound set {i})", test.name));
        }
    }
}

/// The example programs shipped in the repo's tests: the paper's core
/// shapes plus swap/update and wider-than-two-thread programs.
#[test]
fn dpor_matches_sequential_on_example_programs() {
    let programs: &[(&str, &str)] = &[
        (
            "MP-ra",
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
        (
            "SB",
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        ),
        (
            "wide-3",
            "vars a b c;
             thread t1 { a := 1; b := 2; c := 3; }
             thread t2 { r0 <- a; r1 <- b; r2 <- c; }",
        ),
        (
            "contended",
            "vars x;
             thread t1 { x := 1; x := 2; }
             thread t2 { x := 3; x := 4; }",
        ),
        (
            "swap-lock",
            "vars l d;
             thread t1 { r0 <- l.swap(1); d := 7; }
             thread t2 { r0 <- l.swap(1); r1 <- d; }",
        ),
        (
            "wrc",
            "vars x y;
             thread t1 { x := 1; }
             thread t2 { r0 <- x; y :=R 1; }
             thread t3 { r0 <-A y; r1 <- x; }",
        ),
        (
            "spin",
            "vars x;
             thread t1 { while (x == 0) { skip; } }
             thread t2 { x := 1; }",
        ),
        (
            "if-else",
            "vars x y;
             thread t1 { x := 1; r0 <- y; if (r0 == 1) { x := 2; } else { skip; } }
             thread t2 { y := 1; r0 <- x; }",
        ),
    ];
    for (name, src) in programs {
        let prog = parse_program(src).expect("example parses");
        for cfg in [
            ExploreConfig::default().max_events(12),
            ExploreConfig::default().max_events(5),
        ] {
            assert_dpor_matches_sequential(&prog, &cfg, name);
        }
    }
}

/// Normalises the parts an engine/reduction choice may legitimately
/// change: wall time and work counters (`stats`) and the engine ×
/// reduction tags themselves.
fn normalized_json(mut report: CheckReport) -> String {
    let scrub = |meta: &mut Meta| {
        meta.engine = Engine::Sequential;
        meta.reduction = Reduction::None;
    };
    match &mut report {
        CheckReport::Outcomes(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Count(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Invariant(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Litmus(r) => {
            r.ra = Stats::default();
            r.sc = Stats::default();
            scrub(&mut r.meta);
        }
    }
    report.to_json()
}

/// The acceptance criterion, verbatim: `Reduction::SleepSet` produces
/// byte-identical `CheckReport`s (modulo `wall_micros`/`stats` and the
/// reduction tag) to the unreduced sequential engine across the entire
/// litmus corpus, in both litmus-verdict and outcome-enumeration modes.
#[test]
fn check_request_reports_byte_identical_across_backends_on_corpus() {
    for test in corpus() {
        let name = test.name.clone();
        let modes: [fn(LitmusTest) -> CheckRequest; 2] = [
            |t| CheckRequest::litmus(t),
            |t| CheckRequest::litmus(t).mode(Mode::Outcomes),
        ];
        for (i, mk) in modes.iter().enumerate() {
            let run = |reduction: Reduction| {
                mk(test.clone())
                    .reduction(reduction)
                    .run()
                    .expect("corpus programs parse")
            };
            let seq = run(Reduction::None);
            let dpor = run(Reduction::SleepSet);
            assert!(
                dpor.stats().generated <= seq.stats().generated,
                "{name} (mode {i}): more work than sequential"
            );
            assert_eq!(
                normalized_json(seq),
                normalized_json(dpor),
                "{name} (mode {i}): report bytes"
            );
        }
    }
}

/// The legacy `Backend` enum keeps working for one deprecation cycle:
/// `Backend::Dpor` decomposes to the sequential engine + sleep-set
/// reduction, and the `.backend(..)` sugar routes through the new axes.
#[test]
#[allow(deprecated)]
fn legacy_backend_dpor_still_resolves_through_the_new_axes() {
    assert_eq!(Backend::Dpor.engine(), Engine::Sequential);
    assert_eq!(Backend::Dpor.reduction(), Reduction::SleepSet);
    let report = CheckRequest::program("vars x; thread t1 { x := 1; } thread t2 { x := 2; }")
        .backend(Backend::Dpor)
        .run()
        .unwrap();
    assert_eq!(report.meta().engine, Engine::Sequential);
    assert_eq!(report.meta().reduction, Reduction::SleepSet);
}

/// The `max_states` safety cap is the one bound outside the identical-
/// reports contract (the kept prefix is exploration-order-dependent,
/// for the parallel engine too): both engines must still agree that the
/// search was truncated, and honour the cap.
#[test]
fn max_states_cap_truncates_both_engines() {
    let src = "vars x;
         thread t1 { x := 1; x := 2; x := 3; }
         thread t2 { x := 4; x := 5; x := 6; }";
    let prog = parse_program(src).unwrap();
    let cfg = ExploreConfig::default().max_states(10);
    let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
    let dpor = explore_dpor(&RaModel, &prog, &cfg);
    assert!(seq.truncated && dpor.truncated);
    // Overshoot is bounded by one expansion's successor batch.
    assert!(dpor.unique <= seq.unique + 32);
}

/// Programs wider than the 64-bit sleep mask fall back to the plain BFS
/// (no reduction) instead of overflowing the shift — regression test for
/// the `1 << t` guard.
#[test]
fn programs_past_the_mask_width_fall_back_to_plain_bfs() {
    let threads: String = (0..70)
        .map(|i| format!("thread t{i} {{ x := {}; }}\n", i % 2))
        .collect();
    let prog = parse_program(&format!("vars x;\n{threads}")).unwrap();
    let cfg = ExploreConfig::default()
        .max_states(200)
        .record_traces(false);
    let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
    let dpor = explore_dpor(&RaModel, &prog, &cfg);
    assert!(seq.truncated && dpor.truncated, "70 writers blow the cap");
    assert!(dpor.unique > 0 && dpor.generated > 0);
}

/// Invariant mode: same verdict, same violation count, through the
/// parallel engine and the sleep-set reduction (the property the
/// engine-free cache key rests on).
#[test]
fn invariant_mode_agrees_across_all_backends() {
    let mk_inv = || {
        Invariant::new("never-both-at-2", |v: &ConfigView| {
            !(v.pc(ThreadId(1)) == Some(2) && v.pc(ThreadId(2)) == Some(2))
        })
    };
    let src = "vars x y;
         thread t1 { 1: x := 1; 2: r0 <- y; }
         thread t2 { 1: y := 1; 2: r0 <- x; }";
    let run = |engine: Engine, reduction: Reduction| {
        let report = CheckRequest::program(src)
            .mode(Mode::Invariant(mk_inv()))
            .engine(engine)
            .reduction(reduction)
            .run()
            .unwrap();
        let CheckReport::Invariant(r) = report else {
            panic!("expected an invariant report");
        };
        r
    };
    let seq = run(Engine::Sequential, Reduction::None);
    for (engine, reduction) in [
        (Engine::Parallel { workers: 2 }, Reduction::None),
        (Engine::Sequential, Reduction::SleepSet),
    ] {
        let other = run(engine, reduction);
        assert_eq!(other.holds, seq.holds, "{engine:?}+{reduction:?}");
        assert_eq!(
            other.violations.len(),
            seq.violations.len(),
            "{engine:?}+{reduction:?}: DPOR visits every state, so it sees every violation"
        );
    }
    assert!(!seq.holds, "RA allows both threads between write and read");
}

/// DPOR through the session cache: a sleep-set-computed report answers a
/// sequential request (the engine is not in the key, and sleep-set keeps
/// the exhaustive contract) and vice versa.
#[test]
fn session_cache_is_backend_neutral_for_dpor() {
    let session = Session::new(SessionConfig::default());
    let req = |r: Reduction| {
        CheckRequest::program("vars x y; thread t1 { x := 1; } thread t2 { y := 1; }").reduction(r)
    };
    let cold = session.run(req(Reduction::SleepSet)).unwrap();
    assert!(!cold.cache_hit());
    assert_eq!(cold.meta().reduction, Reduction::SleepSet);
    let warm = session.run(req(Reduction::None)).unwrap();
    assert!(
        warm.cache_hit(),
        "an exhaustive-contract reduction must not split the cache key"
    );
    assert_eq!(
        warm.meta().reduction,
        Reduction::SleepSet,
        "cached reports carry the computing reduction"
    );
    assert_eq!(session.stats().explorations, 1);
    assert_eq!(session.stats().explorations_sleep_set, 1);
}

// ---- randomised programs ------------------------------------------------

const VARS2: [&str; 2] = ["x", "y"];

fn arb_stmt() -> impl Strategy<Value = String> {
    let var = prop::sample::select(VARS2.to_vec());
    let val = 1..4u32;
    prop_oneof![
        (var.clone(), val.clone(), any::<bool>())
            .prop_map(|(x, v, rel)| format!("{x} :={} {v};", if rel { "R" } else { "" })),
        (var.clone(), 0..2u8, any::<bool>())
            .prop_map(|(x, r, acq)| format!("r{r} <-{} {x};", if acq { "A" } else { "" })),
        (var, val).prop_map(|(x, v)| format!("r0 <- {x}.swap({v});")),
    ]
}

fn arb_thread_src() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(), 1..4).prop_map(|stmts| stmts.join(" "))
}

fn arb_prog_src() -> impl Strategy<Value = String> {
    (arb_thread_src(), arb_thread_src())
        .prop_map(|(t1, t2)| format!("vars x y;\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random two-thread programs over two shared variables (reads,
    /// writes — release/acquire mixed — and swaps): DPOR equals the
    /// sequential engine on every count that reaches a report, both
    /// unbounded and under a truncating event bound, under RA and SC.
    #[test]
    fn prop_dpor_matches_sequential(src in arb_prog_src()) {
        let prog = parse_program(&src).expect("generated programs parse");
        for cfg in [
            ExploreConfig::default(),
            ExploreConfig::default().max_events(5),
        ] {
            let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
            let dpor = explore_dpor(&RaModel, &prog, &cfg);
            prop_assert_eq!(dpor.unique, seq.unique, "RA unique ({})", src.clone());
            prop_assert_eq!(dpor.truncated, seq.truncated, "RA truncated ({})", src.clone());
            prop_assert_eq!(
                multiset(dpor.final_snapshots()),
                multiset(seq.final_snapshots()),
                "RA finals ({})", src.clone()
            );
            prop_assert!(dpor.generated <= seq.generated, "RA generated ({})", src.clone());
        }
        let cfg = ExploreConfig::default().max_depth(16);
        let seq = Explorer::new(ScModel).explore(&prog, cfg.clone());
        let dpor = explore_dpor(&ScModel, &prog, &cfg);
        prop_assert_eq!(dpor.unique, seq.unique, "SC unique ({})", src.clone());
        prop_assert_eq!(
            multiset(dpor.final_snapshots()),
            multiset(seq.final_snapshots()),
            "SC finals ({})", src.clone()
        );
    }
}

// ---- CLI surface --------------------------------------------------------

mod cli {
    use std::process::Command;

    fn c11check(args: &[&str]) -> (bool, String, String) {
        let out = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--bin", "c11check", "--"])
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("spawn cargo run c11check");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    /// `--help` exits 0 and names every engine and reduction with
    /// guidance (plus the deprecated --backend spelling).
    #[test]
    fn help_lists_all_backends_with_guidance() {
        let (ok, stdout, _) = c11check(&["--help"]);
        assert!(ok, "--help must exit 0");
        for name in [
            "sequential",
            "parallel",
            "none",
            "sleep-set",
            "source-set",
            "--backend",
            "deprecated",
        ] {
            assert!(stdout.contains(name), "--help must mention {name}");
        }
        assert!(
            stdout.contains("fewer generated states"),
            "sleep-set guidance line missing:\n{stdout}"
        );
        assert!(
            stdout.contains("finals-only contract"),
            "source-set contract guidance missing:\n{stdout}"
        );
    }

    /// Unknown values are rejected with the valid set in the error, for
    /// both new flags and the legacy one.
    #[test]
    fn unknown_backend_is_rejected_with_the_valid_set() {
        let (ok, _, stderr) = c11check(&["--backend", "bogus", "litmus/mp_ra.litmus"]);
        assert!(!ok, "unknown backend must fail");
        assert!(stderr.contains("bogus"), "error names the offender");
        assert!(
            stderr.contains("sequential, parallel, dpor"),
            "error lists the valid set:\n{stderr}"
        );
        let (ok, _, stderr) = c11check(&["--engine", "dpor", "litmus/mp_ra.litmus"]);
        assert!(!ok, "dpor is a reduction, not an engine");
        assert!(
            stderr.contains("sequential, parallel"),
            "error lists the valid engines:\n{stderr}"
        );
        let (ok, _, stderr) = c11check(&["--reduction", "dpor", "litmus/mp_ra.litmus"]);
        assert!(!ok, "dpor is not a reduction name");
        assert!(
            stderr.contains("none, sleep-set, source-set"),
            "error lists the valid reductions:\n{stderr}"
        );
        let (ok, _, stderr) = c11check(&[
            "--backend",
            "dpor",
            "--reduction",
            "none",
            "litmus/mp_ra.litmus",
        ]);
        assert!(!ok, "legacy and new flags must not combine");
        assert!(stderr.contains("legacy"), "error says why:\n{stderr}");
    }

    /// The CLI end to end on the sleep-set reduction: litmus dir mode
    /// passes and stamps the reduction into the JSON report — via the
    /// new flag and via the deprecated `--backend dpor` shim alike.
    #[test]
    fn litmus_dir_mode_runs_on_dpor() {
        for flags in [
            &["--reduction", "sleep-set"] as &[&str],
            &["--backend", "dpor"],
        ] {
            let args: Vec<&str> = ["--litmus", "litmus", "--json"]
                .iter()
                .chain(flags)
                .copied()
                .collect();
            let (ok, stdout, stderr) = c11check(&args);
            assert!(ok, "corpus must pass on sleep-set ({flags:?}): {stderr}");
            assert!(stdout.contains("\"backend\":{\"kind\":\"sequential\"}"));
            assert!(stdout
                .contains("\"reduction\":{\"kind\":\"sleep-set\",\"contract\":\"exhaustive\"}"));
            assert!(stdout.contains("\"failed\":0"));
        }
    }
}
