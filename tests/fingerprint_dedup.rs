//! Corpus-wide equivalence of the fingerprint dedup with the old
//! full-key dedup: exploring every litmus test must visit exactly the same
//! number of distinct configurations and terminated configurations as a
//! reference BFS that deduplicates by the materialised
//! `(coms, regs, CanonicalState)` tuple — i.e. the 128-bit fingerprints
//! neither collide on this corpus nor distinguish states the canonical
//! form identifies.

use c11_operational::core::config::Config;
use c11_operational::core::model::MemoryModel;
use c11_operational::core::state::CanonicalState;
use c11_operational::explore::parallel_explore;
use c11_operational::lang::step::RegFile;
use c11_operational::litmus::corpus;
use c11_operational::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Reference explorer: breadth-first with the pre-fingerprint visited key
/// (cloned commands + register files + canonical memory state), mirroring
/// the engine's bounds. Returns `(unique, finals)`.
fn full_key_explore(prog: &Prog, max_events: usize) -> (usize, usize) {
    type Key = (Vec<Com>, Vec<RegFile>, CanonicalState);
    let model = RaModel;
    let key = |c: &Config<RaModel>| -> Key {
        (
            c.coms.iter().map(|c| (**c).clone()).collect(),
            c.regs.clone(),
            model.canonical_key(&c.mem),
        )
    };
    let initial = Config::initial(&model, prog);
    let mut visited: HashSet<Key> = HashSet::new();
    visited.insert(key(&initial));
    let mut unique = 1usize;
    let mut finals = 0usize;
    let mut queue: VecDeque<Config<RaModel>> = VecDeque::new();
    if initial.is_terminated() {
        finals += 1;
    } else {
        queue.push_back(initial);
    }
    while let Some(config) = queue.pop_front() {
        if model.state_size(&config.mem) >= max_events {
            continue;
        }
        for step in config.successors(&model) {
            let next = step.next;
            if !visited.insert(key(&next)) {
                continue;
            }
            unique += 1;
            if next.is_terminated() {
                finals += 1;
            } else {
                queue.push_back(next);
            }
        }
    }
    (unique, finals)
}

#[test]
fn fingerprint_dedup_matches_full_key_dedup_on_corpus() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let res = Explorer::new(RaModel)
            .explore(&prog, ExploreConfig::default().max_events(test.max_events));
        let (unique, finals) = full_key_explore(&prog, test.max_events);
        assert_eq!(res.unique, unique, "{}: unique diverged", test.name);
        assert_eq!(res.finals.len(), finals, "{}: finals diverged", test.name);
    }
}

#[test]
fn parallel_fingerprint_counts_match_sequential_on_corpus() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let seq = Explorer::new(RaModel)
            .explore(&prog, ExploreConfig::default().max_events(test.max_events));
        let cfg = ExploreConfig::default()
            .max_events(test.max_events)
            .record_traces(false);
        for workers in [1usize, 2, 4] {
            let par = parallel_explore(&RaModel, &prog, &cfg, workers);
            assert_eq!(par.unique, seq.unique, "{} at {workers} workers", test.name);
            assert_eq!(par.truncated, seq.truncated, "{} truncation", test.name);
        }
    }
}
