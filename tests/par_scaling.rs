//! The parallel backend's acceptance bar, mirroring `dpor_backend.rs`:
//! worker-count-independent equality with the sequential reference engine
//! — identical state counts, finals multisets, violation counts and
//! truncation flags at 1/2/4/8 workers — over the litmus corpus at
//! several bounds (truncating ones included), the repo's example
//! programs (three-thread shapes included), and randomised two/three-
//! thread programs. Plus the session-level cache-neutrality contract: a
//! report computed by the parallel backend answers sequential requests
//! byte-identically modulo `stats`/`backend`.

use c11_operational::explore::{parallel_explore, parallel_explore_invariant, Stats};
use c11_operational::litmus::corpus;
use c11_operational::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn multiset(snaps: Vec<RegSnapshot>) -> HashMap<RegSnapshot, usize> {
    let mut m = HashMap::new();
    for s in snaps {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

/// Raw-engine equality on one program under one config, at every worker
/// count: every state, every final (as a multiset), the same stuck count
/// and the same truncation verdict.
fn assert_parallel_matches_sequential(prog: &Prog, cfg: &ExploreConfig, what: &str) {
    let seq = Explorer::new(RaModel).explore(prog, cfg.clone());
    for workers in WORKER_COUNTS {
        let par = parallel_explore(&RaModel, prog, cfg, workers);
        assert_eq!(par.unique, seq.unique, "{what} (w{workers}): unique");
        assert_eq!(
            par.truncated, seq.truncated,
            "{what} (w{workers}): truncated"
        );
        assert_eq!(par.stuck, seq.stuck, "{what} (w{workers}): stuck");
        assert_eq!(
            multiset(par.final_snapshots()),
            multiset(seq.final_snapshots()),
            "{what} (w{workers}): finals multiset"
        );
        assert_eq!(
            par.generated, seq.generated,
            "{what} (w{workers}): generated (no reduction, so exact)"
        );
    }
}

/// The corpus at the tests' own bounds, at a tight truncating event
/// bound, and at a depth bound: full equality everywhere. (The
/// `max_states` cap is exploration-order-dependent in which prefix it
/// keeps and is pinned separately in `dpor_backend.rs`.)
#[test]
fn parallel_full_results_match_sequential_on_corpus_at_several_bounds() {
    for test in corpus() {
        let prog = parse_program(&test.source).expect("corpus parses");
        let bounds = [
            ExploreConfig::default()
                .max_events(test.max_events)
                .record_traces(false),
            ExploreConfig::default().max_events(6).record_traces(false),
            ExploreConfig::default().max_depth(7).record_traces(false),
        ];
        for (i, cfg) in bounds.iter().enumerate() {
            assert_parallel_matches_sequential(
                &prog,
                cfg,
                &format!("{} (bound set {i})", test.name),
            );
        }
    }
}

/// The example programs shipped in the repo's tests: the paper's core
/// shapes plus swap/update and wider-than-two-thread programs (`wrc` is
/// the three-thread message-relay shape).
#[test]
fn parallel_matches_sequential_on_example_programs() {
    let programs: &[(&str, &str)] = &[
        (
            "MP-ra",
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
        (
            "SB",
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        ),
        (
            "wide-3",
            "vars a b c;
             thread t1 { a := 1; b := 2; c := 3; }
             thread t2 { r0 <- a; r1 <- b; r2 <- c; }",
        ),
        (
            "contended",
            "vars x;
             thread t1 { x := 1; x := 2; }
             thread t2 { x := 3; x := 4; }",
        ),
        (
            "swap-lock",
            "vars l d;
             thread t1 { r0 <- l.swap(1); d := 7; }
             thread t2 { r0 <- l.swap(1); r1 <- d; }",
        ),
        (
            "wrc",
            "vars x y;
             thread t1 { x := 1; }
             thread t2 { r0 <- x; y :=R 1; }
             thread t3 { r0 <-A y; r1 <- x; }",
        ),
        (
            "spin",
            "vars x;
             thread t1 { while (x == 0) { skip; } }
             thread t2 { x := 1; }",
        ),
        (
            "if-else",
            "vars x y;
             thread t1 { x := 1; r0 <- y; if (r0 == 1) { x := 2; } else { skip; } }
             thread t2 { y := 1; r0 <- x; }",
        ),
    ];
    for (name, src) in programs {
        let prog = parse_program(src).expect("example parses");
        for cfg in [
            ExploreConfig::default().max_events(12).record_traces(false),
            ExploreConfig::default().max_events(5).record_traces(false),
        ] {
            assert_parallel_matches_sequential(&prog, &cfg, name);
        }
    }
}

/// Invariant mode at every worker count: the violation count must be
/// exact, not merely the verdict. An invariant that fails precisely on
/// terminated configurations makes the expected count independently
/// checkable (it must equal the finals count).
#[test]
fn parallel_invariant_violation_counts_match_sequential() {
    let src = "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }";
    let prog = parse_program(src).unwrap();
    let cfg = ExploreConfig::default().record_traces(false);
    let inv = |c: &c11_operational::core::config::Config<RaModel>| !c.is_terminated();
    let seq = Explorer::new(RaModel).explore_invariant(&prog, cfg.clone(), inv);
    assert_eq!(seq.violations.len(), seq.finals.len());
    assert!(!seq.violations.is_empty());
    for workers in WORKER_COUNTS {
        let par = parallel_explore_invariant(&RaModel, &prog, &cfg, workers, &inv);
        assert_eq!(
            par.violations.len(),
            seq.violations.len(),
            "w{workers}: every worker must report every violation it visits"
        );
        assert_eq!(par.unique, seq.unique, "w{workers}: unique");
    }
}

// ---- randomised programs ------------------------------------------------

const VARS2: [&str; 2] = ["x", "y"];

fn arb_stmt() -> impl Strategy<Value = String> {
    let var = prop::sample::select(VARS2.to_vec());
    let val = 1..4u32;
    prop_oneof![
        (var.clone(), val.clone(), any::<bool>())
            .prop_map(|(x, v, rel)| format!("{x} :={} {v};", if rel { "R" } else { "" })),
        (var.clone(), 0..2u8, any::<bool>())
            .prop_map(|(x, r, acq)| format!("r{r} <-{} {x};", if acq { "A" } else { "" })),
        (var, val).prop_map(|(x, v)| format!("r0 <- {x}.swap({v});")),
    ]
}

fn arb_thread_src() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_stmt(), 1..4).prop_map(|stmts| stmts.join(" "))
}

/// Two- or three-thread programs over two shared variables: the third
/// thread is present in roughly half the cases, so the suite covers both
/// widths (the parallel frontier shape differs markedly between them).
fn arb_prog_src() -> impl Strategy<Value = String> {
    (
        arb_thread_src(),
        arb_thread_src(),
        prop::option::of(arb_thread_src()),
    )
        .prop_map(|(t1, t2, t3)| {
            let mut src = format!("vars x y;\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}");
            if let Some(t3) = t3 {
                src.push_str(&format!("\nthread t3 {{ {t3} }}"));
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two/three-thread programs (reads, writes — release/acquire
    /// mixed — and swaps): the parallel engine equals the sequential one
    /// on finals multisets, truncation flags and all counts, at every
    /// worker count, both under a roomy bound and a truncating one.
    #[test]
    fn prop_parallel_matches_sequential(src in arb_prog_src()) {
        let prog = parse_program(&src).expect("generated programs parse");
        for cfg in [
            ExploreConfig::default().max_events(10).record_traces(false),
            ExploreConfig::default().max_events(5).record_traces(false),
        ] {
            let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
            for workers in WORKER_COUNTS {
                let par = parallel_explore(&RaModel, &prog, &cfg, workers);
                prop_assert_eq!(par.unique, seq.unique, "unique w{} ({})", workers, src.clone());
                prop_assert_eq!(
                    par.truncated, seq.truncated,
                    "truncated w{} ({})", workers, src.clone()
                );
                prop_assert_eq!(
                    multiset(par.final_snapshots()),
                    multiset(seq.final_snapshots()),
                    "finals w{} ({})", workers, src.clone()
                );
            }
        }
    }
}

// ---- session cache-neutrality -------------------------------------------

/// Normalises the parts the cache may legitimately change: wall time and
/// work counters (`stats`), the engine tag, and the cache-hit marker.
fn normalized_json(mut report: CheckReport) -> String {
    let scrub = |meta: &mut Meta| {
        meta.engine = Engine::Sequential;
        meta.cache_hit = false;
    };
    match &mut report {
        CheckReport::Outcomes(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Count(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Invariant(r) => {
            r.stats = Stats::default();
            scrub(&mut r.meta);
        }
        CheckReport::Litmus(r) => {
            r.ra = Stats::default();
            r.sc = Stats::default();
            scrub(&mut r.meta);
        }
    }
    report.to_json()
}

/// The deterministic stress shape: a fully contended program (every pair
/// of steps conflicts) submitted through a `Session` whose
/// `parallel_threshold` forces the parallel backend. The parallel-
/// computed report must answer a later sequential request from the cache
/// and be byte-identical to a sequentially-computed report modulo
/// `stats`/`backend`.
#[test]
fn session_parallel_reports_are_cache_neutral() {
    let contended = "vars x;
         thread t1 { x := 1; x := 2; }
         thread t2 { x := 3; x := 4; }";
    let session = Session::new(SessionConfig::default().workers(4).parallel_threshold(2));
    let cold = session
        .run(CheckRequest::program(contended).mode(Mode::Outcomes))
        .unwrap();
    assert!(!cold.cache_hit());
    assert_eq!(
        cold.meta().engine,
        Engine::Parallel { workers: 4 },
        "threshold 2 must upgrade the two-thread contended program"
    );
    // A sequential request for the same program is served from the cache
    // (the key is engine-free) and carries the computing engine.
    let warm = session
        .run(
            CheckRequest::program(contended)
                .mode(Mode::Outcomes)
                .engine(Engine::Sequential),
        )
        .unwrap();
    assert!(warm.cache_hit(), "engine must not split the cache key");
    assert_eq!(warm.meta().engine, Engine::Parallel { workers: 4 });
    assert_eq!(session.stats().explorations, 1);
    // The payload the cache handed back is exactly what a sequential
    // session would have computed.
    let seq_session = Session::new(SessionConfig::default());
    let seq = seq_session
        .run(CheckRequest::program(contended).mode(Mode::Outcomes))
        .unwrap();
    assert_eq!(seq.meta().engine, Engine::Sequential);
    assert_eq!(
        normalized_json(warm),
        normalized_json(seq),
        "parallel-computed bytes must answer sequential requests"
    );
}
