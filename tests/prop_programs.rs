//! Property-based tests over randomly generated programs: soundness
//! (Theorem 4.4), the determinate-value lemmas, and the
//! justifiability of RA-reachable executions — each checked on every
//! reachable state of each generated program.

use c11_operational::axiomatic::justify::justifications;
use c11_operational::prelude::*;
use c11_operational::verify::assertions::{agreement_holds, dv_implies_singleton_ow};
use proptest::prelude::*;

const VARS: [VarId; 2] = [VarId(0), VarId(1)];
const THREADS: [ThreadId; 2] = [ThreadId(1), ThreadId(2)];

fn arb_stmt() -> impl Strategy<Value = Com> {
    let var = prop::sample::select(VARS.to_vec());
    let val = 1..4u32;
    prop_oneof![
        // x := v  /  x :=R v
        (var.clone(), val.clone(), any::<bool>()).prop_map(|(var, v, release)| Com::Assign {
            var,
            rhs: Exp::Val(v),
            release,
        }),
        // r <- x  /  r <-A x
        (var.clone(), 0..2u8, any::<bool>()).prop_map(|(var, r, acq)| Com::AssignReg {
            reg: RegId(r),
            rhs: if acq { Exp::VarA(var) } else { Exp::Var(var) },
        }),
        // x.swap(v)  /  r <- x.swap(v)
        (var, val, prop::option::of(0..2u8)).prop_map(|(var, v, out)| Com::Swap {
            var,
            new: Exp::Val(v),
            out: out.map(RegId),
        }),
    ]
}

fn arb_thread() -> impl Strategy<Value = Com> {
    prop::collection::vec(arb_stmt(), 1..4).prop_map(Com::block)
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    (arb_thread(), arb_thread())
        .prop_map(|(t1, t2)| Prog::new(vec![("x".into(), 0), ("y".into(), 0)], vec![t1, t2]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.4 on random programs: every reachable state is valid.
    #[test]
    fn prop_soundness(prog in arb_prog()) {
        let explorer = Explorer::new(RaModel);
        explorer.for_each_reachable(&prog, ExploreConfig::default(), |cfg| {
            let errs = check_validity(&cfg.mem);
            assert!(errs.is_empty(), "{errs:?}");
        });
    }

    /// Lemma 5.4 + Definition 5.1(3) on every reachable state.
    #[test]
    fn prop_determinate_value_lemmas(prog in arb_prog()) {
        let explorer = Explorer::new(RaModel);
        explorer.for_each_reachable(&prog, ExploreConfig::default(), |cfg| {
            for x in VARS {
                assert!(agreement_holds(&cfg.mem, x, &THREADS));
                for t in THREADS {
                    assert!(dv_implies_singleton_ow(&cfg.mem, t, x));
                }
            }
        });
    }

    /// Every RA-final execution is justifiable, i.e. appears in its own
    /// skeleton's justification set (soundness at the execution level).
    #[test]
    fn prop_ra_finals_are_justifiable(prog in arb_prog()) {
        let explorer = Explorer::new(RaModel);
        let res = explorer.explore(&prog, ExploreConfig::default());
        prop_assert!(!res.truncated);
        for f in res.finals.iter().take(8) {
            // Strip rf/mo to recover the pre-execution skeleton.
            let pre = C11State::from_parts(
                f.mem.events().to_vec(),
                f.mem.sb().clone(),
                Default::default(),
                Default::default(),
            );
            let js = justifications(&pre);
            let canon = f.mem.canonical();
            prop_assert!(
                js.iter().any(|j| j.canonical() == canon),
                "final state not in its own justification set"
            );
        }
    }

    /// Dedup is sound: the set of final register snapshots is unchanged.
    #[test]
    fn prop_dedup_preserves_outcomes(prog in arb_prog()) {
        let explorer = Explorer::new(RaModel);
        let with = explorer.explore(&prog, ExploreConfig::default());
        let without = explorer.explore(&prog, ExploreConfig {
            dedup: false,
            max_states: 200_000,
            ..Default::default()
        });
        prop_assert!(!with.truncated && !without.truncated);
        let snaps = |r: &c11_operational::explore::ExploreResult<RaModel>| {
            let mut v = r.final_register_states();
            v.sort_by_key(|s| format!("{s:?}"));
            v
        };
        prop_assert_eq!(snaps(&with), snaps(&without));
    }

    /// The SC baseline is a refinement: every SC outcome is an RA outcome.
    #[test]
    fn prop_sc_refines_ra(prog in arb_prog()) {
        let ra: std::collections::HashSet<_> = Explorer::new(RaModel)
            .explore(&prog, ExploreConfig::default())
            .final_register_states()
            .into_iter()
            .collect();
        let sc = Explorer::new(ScModel)
            .explore(&prog, ExploreConfig::default())
            .final_register_states();
        for snap in sc {
            prop_assert!(ra.contains(&snap), "SC outcome missing under RA");
        }
    }
}
