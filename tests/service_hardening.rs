//! Service hardening under hostile load: deadlines and cooperative
//! cancellation interrupt every engine × reduction (sequential, parallel
//! at 1/4 workers, sleep-set and source-set DPOR) with sane partial
//! stats; the session's result cache honours `cache_capacity` as a hard
//! LRU ceiling without breaking warm-hit byte-identity or pending-slot
//! coalescing.

use c11_operational::explore::{explore_dpor, explore_source, parallel_explore, Budget, Interrupt};
use c11_operational::litmus::corpus;
use c11_operational::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// `E16-contended-4`: the mo-insertion-heavy two-thread shape of the
/// exploration ablation (4 writes per thread to one variable).
const E16_CONTENDED_4: &str = "vars x; \
     thread t1 { x := 1; x := 2; x := 3; x := 4; } \
     thread t2 { x := 100; x := 101; x := 102; x := 103; }";

/// A much heavier contended shape: big enough that no engine finishes
/// before a millisecond-scale cancel lands.
const E16_CONTENDED_6: &str = "vars x; \
     thread t1 { x := 1; x := 2; x := 3; x := 4; x := 5; x := 6; } \
     thread t2 { x := 100; x := 101; x := 102; x := 103; x := 104; x := 105; }";

fn backends() -> Vec<(Engine, Reduction, &'static str)> {
    vec![
        (Engine::Sequential, Reduction::None, "sequential"),
        (
            Engine::Parallel { workers: 1 },
            Reduction::None,
            "parallel-1",
        ),
        (
            Engine::Parallel { workers: 4 },
            Reduction::None,
            "parallel-4",
        ),
        (Engine::Sequential, Reduction::SleepSet, "sleep-set"),
        (Engine::Sequential, Reduction::SourceSet, "source-set"),
    ]
}

/// The PR's acceptance bar: a 5 ms deadline on `E16-contended-4` (which
/// takes tens of milliseconds cold) returns a well-formed `"timed_out"`
/// report — not a hang, not an error — under every engine × reduction,
/// with sane partial stats.
#[test]
fn five_ms_deadline_on_contended_shape_times_out_under_every_backend() {
    for (engine, reduction, name) in backends() {
        let report = CheckRequest::program(E16_CONTENDED_4)
            .mode(Mode::CountOnly)
            .engine(engine)
            .reduction(reduction)
            .timeout(Duration::from_millis(5))
            .run()
            .unwrap_or_else(|e| panic!("{name}: timeout must not be an error: {e}"));
        assert_eq!(report.status_str(), "timed_out", "{name}");
        let stats = report.stats();
        assert!(!stats.truncated, "{name}: interrupts are not truncation");
        assert!(stats.unique >= 1, "{name}: partial stats stay sane");
        assert!(
            stats.generated >= stats.unique.saturating_sub(1),
            "{name}: generated/unique stay consistent"
        );
    }
}

/// Cancellation landing *mid-exploration* drains every engine promptly
/// with `Interrupt::Cancelled` and a sane partial result — on a shape
/// that would otherwise run for seconds.
#[test]
fn mid_flight_cancel_drains_every_engine() {
    let prog = parse_program(E16_CONTENDED_6).expect("shape parses");
    for workers in [1usize, 4] {
        for engine in ["sequential", "parallel", "dpor", "source"] {
            let token = Budget::unlimited();
            let cfg = ExploreConfig::default()
                .max_events(12)
                .record_traces(false)
                .budget(token.clone());
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(3));
                    token.cancel();
                })
            };
            let result = match engine {
                "sequential" => Explorer::new(RaModel).explore(&prog, cfg),
                "parallel" => parallel_explore(&RaModel, &prog, &cfg, workers),
                "dpor" => explore_dpor(&RaModel, &prog, &cfg),
                _ => explore_source(&RaModel, &prog, &cfg),
            };
            canceller.join().unwrap();
            assert_eq!(
                result.interrupted,
                Some(Interrupt::Cancelled),
                "{engine} (w{workers}) must stop on cancel"
            );
            // `truncated` stays the bound verdict: the BFS engines are
            // still shallow when the 3 ms cancel lands, but the source
            // DFS legitimately touches the event bound within
            // microseconds on this shape.
            if engine != "source" {
                assert!(!result.truncated, "{engine}: cancel is not truncation");
            }
            assert!(result.unique >= 1, "{engine}: partial result stays sane");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Corpus-wide: an already-expired deadline yields a `"timed_out"`
    /// report (never a hang, an error, or a silently-complete answer)
    /// for every litmus test under every backend at 1 and 4 workers,
    /// and the interrupt is never conflated with bound truncation.
    #[test]
    fn prop_expired_deadlines_interrupt_across_the_corpus(
        idx in 0usize..12,
        workers in prop::sample::select(vec![1usize, 4]),
    ) {
        let test = corpus().remove(idx);
        for (engine, reduction) in [
            (Engine::Sequential, Reduction::None),
            (Engine::Parallel { workers }, Reduction::None),
            (Engine::Sequential, Reduction::SleepSet),
            (Engine::Sequential, Reduction::SourceSet),
        ] {
            let report = CheckRequest::litmus(test.clone())
                .engine(engine)
                .reduction(reduction)
                .timeout(Duration::ZERO)
                .run()
                .expect("timeout is a report, not an error");
            prop_assert_eq!(report.status_str(), "timed_out", "{:?}+{:?}", engine, reduction);
            prop_assert!(!report.stats().truncated);
        }
    }
}

/// The LRU stress pin: a session with `cache_capacity: N` under a
/// 4×N-distinct-key workload never holds more than N ready reports,
/// counts its evictions exactly, and still answers warm hits.
#[test]
fn cache_capacity_survives_a_4x_distinct_key_stress() {
    const N: usize = 8;
    let session = Session::new(SessionConfig::default().workers(4).cache_capacity(N));
    let program = |i: usize| format!("vars x y; thread t {{ x := {i}; y := {i}; }}");
    let ids: Vec<JobId> = (0..4 * N)
        .map(|i| session.submit(CheckRequest::program(program(i))).unwrap())
        .collect();
    for id in ids {
        session.wait(id).unwrap();
        assert!(
            session.cache_len() <= N,
            "capacity must hold at every point, got {}",
            session.cache_len()
        );
    }
    assert_eq!(session.stats().explorations, 4 * N);
    assert_eq!(session.stats().evictions, 3 * N, "4N publishes - N kept");
    // The cache still serves: at least the most recent key is warm.
    assert!(session
        .run(CheckRequest::program(program(4 * N - 1)))
        .unwrap()
        .cache_hit());
}

/// Bounding the cache must not corrupt what it serves: a warm hit is
/// byte-identical to its cold report modulo the `cache_hit` marker, and
/// pending-slot coalescing still collapses identical concurrent
/// submissions to one exploration even at capacity 1.
#[test]
fn bounded_cache_keeps_hits_byte_identical_and_coalescing_intact() {
    let session = Session::new(SessionConfig::default().workers(4).cache_capacity(1));
    // Coalescing: 8 identical concurrent jobs, exactly one exploration.
    let ids: Vec<JobId> = (0..8)
        .map(|_| {
            session
                .submit(CheckRequest::program("vars a; thread t { a := 7; }").traces(true))
                .unwrap()
        })
        .collect();
    for id in ids {
        session.wait(id).unwrap();
    }
    assert_eq!(session.stats().explorations, 1);
    // Byte-identity: fresh key evicts the old one, then hits warm.
    let req = || {
        CheckRequest::program(
            "vars x y; thread t1 { x := 1; r0 <- y; } thread t2 { y := 1; r0 <- x; }",
        )
        .traces(true)
    };
    let cold = session.run(req()).unwrap();
    let warm = session.run(req()).unwrap();
    assert!(!cold.cache_hit() && warm.cache_hit());
    let normalize = |r: &CheckReport| {
        r.json_value()
            .render()
            .replace("\"cache_hit\":true", "\"cache_hit\":false")
    };
    assert_eq!(normalize(&cold), normalize(&warm));
    assert_eq!(session.cache_len(), 1);
}
