//! E14 — the litmus corpus: every expected verdict matches under both the
//! RA semantics and the SC baseline.

use c11_operational::litmus::{corpus, run_corpus, run_test, Verdict};

#[test]
fn e14_all_verdicts_match() {
    let results = run_corpus();
    let failures: Vec<_> = results.iter().filter(|r| !r.pass).collect();
    assert!(failures.is_empty(), "verdict mismatches: {failures:#?}");
    assert!(results.len() >= 15);
}

#[test]
fn e14_ra_weaker_than_sc() {
    // On every test, behaviours observed under SC are also observed under
    // RA (SC executions are RA executions: reads of the globally-latest
    // write are always observable).
    for r in run_corpus() {
        if r.observed_sc {
            assert!(r.observed_ra, "{}: SC-observed but RA-absent", r.name);
        }
    }
}

#[test]
fn e14_forbidden_verdicts_are_exhaustive() {
    // "Forbidden" verdicts must come from *complete* exploration.
    for test in corpus() {
        let r = run_test(&test);
        if test.expect_ra == Verdict::Forbidden {
            assert!(!r.ra.truncated, "{}: truncated forbidden verdict", r.name);
        }
    }
}

#[test]
fn e14_weak_behaviours_exist() {
    // Sanity: the corpus distinguishes the models — some outcome is
    // RA-allowed and SC-forbidden.
    let results = run_corpus();
    assert!(
        results.iter().any(|r| r.observed_ra && !r.observed_sc),
        "corpus must exhibit weak behaviours"
    );
}
