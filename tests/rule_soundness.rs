//! E9/E10 — soundness of the Figure 4 proof rules and Lemmas 5.3/5.4/5.6,
//! quantified over every reachable transition of a program corpus.

use c11_operational::core::config::{Config, ConfigStep};
use c11_operational::prelude::*;
use c11_operational::verify::assertions::{
    agreement_holds, determinate_value, dv_implies_singleton_ow, update_only,
};
use c11_operational::verify::rules::{check_init_rule, check_rules_on_transition};

/// Sweeps every reachable RA transition of `src`, checking the rules and
/// lemmas on each. Returns the number of transitions checked.
fn sweep(src: &str, max_events: usize) -> usize {
    let prog = parse_program(src).unwrap();
    let vars: Vec<VarId> = (0..prog.num_vars() as u8).map(VarId).collect();
    let threads: Vec<ThreadId> = (1..=prog.num_threads() as u8).map(ThreadId).collect();
    let explorer = Explorer::new(RaModel);
    let mut transitions = 0usize;

    // Init rule on the initial state.
    let init_cfg = Config::initial(&RaModel, &prog);
    assert!(check_init_rule(&init_cfg.mem, &vars, &threads).is_empty());

    explorer.for_each_reachable(
        &prog,
        ExploreConfig {
            max_events,
            record_traces: false,
            ..Default::default()
        },
        |cfg| {
            // Lemma 5.4 and the singleton-OW consequence on the state.
            for &x in &vars {
                assert!(agreement_holds(&cfg.mem, x, &threads), "Lemma 5.4");
                for &t in &threads {
                    assert!(dv_implies_singleton_ow(&cfg.mem, t, x), "Def 5.1 (3)");
                }
            }
            for ConfigStep {
                label,
                observed,
                event,
                next,
                ..
            } in cfg.successors(&RaModel)
            {
                let (Some(m), Some(e)) = (observed, event) else {
                    continue; // τ steps have no memory transition
                };
                transitions += 1;
                // Figure 4 rules.
                let violations =
                    check_rules_on_transition(&cfg.mem, m, e, &next.mem, &vars, &threads);
                assert!(violations.is_empty(), "{violations:?}");
                // Lemma 5.3: determinate-value read.
                if let StepLabel::Act(a) = label {
                    if let Some(rv) = a.rdval() {
                        let t = next.mem.event(e).tid;
                        if let Some(v) = determinate_value(&cfg.mem, t, a.var()) {
                            assert_eq!(rv, v, "Lemma 5.3");
                        }
                        // Lemma 5.6 (1): with a determinate value, the
                        // observed write is σ.last(x).
                        if determinate_value(&cfg.mem, t, a.var()).is_some() {
                            assert_eq!(Some(m), cfg.mem.last(a.var()), "Lemma 5.6(1)");
                        }
                    }
                    // Lemma 5.6 (2): writes/updates to update-only
                    // variables observe σ.last(x).
                    let ev = next.mem.event(e);
                    if ev.is_write() && update_only(&cfg.mem, a.var()) {
                        assert_eq!(Some(m), cfg.mem.last(a.var()), "Lemma 5.6(2)");
                    }
                }
            }
        },
    );
    transitions
}

use c11_operational::lang::StepLabel;

#[test]
fn e9_rules_sound_on_message_passing() {
    let n = sweep(
        "vars d f;
         thread t1 { d := 5; f :=R 1; }
         thread t2 { r0 <-A f; r1 <- d; }",
        24,
    );
    assert!(n > 20);
}

#[test]
fn e9_rules_sound_on_store_buffering() {
    let n = sweep(
        "vars x y;
         thread t1 { x :=R 1; r0 <-A y; }
         thread t2 { y :=R 1; r0 <-A x; }",
        24,
    );
    assert!(n > 20);
}

#[test]
fn e9_rules_sound_on_update_mix() {
    let n = sweep(
        "vars x y;
         thread t1 { x.swap(1); y :=R 1; r0 <- y; }
         thread t2 { r0 <-A y; x.swap(2); }",
        20,
    );
    assert!(n > 30);
}

#[test]
fn e9_rules_sound_on_peterson_prefix() {
    // The real thing, bounded smaller than E11 since rule checking per
    // transition is quadratic in variables.
    let n = sweep(
        "vars flag1 flag2 turn=1;
         thread t1 { flag1 := true; turn.swap(2);
                     r0 <-A flag2; r1 <- turn; flag1 :=R false; }
         thread t2 { flag2 := true; turn.swap(1);
                     r0 <-A flag1; r1 <- turn; flag2 :=R false; }",
        18,
    );
    assert!(n > 100);
}

#[test]
fn e9_rules_sound_on_three_threads() {
    let n = sweep(
        "vars x y;
         thread t1 { x := 1; y :=R 1; }
         thread t2 { r0 <-A y; r1 <- x; }
         thread t3 { y := 2; }",
        18,
    );
    assert!(n > 100);
}
