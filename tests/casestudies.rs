//! E17 — case studies beyond the paper: the test-and-set spinlock (with
//! the §5-style data-protection invariant) and the naive flag mutex
//! (Dekker's first approximation) as a negative control.

use c11_operational::verify::casestudies::{
    check_spinlock, naive_flag_mutex, naive_mutex_holds_ra, naive_mutex_holds_sc,
};

#[test]
fn e17_spinlock_release_unlock_correct() {
    let report = check_spinlock(16, true);
    assert!(report.mutual_exclusion, "TAS lock mutual exclusion");
    assert!(
        report.data_protected,
        "lock holder must have a determinate view of the protected data"
    );
    assert!(report.stats.truncated, "lock loops forever");
    assert!(report.stats.unique > 1_000);
}

#[test]
fn e17_spinlock_relaxed_unlock_breaks_data_invariant() {
    let report = check_spinlock(16, false);
    assert!(report.mutual_exclusion, "the exchange itself stays atomic");
    assert!(
        !report.data_protected,
        "without the release unlock the CS sees stale data"
    );
}

/// Non-vacuity for the spinlock: both threads enter the critical section
/// in some execution, and the counter actually advances past 1.
#[test]
fn e17_spinlock_non_vacuous() {
    use c11_operational::prelude::*;
    use c11_operational::verify::casestudies::spinlock_program;
    let prog = spinlock_program(true);
    let d = prog.var("d").unwrap();
    let explorer = Explorer::new(RaModel);
    let mut t1_cs = false;
    let mut t2_cs = false;
    let mut counter_reached_2 = false;
    explorer.for_each_reachable(
        &prog,
        ExploreConfig {
            max_events: 18,
            record_traces: false,
            ..Default::default()
        },
        |cfg| {
            t1_cs |= cfg.pc(ThreadId(1)) == Some(5);
            t2_cs |= cfg.pc(ThreadId(2)) == Some(5);
            if let Some(w) = cfg.mem.last(d) {
                counter_reached_2 |= cfg.mem.event(w).wrval() == Some(2);
            }
        },
    );
    assert!(t1_cs && t2_cs, "both threads enter the critical section");
    assert!(
        counter_reached_2,
        "two increments complete within the budget"
    );
}

#[test]
fn e17_naive_mutex_sc_vs_ra() {
    // The store-buffering shape: SC-correct, RA-broken — even annotated.
    let plain = naive_flag_mutex(false);
    assert!(naive_mutex_holds_sc(&plain), "correct under SC");
    let (ra, _) = naive_mutex_holds_ra(&plain, 14);
    assert!(!ra, "broken under RA");
    let annotated = naive_flag_mutex(true);
    let (ra, _) = naive_mutex_holds_ra(&annotated, 14);
    assert!(!ra, "release/acquire cannot rescue the SB shape");
}
