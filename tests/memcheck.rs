//! E8 — the Appendix C / Memalloy experiment: eco-based Coherence agrees
//! with weak canonical RAR consistency on every candidate execution.
//! Exhaustive at small sizes; seeded random sampling at size 6–7 (the
//! paper's Alloy bound).

use c11_operational::axiomatic::memcheck::{
    equivalence_check, equivalence_sample, CandidateConfig,
};

#[test]
fn e8_exhaustive_size_3_two_threads_two_vars() {
    let report = equivalence_check(&CandidateConfig {
        events: 3,
        max_threads: 2,
        max_vars: 2,
    });
    assert!(
        report.agrees(),
        "Theorem C.5 refuted: {:?}",
        report.disagreements
    );
    assert!(report.candidates > 1_000);
    assert!(report.both_consistent > 0 && report.both_inconsistent > 0);
}

#[test]
fn e8_exhaustive_size_4_two_threads() {
    let report = equivalence_check(&CandidateConfig {
        events: 4,
        max_threads: 2,
        max_vars: 2,
    });
    assert!(report.agrees(), "{:?}", report.disagreements);
    assert!(report.candidates > 20_000);
}

#[test]
fn e8_exhaustive_size_3_three_threads() {
    let report = equivalence_check(&CandidateConfig {
        events: 3,
        max_threads: 3,
        max_vars: 2,
    });
    assert!(report.agrees(), "{:?}", report.disagreements);
}

#[test]
fn e8_sampled_size_6() {
    let report = equivalence_sample(0xC11_2019, 6, 3, 2, 500);
    assert!(report.agrees(), "{:?}", report.disagreements);
    assert!(report.candidates >= 400);
}

#[test]
fn e8_sampled_size_7() {
    // The paper's Memalloy run covered models up to size 7.
    let report = equivalence_sample(0x7EAF, 7, 3, 3, 500);
    assert!(report.agrees(), "{:?}", report.disagreements);
    assert!(report.candidates >= 400);
}
