//! The state-storage subsystem end to end: the symmetry quotient's
//! canonical fingerprint is invariant under class permutations (the
//! soundness property of `--store sym`, checked on random programs),
//! every `--store` backend agrees with the flat reference on verdicts
//! and final snapshots across all three engines, and the shared store
//! is a byte-for-byte drop-in under truncating bounds.

use c11_operational::core::config::Config;
use c11_operational::core::fingerprint::{combine128, hash128_of};
use c11_operational::explore::sym::sym_fingerprint;
use c11_operational::litmus::{corpus, load_litmus_dir, run_test_configured, LitmusTest};
use c11_operational::prelude::*;
use proptest::prelude::*;
use std::path::Path;

/// The plain configuration fingerprint (mirrors the engine's dedup key).
fn plain_fp(model: &RaModel, c: &Config<RaModel>) -> u128 {
    combine128(&[
        hash128_of(&c.coms),
        hash128_of(&c.regs),
        model.state_fingerprint(&c.mem),
    ])
}

/// The plain fingerprint of `c` with its threads relabelled by `map`
/// (`map[old_tid] = new_tid`, 1-based, `map[0] = 0`) — i.e. of the orbit
/// twin `map(c)`, computed without stepping to it.
fn relabelled_fp(model: &RaModel, c: &Config<RaModel>, map: &[u8]) -> u128 {
    let mut coms = c.coms.clone();
    let mut regs = c.regs.clone();
    for old in 0..c.coms.len() {
        let new = (map[old + 1] - 1) as usize;
        coms[new] = c.coms[old].clone();
        regs[new] = c.regs[old].clone();
    }
    combine128(&[
        hash128_of(&coms),
        hash128_of(&regs),
        model.state_fingerprint_relabelled(&c.mem, map),
    ])
}

fn arb_stmt() -> impl Strategy<Value = Com> {
    let var = prop::sample::select(vec![VarId(0), VarId(1)]);
    let val = 1..4u32;
    prop_oneof![
        (var.clone(), val.clone(), any::<bool>()).prop_map(|(var, v, release)| Com::Assign {
            var,
            rhs: Exp::Val(v),
            release,
        }),
        (var.clone(), 0..2u8, any::<bool>()).prop_map(|(var, r, acq)| Com::AssignReg {
            reg: RegId(r),
            rhs: if acq { Exp::VarA(var) } else { Exp::Var(var) },
        }),
        (var, val, prop::option::of(0..2u8)).prop_map(|(var, v, out)| Com::Swap {
            var,
            new: Exp::Val(v),
            out: out.map(RegId),
        }),
    ]
}

/// A program whose first two threads are byte-identical (one guaranteed
/// symmetry class) plus an arbitrary third thread.
fn arb_sym_prog() -> impl Strategy<Value = Prog> {
    let thread = || prop::collection::vec(arb_stmt(), 1..3).prop_map(Com::block);
    (thread(), thread()).prop_map(|(a, b)| {
        Prog::new(
            vec![("x".into(), 0), ("y".into(), 0)],
            vec![a.clone(), a, b],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of the symmetry quotient on random programs: walking the
    /// state space in lock-step with its thread-permuted twin, (1) every
    /// step of one side has a step of the other landing exactly on the
    /// relabelled configuration (the semantics is equivariant), and
    /// (2) the twins' canonical fingerprints are byte-identical — they
    /// dedup to one stored representative.
    #[test]
    fn prop_thread_permutation_keeps_canonical_fingerprint(prog in arb_sym_prog()) {
        let classes = SymClasses::of(&prog);
        prop_assert!(!classes.is_trivial(), "threads 1 and 2 share a body");
        // The class permutation swapping the two identical threads.
        let mut map: Vec<u8> = (0..=prog.threads.len() as u8).collect();
        map.swap(1, 2);
        let initial = Config::initial(&RaModel, &prog);
        // Pairs (c, m) with m = map(c), advanced breadth-first.
        let mut frontier = vec![(initial.clone(), initial)];
        for _depth in 0..3 {
            let mut next = Vec::new();
            for (c, m) in &frontier {
                let twins = m.successors(&RaModel);
                for s in c.successors(&RaModel) {
                    let want_tid = ThreadId(map[s.tid.0 as usize]);
                    let want_fp = relabelled_fp(&RaModel, &s.next, &map);
                    let twin = twins
                        .iter()
                        .find(|t| t.tid == want_tid && plain_fp(&RaModel, &t.next) == want_fp);
                    prop_assert!(
                        twin.is_some(),
                        "no step of the permuted twin lands on the relabelled successor"
                    );
                    let twin = twin.unwrap();
                    prop_assert_eq!(
                        sym_fingerprint(&RaModel, &classes, &s.next),
                        sym_fingerprint(&RaModel, &classes, &twin.next),
                        "orbit twins must share one canonical fingerprint"
                    );
                    next.push((s.next.clone(), twin.next.clone()));
                }
            }
            // Bound the frontier: the property is per-pair, so sampling a
            // prefix loses breadth, not soundness of the check.
            next.truncate(48);
            frontier = next;
        }
    }
}

/// Every litmus test (built-in corpus + the `litmus/` files, which
/// include the symmetric shapes) under every store × every engine.
fn full_corpus() -> Vec<LitmusTest> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut tests = corpus();
    tests.extend(load_litmus_dir(&dir).expect("litmus dir loads"));
    tests
}

fn backends() -> Vec<(&'static str, Box<dyn ExploreBackend<RaModel>>)> {
    vec![
        ("seq", Box::new(SequentialBackend)),
        ("par4", Box::new(ParallelBackend::new(4))),
        ("dpor", Box::new(DporBackend)),
    ]
}

/// Canonical deduplicated final register states: the invariant all
/// stores must agree on. (Under the symmetry quotient the finals list
/// keeps one representative per orbit, so both sides are class-sorted
/// and deduplicated before comparing.)
fn canon_finals(
    res: &c11_operational::explore::ExploreResult<RaModel>,
    classes: &SymClasses,
) -> Vec<RegSnapshot> {
    let mut snaps = res.final_snapshots();
    for s in &mut snaps {
        s.class_sort(classes);
    }
    snaps.sort();
    snaps.dedup();
    snaps
}

#[test]
fn corpus_verdicts_agree_across_stores_and_backends() {
    for test in full_corpus() {
        for kind in StoreKind::ALL {
            let cfg_ra = ExploreConfig::default()
                .max_events(test.max_events)
                .record_traces(false)
                .store(kind);
            let cfg_sc = ExploreConfig::default().record_traces(false).store(kind);
            for (bname, backend) in backends() {
                // The SC side reuses the same backend flavour.
                let sc: Box<dyn ExploreBackend<ScModel>> = match bname {
                    "seq" => Box::new(SequentialBackend),
                    "par4" => Box::new(ParallelBackend::new(4)),
                    _ => Box::new(DporBackend),
                };
                let r = run_test_configured(&test, backend.as_ref(), sc.as_ref(), &cfg_ra, &cfg_sc);
                assert!(
                    r.pass,
                    "{} under store={} backend={bname}: observed_ra={} observed_sc={}",
                    test.name,
                    kind.name(),
                    r.observed_ra,
                    r.observed_sc
                );
            }
        }
    }
}

#[test]
fn corpus_final_snapshots_agree_across_stores_and_backends() {
    for test in full_corpus() {
        let prog = parse_program(&test.source).expect("corpus programs parse");
        let classes = SymClasses::of(&prog);
        let base = ExploreConfig::default()
            .max_events(test.max_events)
            .record_traces(false);
        let reference = SequentialBackend.run(&RaModel, &prog, &base);
        let mut flat_multiset: Vec<RegSnapshot> = reference.final_snapshots();
        flat_multiset.sort();
        let canonical = canon_finals(&reference, &classes);
        for kind in StoreKind::ALL {
            let cfg = base.clone().store(kind);
            for (bname, backend) in backends() {
                let res = backend.run(&RaModel, &prog, &cfg);
                assert_eq!(
                    canon_finals(&res, &classes),
                    canonical,
                    "{} store={} backend={bname}: canonical finals diverged",
                    test.name,
                    kind.name()
                );
                if kind != StoreKind::Sym {
                    // Without the quotient the stores are byte-for-byte
                    // drop-ins: the full finals multiset must match.
                    let mut snaps = res.final_snapshots();
                    snaps.sort();
                    assert_eq!(
                        snaps,
                        flat_multiset,
                        "{} store={} backend={bname}: finals multiset diverged",
                        test.name,
                        kind.name()
                    );
                    assert_eq!(res.unique, reference.unique, "{}: unique", test.name);
                }
            }
        }
    }
}

/// Truncating bounds: the shared store must behave byte-identically to
/// the flat one when a bound cuts the search short — same unique count,
/// same truncation verdict, same finals. Only the deterministic engines
/// are compared (under a `max_states` cap the parallel engine's visited
/// prefix is racy by design, for flat and shared alike).
#[test]
fn shared_store_is_a_drop_in_under_truncating_bounds() {
    let src = "vars x;
         thread t1 { x := 1; x := 2; x := 3; x := 4; }
         thread t2 { x := 5; x := 6; x := 7; x := 8; }";
    let prog = parse_program(src).unwrap();
    for max_states in [10usize, 50, 200] {
        let base = ExploreConfig::default()
            .max_states(max_states)
            .record_traces(false);
        let run = |kind: StoreKind, dpor: bool| {
            let cfg = base.clone().store(kind);
            if dpor {
                DporBackend.run(&RaModel, &prog, &cfg)
            } else {
                SequentialBackend.run(&RaModel, &prog, &cfg)
            }
        };
        for dpor in [false, true] {
            let flat = run(StoreKind::Flat, dpor);
            let shared = run(StoreKind::Shared, dpor);
            assert!(flat.truncated, "the cap must actually bite");
            assert_eq!(flat.unique, shared.unique);
            assert_eq!(flat.generated, shared.generated);
            assert_eq!(flat.truncated, shared.truncated);
            let snaps = |r: &c11_operational::explore::ExploreResult<RaModel>| {
                let mut v = r.final_snapshots();
                v.sort();
                v
            };
            assert_eq!(snaps(&flat), snaps(&shared));
        }
    }
}

/// The symmetric litmus shapes actually exercise the quotient: `sym`
/// stores strictly fewer unique states than `flat`, and the stats
/// surface the reduction.
#[test]
fn symmetric_shapes_shrink_under_the_quotient() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let tests = load_litmus_dir(&dir).unwrap();
    let mut checked = 0;
    for name in ["SB-ring-sym-3", "CC-sym-4", "MP-fan-sym"] {
        let test = tests
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("{name} missing from litmus/"));
        let prog = parse_program(&test.source).unwrap();
        let base = ExploreConfig::default()
            .max_events(test.max_events)
            .record_traces(false);
        let flat = SequentialBackend.run(&RaModel, &prog, &base);
        let sym = SequentialBackend.run(&RaModel, &prog, &base.clone().store(StoreKind::Sym));
        assert!(
            sym.unique < flat.unique,
            "{name}: quotient must shrink ({} vs {})",
            sym.unique,
            flat.unique
        );
        let stats = sym.store_stats.expect("dedup is on");
        assert!(stats.sym, "{name}: stats must record the quotient");
        checked += 1;
    }
    assert_eq!(checked, 3);
}
