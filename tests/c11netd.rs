//! `c11netd` end to end over real sockets: length-prefixed frames in
//! and out, per-connection error isolation, the connection cap, the
//! `{"stats": true}` control frame, and the headline restart contract —
//! populate the cache over TCP, SIGTERM-drain (snapshot written, batch
//! summary on stdout, exit 0), restart on the same `--cache-path`, and
//! the same request answers `"cache_hit": true` byte-identically
//! (modulo the id echo and the cache flag itself).
//!
//! The tests speak the wire format by hand (4-byte big-endian length +
//! one JSON document) rather than through `c11_api::net`, so they stay
//! an independent check of the protocol the README documents.

use c11_operational::api::json::Json;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SB: &str = "vars x y; thread t1 { x := 1; r0 <- y; } thread t2 { y := 1; r0 <- x; }";

struct Server {
    child: Option<Child>,
    port: u16,
}

impl Server {
    /// Starts `c11netd` on an OS-assigned port and waits for the
    /// `--port-file` handshake.
    fn start(name: &str, extra: &[&str]) -> Server {
        let dir = std::env::temp_dir().join(format!("c11netd-test-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c11netd"))
            .args(["--listen", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(extra)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c11netd");
        let deadline = Instant::now() + Duration::from_secs(30);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "c11netd never published a port");
            std::thread::sleep(Duration::from_millis(25));
        };
        Server {
            child: Some(child),
            port,
        }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    /// SIGTERM + wait: returns (exit-ok, stdout).
    fn terminate(mut self) -> (bool, String) {
        let child = self.child.take().unwrap();
        Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        let out = child.wait_with_output().expect("wait c11netd");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn send_frame(stream: &mut TcpStream, payload: &str) {
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
}

fn recv_frame(stream: &mut TcpStream) -> Json {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).expect("response header");
    let len = u32::from_be_bytes(header) as usize;
    assert!(len <= 1 << 20, "response within the frame cap");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("response payload");
    let text = std::str::from_utf8(&payload).expect("UTF-8 response");
    Json::parse(text).unwrap_or_else(|e| panic!("bad response JSON ({e}): {text}"))
}

fn s<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

#[test]
fn frames_round_trip_with_cache_hits_and_stats() {
    let server = Server::start("roundtrip", &["--workers", "2"]);
    let mut conn = server.connect();
    send_frame(
        &mut conn,
        &format!("{{\"id\":\"cold\",\"program\":\"{SB}\",\"traces\":true}}"),
    );
    let cold = recv_frame(&mut conn);
    assert_eq!(s(&cold, "id"), Some("cold"));
    assert_eq!(s(&cold, "status"), Some("ok"));
    assert_eq!(s(&cold, "schema"), Some("c11check/v1"));
    assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));

    send_frame(
        &mut conn,
        &format!("{{\"id\":\"warm\",\"program\":\"{SB}\",\"traces\":true}}"),
    );
    let warm = recv_frame(&mut conn);
    assert_eq!(s(&warm, "id"), Some("warm"));
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("outcomes"), cold.get("outcomes"));

    // The stats control frame reports session counters as JSON.
    send_frame(&mut conn, "{\"id\":\"st\",\"stats\":true}");
    let stats = recv_frame(&mut conn);
    assert_eq!(s(&stats, "id"), Some("st"));
    assert_eq!(s(&stats, "mode"), Some("session-stats"));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_usize), Some(1));
    assert_eq!(stats.get("explorations").and_then(Json::as_usize), Some(1));
    assert_eq!(
        stats.get("persist_loaded").and_then(Json::as_usize),
        Some(0)
    );
}

#[test]
fn sigterm_drains_snapshots_and_a_restart_serves_warm_byte_identically() {
    let dir = std::env::temp_dir().join(format!("c11netd-test-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&cache);
    let with_cache = |name: &str| {
        Server::start(
            name,
            &["--workers", "2", "--cache-path", cache.to_str().unwrap()],
        )
    };

    let server = with_cache("restart-cold");
    let mut conn = server.connect();
    let request = format!("{{\"id\":\"r1\",\"program\":\"{SB}\",\"traces\":true}}");
    send_frame(&mut conn, &request);
    let cold = recv_frame(&mut conn);
    assert_eq!(s(&cold, "status"), Some("ok"));
    assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));
    send_frame(
        &mut conn,
        "{\"id\":\"l1\",\"litmus_path\":\"litmus/mp_ra.litmus\"}",
    );
    assert_eq!(s(&recv_frame(&mut conn), "status"), Some("ok"));
    drop(conn);

    let (ok, stdout) = server.terminate();
    assert!(ok, "a clean drain exits 0");
    let summary = Json::parse(stdout.trim()).expect("batch summary on stdout");
    assert_eq!(s(&summary, "mode"), Some("batch-summary"));
    assert_eq!(summary.get("jobs").and_then(Json::as_usize), Some(2));
    assert_eq!(summary.get("ok").and_then(Json::as_usize), Some(2));
    let text = std::fs::read_to_string(&cache).expect("snapshot written on drain");
    assert_eq!(text.lines().count(), 2, "both results persisted");

    // Restart on the same cache path: the same request is a warm hit and
    // the payload is byte-identical modulo the id echo and cache flag.
    let server = with_cache("restart-warm");
    let mut conn = server.connect();
    let warm_request = request.replace("\"id\":\"r1\"", "\"id\":\"r2\"");
    send_frame(&mut conn, &warm_request);
    let warm = recv_frame(&mut conn);
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    let normalize = |v: &Json, id: &str| {
        v.render()
            .replace(&format!("\"id\":\"{id}\""), "\"id\":\"X\"")
            .replace("\"cache_hit\":true", "\"cache_hit\":false")
    };
    assert_eq!(
        normalize(&warm, "r2"),
        normalize(&cold, "r1"),
        "the disk round-trip must not change a byte of the answer"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn the_connection_cap_answers_overloaded_and_closes() {
    let server = Server::start("cap", &["--max-conns", "1", "--workers", "1"]);
    let mut first = server.connect();
    // Occupy the only slot and prove it works.
    send_frame(&mut first, "{\"id\":\"a\",\"stats\":true}");
    assert_eq!(s(&recv_frame(&mut first), "mode"), Some("session-stats"));

    let mut second = server.connect();
    let bounced = recv_frame(&mut second);
    assert_eq!(s(&bounced, "status"), Some("overloaded"));
    let mut rest = Vec::new();
    second
        .read_to_end(&mut rest)
        .expect("server closes after bouncing");
    assert!(rest.is_empty(), "one frame, then EOF");

    // The occupied connection is unaffected.
    send_frame(&mut first, "{\"id\":\"b\",\"stats\":true}");
    assert_eq!(s(&recv_frame(&mut first), "id"), Some("b"));
}

#[test]
fn malformed_payloads_get_error_frames_and_framing_errors_close_the_connection() {
    let server = Server::start("malformed", &["--workers", "1"]);
    let mut conn = server.connect();
    // A well-framed but non-JSON payload: an error frame, and the
    // connection survives.
    send_frame(&mut conn, "this is not json");
    let err = recv_frame(&mut conn);
    assert_eq!(s(&err, "status"), Some("error"));
    assert!(s(&err, "id").unwrap().starts_with("conn-"));
    send_frame(&mut conn, "{\"id\":\"still-alive\",\"stats\":true}");
    assert_eq!(s(&recv_frame(&mut conn), "id"), Some("still-alive"));

    // A validation error (unknown key) is also per-frame.
    send_frame(
        &mut conn,
        "{\"id\":\"bad\",\"program\":\"vars x; thread t { x := 1; }\",\"frobnicate\":1}",
    );
    let bad = recv_frame(&mut conn);
    assert_eq!(s(&bad, "id"), Some("bad"));
    assert_eq!(s(&bad, "status"), Some("error"));
    assert!(s(&bad, "error").unwrap().contains("unknown key"));

    // An oversized frame length is a protocol violation: one error
    // frame, then the connection closes (no resync is possible).
    let mut oversized = server.connect();
    oversized
        .write_all(&(((1u32 << 20) + 1).to_be_bytes()))
        .unwrap();
    oversized.flush().unwrap();
    let fatal = recv_frame(&mut oversized);
    assert_eq!(s(&fatal, "status"), Some("error"));
    assert!(s(&fatal, "error").unwrap().contains("cap"));
    let mut rest = Vec::new();
    oversized.read_to_end(&mut rest).expect("connection closed");
    assert!(rest.is_empty());
}
