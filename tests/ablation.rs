//! E15/E16 — ablations.
//!
//! E15: drop the `eco?` component from encountered-writes (hb-only
//! observability). The weakened semantics admits states that violate the
//! Coherence axiom — demonstrating that the extended coherence order is
//! load-bearing in the paper's observability definition.
//!
//! E16: the parallel explorer agrees with the sequential one.

use c11_operational::core::model::WeakObsRaModel;
use c11_operational::explore::parallel_explore;
use c11_operational::prelude::*;

/// With full observability, CoRR-style stale reads are impossible; with
/// hb-only observability the weakened model produces invalid states.
#[test]
fn e15_weak_observability_admits_invalid_states() {
    // t2 reads x twice while t1 writes twice: under hb-only observability
    // nothing stops the second read from going backwards in mo.
    let prog = parse_program(
        "vars x;
         thread t1 { x := 1; x := 2; }
         thread t2 { r0 <- x; r1 <- x; }",
    )
    .unwrap();
    let weak = Explorer::new(WeakObsRaModel);
    let mut invalid = 0usize;
    let mut total = 0usize;
    weak.for_each_reachable(&prog, ExploreConfig::default(), |cfg| {
        total += 1;
        if !is_valid(&cfg.mem) {
            invalid += 1;
        }
    });
    assert!(
        invalid > 0,
        "hb-only observability must admit invalid states"
    );
    assert!(total > invalid);

    // The full semantics on the same program: zero invalid states.
    let full = Explorer::new(RaModel);
    full.for_each_reachable(&prog, ExploreConfig::default(), |cfg| {
        assert!(is_valid(&cfg.mem));
    });
}

/// The weakened model concretely exhibits the CoRR-forbidden outcome.
#[test]
fn e15_weak_observability_breaks_corr() {
    let prog = parse_program(
        "vars x;
         thread t1 { x := 1; x := 2; }
         thread t2 { r0 <- x; r1 <- x; }",
    )
    .unwrap();
    let res = Explorer::new(WeakObsRaModel).explore(&prog, ExploreConfig::default());
    let backwards = res.final_register_states().into_iter().any(|s| {
        s.get(ThreadId(2), RegId(0)) == Some(2) && s.get(ThreadId(2), RegId(1)) == Some(1)
    });
    assert!(backwards, "weak model reads mo-backwards");

    let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
    let backwards = res.final_register_states().into_iter().any(|s| {
        s.get(ThreadId(2), RegId(0)) == Some(2) && s.get(ThreadId(2), RegId(1)) == Some(1)
    });
    assert!(!backwards, "full model forbids CoRR");
}

/// E16: parallel and sequential exploration agree on state counts across
/// the corpus.
#[test]
fn e16_parallel_matches_sequential() {
    for test in c11_operational::litmus::corpus().into_iter().take(6) {
        let prog = parse_program(&test.source).unwrap();
        let seq = Explorer::new(RaModel)
            .explore(&prog, ExploreConfig::default().max_events(test.max_events));
        let cfg = ExploreConfig::default()
            .max_events(test.max_events)
            .record_traces(false);
        let par = parallel_explore(&RaModel, &prog, &cfg, 4);
        assert_eq!(par.unique, seq.unique, "{}", test.name);
        assert_eq!(par.truncated, seq.truncated, "{}", test.name);
    }
}
