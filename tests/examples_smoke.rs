//! Smoke tests that exercise the shipped examples end-to-end, so the
//! `cargo run --example` paths in the README cannot rot. Each test drives
//! the example through cargo itself (serialised by cargo's own file lock)
//! and checks both the exit status and a load-bearing line of output.

use std::process::Command;

fn run_example(name: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn quickstart_example_runs() {
    let (ok, text) = run_example("quickstart");
    assert!(ok, "quickstart exited nonzero:\n{text}");
    // The quickstart's punchline: RA publication forbids the stale read.
    assert!(
        text.contains("stale read (flag=1, data=0): forbidden"),
        "quickstart output changed:\n{text}"
    );
}

#[test]
fn peterson_example_runs() {
    let (ok, text) = run_example("peterson");
    assert!(ok, "peterson exited nonzero:\n{text}");
    assert!(
        text.to_lowercase().contains("mutual exclusion"),
        "peterson output changed:\n{text}"
    );
}
