//! E6 — Theorem 4.4 (soundness): every state reachable through the RA
//! semantics satisfies all five axioms of Definition 4.2, swept over the
//! whole litmus corpus and the Peterson algorithm.

use c11_operational::litmus::corpus;
use c11_operational::prelude::*;
use c11_operational::verify::peterson::peterson_program;

fn assert_all_reachable_valid(prog: &Prog, max_events: usize) -> usize {
    let explorer = Explorer::new(RaModel);
    let mut checked = 0usize;
    let res = explorer.explore_invariant(
        prog,
        ExploreConfig {
            max_events,
            record_traces: false,
            ..Default::default()
        },
        |cfg| {
            let errs = check_validity(&cfg.mem);
            assert!(errs.is_empty(), "invalid reachable state: {errs:?}");
            checked += 1;
            true
        },
    );
    // Deadlock freedom: the RA semantics never wedges a thread (every
    // variable retains at least one observable write).
    assert_eq!(res.stuck, 0, "stuck configurations found");
    checked
}

/// Every reachable state of every corpus program is a valid C11 state.
#[test]
fn e6_soundness_over_litmus_corpus() {
    let mut total = 0;
    for test in corpus() {
        let prog = parse_program(&test.source).unwrap();
        total += assert_all_reachable_valid(&prog, test.max_events.min(16));
    }
    assert!(total > 500, "swept {total} states");
}

/// Every reachable state of Peterson (bounded) is valid. This is the
/// soundness theorem exercised on the paper's flagship example, with
/// updates, releases, acquires and relaxed accesses all in play.
#[test]
fn e6_soundness_over_peterson() {
    let checked = assert_all_reachable_valid(&peterson_program(), 14);
    assert!(checked > 1000, "swept {checked} states");
}

/// Soundness holds per-axiom too: probe a program rich in updates.
#[test]
fn e6_soundness_update_heavy() {
    let prog = parse_program(
        "vars x y;
         thread t1 { x.swap(1); y.swap(1); r0 <- x; }
         thread t2 { x.swap(2); y.swap(2); r0 <- y; }",
    )
    .unwrap();
    let checked = assert_all_reachable_valid(&prog, 20);
    assert!(checked > 100);
}
