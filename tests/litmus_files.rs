//! E14 (extension) — the file-based litmus tests under `litmus/` load and
//! pass their expected verdicts.

use c11_operational::litmus::{load_litmus_dir, run_test};
use std::path::Path;

#[test]
fn litmus_files_load_and_pass() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let tests = load_litmus_dir(&dir).expect("litmus dir loads");
    assert!(tests.len() >= 12, "expected the 12-file corpus");
    for expected in ["R", "S", "ISA2"] {
        assert!(
            tests.iter().any(|t| t.name == expected),
            "missing the {expected} shape"
        );
    }
    for test in &tests {
        let r = run_test(test);
        assert!(
            r.pass,
            "{}: observed_ra={} observed_sc={} truncated={}",
            test.name, r.observed_ra, r.observed_sc, r.ra.truncated
        );
    }
}

#[test]
fn litmus_file_names_are_unique() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let tests = load_litmus_dir(&dir).unwrap();
    let mut names: Vec<_> = tests.iter().map(|t| t.name.clone()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), tests.len());
}
