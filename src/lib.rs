//! # c11-operational
//!
//! A Rust reproduction of *"Verifying C11 Programs Operationally"*
//! (Doherty, Dongol, Wehrheim, Derrick — PPoPP 2019): an operational
//! semantics for the release/acquire/relaxed (RAR) fragment of the C11
//! memory model, validated against the axiomatic semantics, together with
//! the paper's invariant-based proof calculus and its case studies.
//!
//! This façade crate re-exports the workspace crates:
//!
//! * [`api`] — **the front door**: the [`prelude::CheckRequest`] →
//!   [`prelude::CheckReport`] API every consumer (CLI, tests, services)
//!   goes through, and the [`prelude::Session`] service layer on top —
//!   a shared worker pool with a fingerprint-keyed result cache, batch
//!   submission ([`prelude::Session::run_batch`]) and the `c11serve`
//!   JSONL front-end.
//! * [`relations`] — finite relations and bitsets (substrate).
//! * [`lang`] — the command language and its uninterpreted semantics
//!   (paper §2).
//! * [`core`] — C11 states, observability, and the RA event semantics
//!   (paper §3), plus the pluggable [`core::model::MemoryModel`] interface
//!   with pre-execution and SC instantiations.
//! * [`axiomatic`] — the validity axioms, justification search, weak
//!   canonical consistency and the bounded Memalloy-style equivalence
//!   checker (paper §4 + Appendix C/E).
//! * [`explore`] — exhaustive model checkers over configurations: the
//!   sequential reference engine and the work-stealing parallel engine
//!   ([`prelude::Engine`]), optionally composed with a partial-order
//!   reduction ([`prelude::Reduction`]: sleep-set or source-set DPOR),
//!   behind one [`explore::ExploreBackend`] trait.
//! * [`verify`] — determinate-value / variable-ordering assertions and the
//!   Figure-4 rule engine (paper §5), with the Peterson and message-passing
//!   proofs.
//! * [`litmus`] — a corpus of litmus tests with expected RAR verdicts.
//!
//! ## Quickstart
//!
//! One request type covers every engine and question — pick a model, an
//! engine × reduction pair and a mode, and get a structured report back:
//!
//! ```
//! use c11_operational::prelude::*;
//!
//! // Message passing: t1 publishes data then raises a release flag;
//! // t2 acquires the flag, then reads the data.
//! let report = CheckRequest::program(
//!     "vars d f;
//!      thread t1 { d := 5; f :=R 1; }
//!      thread t2 { r0 <-A f; r1 <- d; }",
//! )
//! .model(ModelChoice::Ra)
//! .engine(Engine::Parallel { workers: 2 })
//! .mode(Mode::Outcomes)
//! .run()
//! .expect("program parses");
//!
//! // In the RAR fragment, seeing the flag means seeing the data.
//! let CheckReport::Outcomes(outcomes) = &report else { unreachable!() };
//! assert!(!outcomes.stats.truncated);
//! assert_eq!(outcomes.invalid_finals, 0); // Theorem 4.4 self-check
//! println!("{}", report.to_json()); // machine-readable (c11check/v1)
//!
//! // The exploration engines remain directly accessible:
//! let prog = parse_program("vars x; thread t { x := 1; }").unwrap();
//! let result = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
//! assert_eq!(result.finals.len(), 1);
//!
//! // Long-lived consumers hold a `Session`: repeated submissions of the
//! // same program are answered from the fingerprint-keyed result cache.
//! let session = Session::new(SessionConfig::default().workers(2));
//! let mk = || CheckRequest::program("vars x; thread t { x := 1; }");
//! assert!(!session.run(mk()).unwrap().cache_hit());
//! assert!(session.run(mk()).unwrap().cache_hit());
//! ```

pub use c11_api as api;
pub use c11_axiomatic as axiomatic;
pub use c11_core as core;
pub use c11_explore as explore;
pub use c11_lang as lang;
pub use c11_litmus as litmus;
pub use c11_relations as relations;
pub use c11_verify as verify;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use c11_api::{
        Backend, BatchReport, BatchRequest, BatchStats, Bounds, CheckError, CheckReport,
        CheckRequest, ConfigView, Engine, Invariant, JobId, Meta, Mode, ModelChoice, OutcomeRow,
        ProgramInput, Reduction, Session, SessionConfig, SessionStats,
    };
    pub use c11_axiomatic::axioms::{check_validity, is_valid, Axiom, Violation};
    pub use c11_core::event::{Event, EventId};
    pub use c11_core::model::{MemoryModel, PreExecutionModel, RaModel, ScModel, Transition};
    pub use c11_core::state::C11State;
    pub use c11_core::{Action, ThreadId};
    pub use c11_explore::{
        Budget, DporBackend, ExploreBackend, ExploreConfig, Explorer, Interrupt, ParallelBackend,
        RegSnapshot, SequentialBackend, Stats, StoreKind, StoreStats, SymClasses,
    };
    pub use c11_lang::ast::{BinOp, Com, Exp, Prog, RegId, Val, VarId};
    pub use c11_lang::parser::parse_program;
    pub use c11_verify::assertions::{determinate_value, update_only, variable_order};
}
