//! `c11netd` — the checking service over TCP: the same `c11check/v1`
//! request/response documents `c11serve` speaks over stdio, carried in
//! length-prefixed frames (4-byte big-endian payload length + one JSON
//! document; see `c11_api::net`). One long-lived [`Session`] backs every
//! connection, so the fingerprint-keyed result cache, LRU bounds,
//! per-job deadlines and `Overloaded` backpressure all apply per frame
//! — and with `--cache-path`, warm results survive restarts.
//!
//! ```sh
//! c11netd [--listen ADDR] [--port-file FILE] [--max-conns N]
//!         [--read-timeout-ms MS] [--write-timeout-ms MS]
//!         [--cache-path FILE] [--workers N] [--no-cache]
//!         [--auto-parallel T] [--job-timeout-ms MS]
//!         [--cache-capacity N] [--max-queue N]
//! ```
//!
//! Connections are served thread-per-connection up to `--max-conns`;
//! a connection past the cap is answered with one `"overloaded"` frame
//! and closed. Within a connection, frames are answered in order: a
//! request frame gets a report / `"error"` / `"overloaded"` frame, and
//! a `{"stats": true}` frame gets the live session counters (with
//! per-reduction exploration counts). Request documents carry the full
//! `c11serve` schema, including the `engine` × `reduction` pair (plus
//! the deprecated `backend` spelling) and the `store`
//! (`"flat"`/`"sym"`/`"shared"`) and `symmetry` storage knobs. A frame
//! that violates the protocol (oversized length, mid-frame truncation
//! or stall) is answered once (best effort) and the connection closed —
//! the stream cannot be resynchronised.
//!
//! On SIGTERM or SIGINT the server stops accepting, finishes every
//! frame already in flight, snapshots the cache to `--cache-path` (if
//! set), prints a final `batch-summary` line on stdout and exits 0.
//! Per-frame client errors do not fail the exit code — a network
//! service outlives its worst client; startup failures exit 2.

use c11_operational::api::json::Json;
use c11_operational::api::net::{
    self, error_line, overloaded_line, report_line, shutdown, stats_line, FrameIn,
};
use c11_operational::api::{CheckError, Session, SessionConfig};
use c11_operational::prelude::*;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const USAGE: &str = "usage: c11netd [--listen ADDR] [--port-file FILE] [--max-conns N] \
     [--read-timeout-ms MS] [--write-timeout-ms MS] [--cache-path FILE] \
     [--workers N] [--no-cache] [--auto-parallel T] [--job-timeout-ms MS] \
     [--cache-capacity N] [--max-queue N]\n\
     serves c11check/v1 requests over length-prefixed TCP frames\n\
     --listen ADDR: bind address (default 127.0.0.1:7411; port 0 picks one)\n\
     --port-file FILE: write the bound port to FILE once listening\n\
     --max-conns N: concurrent connection cap (default 64)\n\
     --read-timeout-ms MS: per-connection socket read timeout (default 1000)\n\
     --write-timeout-ms MS: per-connection socket write timeout (default 5000)\n\
     --cache-path FILE: load the result cache from FILE on start and \
     snapshot it back on drain\n\
     --workers / --no-cache / --auto-parallel / --job-timeout-ms / \
     --cache-capacity / --max-queue: as for c11serve";

struct Opts {
    listen: String,
    port_file: Option<String>,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    cache_path: Option<String>,
    workers: usize,
    cache: bool,
    auto_parallel: usize,
    job_timeout_ms: Option<usize>,
    cache_capacity: Option<usize>,
    max_queue: Option<usize>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        listen: "127.0.0.1:7411".to_string(),
        port_file: None,
        max_conns: 64,
        read_timeout: Duration::from_millis(1000),
        write_timeout: Duration::from_millis(5000),
        cache_path: None,
        workers: 2,
        cache: true,
        auto_parallel: 4,
        job_timeout_ms: None,
        cache_capacity: None,
        max_queue: None,
    };
    let mut args = std::env::args().skip(1);
    let text = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    let num = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| {
        text(args, flag)?
            .parse::<usize>()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => opts.listen = text(&mut args, "--listen")?,
            "--port-file" => opts.port_file = Some(text(&mut args, "--port-file")?),
            "--max-conns" => opts.max_conns = num(&mut args, "--max-conns")?.max(1),
            "--read-timeout-ms" => {
                opts.read_timeout =
                    Duration::from_millis(num(&mut args, "--read-timeout-ms")?.max(1) as u64);
            }
            "--write-timeout-ms" => {
                opts.write_timeout =
                    Duration::from_millis(num(&mut args, "--write-timeout-ms")?.max(1) as u64);
            }
            "--cache-path" => opts.cache_path = Some(text(&mut args, "--cache-path")?),
            "--workers" => opts.workers = num(&mut args, "--workers")?,
            "--no-cache" => opts.cache = false,
            "--auto-parallel" => opts.auto_parallel = num(&mut args, "--auto-parallel")?,
            "--job-timeout-ms" => opts.job_timeout_ms = Some(num(&mut args, "--job-timeout-ms")?),
            "--cache-capacity" => opts.cache_capacity = Some(num(&mut args, "--cache-capacity")?),
            "--max-queue" => opts.max_queue = Some(num(&mut args, "--max-queue")?),
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// The per-frame aggregates every connection folds into, summarised on
/// drain exactly like `c11serve`'s batch line.
#[derive(Default)]
struct Tally {
    stats: BatchStats,
}

/// Serves one connection: frames in, responses out, until EOF, a
/// protocol error, or drain. Returns when the connection is done.
fn serve_conn(
    mut conn: TcpStream,
    conn_no: usize,
    session: &Session,
    tally: &Mutex<Tally>,
    opts: &Opts,
) {
    let _ = conn.set_read_timeout(Some(opts.read_timeout));
    let _ = conn.set_write_timeout(Some(opts.write_timeout));
    let mut frame_no = 0usize;
    loop {
        if shutdown::requested() {
            return;
        }
        match net::read_frame(&mut conn) {
            Ok(FrameIn::Eof) => return,
            // Idle at a frame boundary: poll the drain flag, keep going.
            Ok(FrameIn::Idle) => continue,
            Err(e) => {
                // Protocol violation or I/O failure: one best-effort
                // error frame, then close (the stream can't resync).
                tally.lock().unwrap().stats.jobs += 1;
                tally.lock().unwrap().stats.errors += 1;
                let line = error_line(&format!("conn-{conn_no}-{}", frame_no + 1), &e);
                let _ = net::write_frame(&mut conn, line.as_bytes());
                return;
            }
            Ok(FrameIn::Frame(payload)) => {
                frame_no += 1;
                let response = respond(&payload, conn_no, frame_no, session, tally);
                if net::write_frame(&mut conn, response.as_bytes()).is_err() {
                    return; // peer gone or stalled past the write timeout
                }
            }
        }
    }
}

/// Answers one frame payload with one response document.
fn respond(
    payload: &[u8],
    conn_no: usize,
    frame_no: usize,
    session: &Session,
    tally: &Mutex<Tally>,
) -> String {
    let fallback_id = || format!("conn-{conn_no}-{frame_no}");
    let parsed = std::str::from_utf8(payload)
        .map_err(|e| format!("frame is not valid UTF-8: {e}"))
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()));
    let v = match parsed {
        Ok(v) => v,
        Err(msg) => {
            let mut t = tally.lock().unwrap();
            t.stats.jobs += 1;
            t.stats.errors += 1;
            return error_line(&fallback_id(), &msg);
        }
    };
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(fallback_id);
    // Stats frames are observations, not jobs: no tally.
    match net::stats_request(&v) {
        Some(Ok(())) => return stats_line(&id, &session.stats()),
        Some(Err(msg)) => {
            let mut t = tally.lock().unwrap();
            t.stats.jobs += 1;
            t.stats.errors += 1;
            return error_line(&id, &msg);
        }
        None => {}
    }
    let submitted = net::request_from_json(&v).and_then(|req| {
        session.submit(req).map_err(|e| match e {
            CheckError::Overloaded => String::new(), // sentinel, handled below
            other => other.to_string(),
        })
    });
    let mut t = tally.lock().unwrap();
    t.stats.jobs += 1;
    match submitted {
        Err(msg) if msg.is_empty() => {
            t.stats.overloaded += 1;
            overloaded_line(&id)
        }
        Err(msg) => {
            t.stats.errors += 1;
            error_line(&id, &msg)
        }
        Ok(job) => {
            // Block this connection's thread on the result while other
            // connections keep submitting — the pool under the session
            // is the concurrency limit, not this wait.
            drop(t);
            let waited = session.wait(job);
            let mut t = tally.lock().unwrap();
            match waited {
                Ok(report) => {
                    t.stats.ok += 1;
                    t.stats.cache_hits += usize::from(report.cache_hit());
                    t.stats.interrupted += usize::from(report.interrupt().is_some());
                    t.stats.explore = t.stats.explore.merged(&report.stats());
                    if let CheckReport::Litmus(l) = &report {
                        if !l.pass && report.interrupt().is_none() {
                            t.stats.litmus_failed += 1;
                        }
                    }
                    report_line(&id, &report)
                }
                Err(CheckError::Cancelled) => {
                    t.stats.interrupted += 1;
                    error_line(&id, "cancelled")
                }
                Err(e) => {
                    t.stats.errors += 1;
                    error_line(&id, &e.to_string())
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    shutdown::install();
    let mut cfg = SessionConfig::default()
        .workers(opts.workers)
        .cache(opts.cache)
        .parallel_threshold(opts.auto_parallel);
    if let Some(ms) = opts.job_timeout_ms {
        cfg = cfg.job_timeout(Duration::from_millis(ms as u64));
    }
    if let Some(n) = opts.cache_capacity {
        cfg = cfg.cache_capacity(n);
    }
    if let Some(n) = opts.max_queue {
        cfg = cfg.max_queue_depth(n);
    }
    if let Some(path) = &opts.cache_path {
        cfg = cfg.cache_path(path);
    }
    let session = Arc::new(Session::new(cfg));
    {
        let s = session.stats();
        if s.persist_loaded > 0 || s.persist_skipped > 0 {
            eprintln!(
                "cache snapshot: {} entries loaded, {} lines skipped",
                s.persist_loaded, s.persist_skipped
            );
        }
    }

    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot listen on {}: {e}", opts.listen);
            return ExitCode::from(2);
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    // Non-blocking accept so the loop can poll the drain flag.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cannot make the listener non-blocking: {e}");
        return ExitCode::from(2);
    }
    if let Some(port_file) = &opts.port_file {
        // Temp-file + rename so a poller never reads a half-written port.
        let tmp = format!("{port_file}.tmp");
        let write = std::fs::write(&tmp, format!("{}\n", local.port()))
            .and_then(|()| std::fs::rename(&tmp, port_file));
        if let Err(e) = write {
            eprintln!("cannot write {port_file}: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!("c11netd listening on {local}");

    let opts = Arc::new(opts);
    let tally = Arc::new(Mutex::new(Tally::default()));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conn_no = 0usize;
    let t0 = std::time::Instant::now();

    while !shutdown::requested() {
        // Reap finished connection threads so `handles` stays bounded by
        // the connection cap, not the connection count.
        handles.retain(|h| !h.is_finished());
        match listener.accept() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("accept failed: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok((mut conn, _peer)) => {
                conn_no += 1;
                if active.load(Ordering::Acquire) >= opts.max_conns {
                    // Answer with backpressure instead of silently
                    // dropping: the client learns to retry later.
                    let _ = conn.set_write_timeout(Some(opts.write_timeout));
                    let line = overloaded_line(&format!("conn-{conn_no}"));
                    let _ = net::write_frame(&mut conn, line.as_bytes());
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let session = session.clone();
                let tally = tally.clone();
                let opts = opts.clone();
                let active = active.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("c11netd-conn-{conn_no}"))
                    .spawn(move || {
                        serve_conn(conn, conn_no, &session, &tally, &opts);
                        active.fetch_sub(1, Ordering::AcqRel);
                    })
                    .expect("spawn connection thread");
                handles.push(handle);
            }
        }
    }

    // Drain: stop accepting, let every connection finish its in-flight
    // frame (their loops observe the flag at the next frame boundary).
    drop(listener);
    for handle in handles {
        let _ = handle.join();
    }
    match session.flush_cache() {
        Ok(n) if n > 0 => eprintln!("cache snapshot: {n} entries written"),
        Ok(_) => {}
        Err(e) => eprintln!("cache snapshot failed: {e}"),
    }

    let mut stats = std::mem::take(&mut tally.lock().unwrap().stats);
    stats.wall_micros = t0.elapsed().as_micros();
    let batch = BatchReport {
        reports: Vec::new(),
        stats,
    };
    let Json::Obj(mut pairs) = batch.summary_json() else {
        unreachable!("summaries are objects");
    };
    pairs.push((
        "explorations".to_string(),
        Json::from(session.stats().explorations),
    ));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "{}", Json::Obj(pairs).render());
    let _ = out.flush();
    // A clean drain is success: per-frame client errors were already
    // answered to the clients that caused them.
    ExitCode::SUCCESS
}
