//! `c11serve` — the long-lived checking service: `c11check/v1` request
//! JSON lines in on stdin, one report JSON line out per request, plus a
//! final `batch-summary` line. Built on the [`Session`] API: requests
//! are scheduled concurrently over a worker pool and answered from the
//! fingerprint-keyed result cache when possible, while responses stream
//! out in request order.
//!
//! ```sh
//! c11serve [--workers N] [--no-cache] [--auto-parallel T]
//!          [--job-timeout-ms MS] [--cache-capacity N] [--max-queue N]
//!
//! # One request per line. Exactly one of program / litmus_path /
//! # litmus_source selects the input; everything else is optional:
//! echo '{"id":"sb","program":"vars x y; thread t1 { x := 1; r0 <- y; } \
//!        thread t2 { y := 1; r0 <- x; }","mode":"outcomes"}' | c11serve
//!
//! # Pipe a litmus corpus through the service:
//! for f in litmus/*.litmus; do
//!   printf '{"id":"%s","litmus_path":"%s"}\n' "$(basename "$f")" "$f"
//! done | c11serve --workers 4
//! ```
//!
//! Request-line schema (`c11check/v1`; unknown keys are rejected):
//!
//! | key            | value                                              |
//! |----------------|----------------------------------------------------|
//! | `id`           | string echoed into the report line (default: line number) |
//! | `program`      | DSL source text                                    |
//! | `litmus_path`  | path to a `.litmus` file                           |
//! | `litmus_source`| inline `.litmus` file text                         |
//! | `model`        | `"ra"` (default) / `"sc"` / `"pre-execution"`      |
//! | `mode`         | `"outcomes"` (default) / `"count"` / `"litmus"` (litmus inputs' default) |
//! | `backend`      | `"sequential"` / `"parallel"` / `"dpor"`, or `{"kind":"parallel","workers":N}` |
//! | `bounds`       | `{"max_events":N,"max_states":N,"max_depth":N}` (each optional) |
//! | `traces`       | bool — witness schedules per outcome               |
//! | `dot`          | integer — render up to N final executions as DOT   |
//! | `timeout_ms`   | integer — per-request deadline, measured from when compute starts |
//!
//! Each response line is the `c11check/v1` report object with `id`
//! prepended after `schema`; its `status` is `"ok"`, `"timed_out"` or
//! `"cancelled"` (a deadline-hit report is still a report — partial
//! stats, not an error). Malformed lines produce
//! `{"schema":"c11check/v1","id":…,"status":"error","error":"…"}`;
//! submissions bounced by a full queue (`--max-queue`) produce
//! `"status":"overloaded"` lines. Input lines are capped at 1 MiB:
//! longer lines (and lines that are not valid UTF-8) are answered with
//! a positioned error and the stream continues. On EOF — or SIGTERM on
//! Unix — the service stops reading, drains every in-flight job, prints
//! the summary and exits. The exit code is 0 iff every line was ok and
//! every litmus verdict passed; overload rejections and deadline hits
//! are service conditions, not genuine errors, and do not fail it.

use c11_operational::api::json::Json;
use c11_operational::api::{CheckError, Session, SessionConfig};
use c11_operational::litmus::{load_litmus_file, parse_litmus};
use c11_operational::prelude::*;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::mpsc;

const USAGE: &str = "usage: c11serve [--workers N] [--no-cache] [--auto-parallel T] \
     [--job-timeout-ms MS] [--cache-capacity N] [--max-queue N]\n\
     reads c11check/v1 request JSON lines on stdin, writes one report \
     JSON line per request and a final batch-summary line on stdout\n\
     --workers N: session pool size (default 2)\n\
     --no-cache: disable the fingerprint-keyed result cache\n\
     --auto-parallel T: run sequential-backend requests whose program \
     has ≥ T threads on the parallel engine (default 4; 0 disables)\n\
     --job-timeout-ms MS: default per-job deadline (a request's own \
     timeout_ms wins when tighter)\n\
     --cache-capacity N: bound the result cache to N reports (LRU)\n\
     --max-queue N: reject submissions beyond N queued jobs with \
     status \"overloaded\"";

/// Longest accepted request line; longer lines are dropped with a
/// positioned error instead of buffering unboundedly.
const MAX_LINE_BYTES: usize = 1 << 20;

struct Opts {
    workers: usize,
    cache: bool,
    auto_parallel: usize,
    job_timeout_ms: Option<usize>,
    cache_capacity: Option<usize>,
    max_queue: Option<usize>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workers: 2,
        cache: true,
        auto_parallel: 4,
        job_timeout_ms: None,
        cache_capacity: None,
        max_queue: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| {
        args.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-cache" => opts.cache = false,
            "--workers" => opts.workers = num(&mut args, "--workers")?,
            "--auto-parallel" => opts.auto_parallel = num(&mut args, "--auto-parallel")?,
            "--job-timeout-ms" => opts.job_timeout_ms = Some(num(&mut args, "--job-timeout-ms")?),
            "--cache-capacity" => opts.cache_capacity = Some(num(&mut args, "--cache-capacity")?),
            "--max-queue" => opts.max_queue = Some(num(&mut args, "--max-queue")?),
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Builds a [`CheckRequest`] from a parsed request line. Errors are
/// strings destined for the line's error report.
fn build_request(v: &Json) -> Result<CheckRequest, String> {
    let obj = v.as_obj().ok_or("request line must be a JSON object")?;
    const KNOWN: [&str; 11] = [
        "id",
        "program",
        "litmus_path",
        "litmus_source",
        "model",
        "mode",
        "backend",
        "bounds",
        "traces",
        "dot",
        "timeout_ms",
    ];
    for (key, _) in obj {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?}"));
        }
    }
    let program = v.get("program");
    let litmus_path = v.get("litmus_path");
    let litmus_source = v.get("litmus_source");
    let inputs = [program, litmus_path, litmus_source]
        .iter()
        .filter(|i| i.is_some())
        .count();
    if inputs != 1 {
        return Err(
            "exactly one of \"program\", \"litmus_path\", \"litmus_source\" is required"
                .to_string(),
        );
    }
    let is_litmus = program.is_none();
    let mut req = if let Some(src) = program {
        let src = src.as_str().ok_or("\"program\" must be a string")?;
        CheckRequest::program(src)
    } else if let Some(path) = litmus_path {
        let path = path.as_str().ok_or("\"litmus_path\" must be a string")?;
        let test = load_litmus_file(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        CheckRequest::litmus(test)
    } else {
        let src = litmus_source
            .unwrap()
            .as_str()
            .ok_or("\"litmus_source\" must be a string")?;
        let test = parse_litmus(src).map_err(|e| e.to_string())?;
        CheckRequest::litmus(test)
    };
    if let Some(model) = v.get("model") {
        req = req.model(match model.as_str() {
            Some("ra") => ModelChoice::Ra,
            Some("sc") => ModelChoice::Sc,
            Some("pre-execution") => ModelChoice::PreExecution,
            _ => return Err("\"model\" must be \"ra\", \"sc\" or \"pre-execution\"".to_string()),
        });
    }
    if let Some(mode) = v.get("mode") {
        req = req.mode(match mode.as_str() {
            Some("outcomes") => Mode::Outcomes,
            Some("count") => Mode::CountOnly,
            Some("litmus") if is_litmus => Mode::LitmusVerdict,
            Some("litmus") => {
                return Err("\"litmus\" mode needs a litmus_path/litmus_source input".to_string());
            }
            _ => return Err("\"mode\" must be \"outcomes\", \"count\" or \"litmus\"".to_string()),
        });
    }
    if let Some(backend) = v.get("backend") {
        // Two spellings: the bare kind string ("backend":"dpor") or the
        // report-schema object ("backend":{"kind":"parallel","workers":4}).
        req = req.backend(if let Some(kind) = backend.as_str() {
            match kind {
                "sequential" => Backend::Sequential,
                "dpor" => Backend::Dpor,
                "parallel" => Backend::Parallel { workers: 2 },
                _ => {
                    return Err(
                        "\"backend\" must be \"sequential\", \"parallel\" or \"dpor\"".into(),
                    );
                }
            }
        } else {
            let fields = backend.as_obj().ok_or("\"backend\" must be an object")?;
            for (key, _) in fields {
                if key != "kind" && key != "workers" {
                    return Err(format!("unknown \"backend\" key {key:?}"));
                }
            }
            match backend.get("kind").and_then(Json::as_str) {
                Some("sequential") => Backend::Sequential,
                Some("dpor") => Backend::Dpor,
                Some("parallel") => Backend::Parallel {
                    workers: backend
                        .get("workers")
                        .and_then(Json::as_usize)
                        .ok_or("parallel backend needs integer \"workers\"")?,
                },
                _ => {
                    return Err(
                        "\"backend\".\"kind\" must be \"sequential\", \"parallel\" or \"dpor\""
                            .into(),
                    );
                }
            }
        });
    }
    if let Some(bounds) = v.get("bounds") {
        // Strictly validated like the top level: a typo'd or mis-typed
        // bound must error, not silently run with defaults.
        let fields = bounds.as_obj().ok_or("\"bounds\" must be an object")?;
        let allowed: &[&str] = if is_litmus {
            // Litmus requests seed max_events from the test itself; the
            // other bounds govern both models at once and are not
            // overridable per request line.
            &["max_events"]
        } else {
            &["max_events", "max_states", "max_depth"]
        };
        let mut b = Bounds::default();
        for (key, value) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(if is_litmus {
                    format!("litmus \"bounds\" may only set \"max_events\", got {key:?}")
                } else {
                    format!("unknown \"bounds\" key {key:?}")
                });
            }
            let n = value
                .as_usize()
                .ok_or_else(|| format!("\"bounds\".{key:?} must be an integer"))?;
            b = match key.as_str() {
                "max_events" => b.max_events(n),
                "max_states" => b.max_states(n),
                _ => b.max_depth(n),
            };
        }
        if !fields.is_empty() {
            req = req.bounds(b);
        }
    }
    if let Some(traces) = v.get("traces") {
        req = req.traces(traces.as_bool().ok_or("\"traces\" must be a boolean")?);
    }
    if let Some(dot) = v.get("dot") {
        req = req.dot(dot.as_usize().ok_or("\"dot\" must be an integer")?);
    }
    if let Some(t) = v.get("timeout_ms") {
        let ms = t.as_usize().ok_or("\"timeout_ms\" must be an integer")?;
        req = req.timeout(std::time::Duration::from_millis(ms as u64));
    }
    Ok(req)
}

/// One unit flowing from the reader to the writer: a submitted job, a
/// backpressure rejection, or a line-level error, with the id to echo.
enum Item {
    Job(String, c11_operational::api::JobId),
    Overloaded(String),
    LineError(String, String),
}

fn error_line(id: &str, msg: &str) -> String {
    Json::obj(vec![
        ("schema", Json::str("c11check/v1")),
        ("id", Json::str(id)),
        ("status", Json::str("error")),
        ("error", Json::str(msg)),
    ])
    .render()
}

fn overloaded_line(id: &str) -> String {
    Json::obj(vec![
        ("schema", Json::str("c11check/v1")),
        ("id", Json::str(id)),
        ("status", Json::str("overloaded")),
        ("error", Json::str("submission queue is full, retry later")),
    ])
    .render()
}

fn report_line(id: &str, report: &CheckReport) -> String {
    let Json::Obj(mut pairs) = report.json_value() else {
        unreachable!("reports are objects");
    };
    // `id` goes right after `schema` for scannability; the report itself
    // already carries `status` ("ok" / "timed_out" / "cancelled").
    pairs.insert(1, ("id".to_string(), Json::str(id)));
    Json::Obj(pairs).render()
}

/// One raw request line, read with a hard byte cap.
enum Line {
    Eof,
    Text(String),
    /// Line exceeded [`MAX_LINE_BYTES`]; payload is the dropped length
    /// seen before giving up (the line was consumed through its newline).
    TooLong(usize),
    /// Line bytes were not valid UTF-8; payload is the offset of the
    /// first bad byte.
    BadUtf8(usize),
    Io(String),
}

/// Reads one newline-terminated line as bytes, enforcing the length cap
/// without buffering the excess. An oversized line is consumed to its
/// newline so the *next* line still parses — one hostile line must not
/// poison the rest of the stream.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> Line {
    let mut buf: Vec<u8> = Vec::new();
    let mut saw_input = false;
    let mut dropped = false;
    let mut dropped_len = 0usize;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Line::Io(e.to_string()),
        };
        if chunk.is_empty() {
            break; // EOF (a final unterminated line still counts)
        }
        saw_input = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if dropped {
            dropped_len += take;
        } else if buf.len() + take > cap {
            dropped = true;
            dropped_len = buf.len() + take;
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if dropped {
        return Line::TooLong(dropped_len);
    }
    if !saw_input {
        return Line::Eof;
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(text) => Line::Text(text),
        Err(e) => Line::BadUtf8(e.utf8_error().valid_up_to()),
    }
}

/// SIGTERM → graceful drain: the reader stops accepting lines and the
/// writer finishes every job already submitted before the summary is
/// printed. Raw `signal(2)` via the C library keeps this crate-free.
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    term::install();
    let mut cfg = SessionConfig::default()
        .workers(opts.workers)
        .cache(opts.cache)
        .parallel_threshold(opts.auto_parallel);
    if let Some(ms) = opts.job_timeout_ms {
        cfg = cfg.job_timeout(std::time::Duration::from_millis(ms as u64));
    }
    if let Some(n) = opts.cache_capacity {
        cfg = cfg.cache_capacity(n);
    }
    if let Some(n) = opts.max_queue {
        cfg = cfg.max_queue_depth(n);
    }
    let session = std::sync::Arc::new(Session::new(cfg));
    let (tx, rx) = mpsc::channel::<Item>();

    let t0 = std::time::Instant::now();

    // Writer thread: redeems jobs in request order and streams one line
    // per request; accumulates the batch aggregates (the reports
    // themselves are not kept — this is a stream, not a buffer).
    let writer = {
        let session = session.clone();
        std::thread::spawn(move || {
            let stdout = std::io::stdout();
            let mut stats = BatchStats::default();
            for item in rx {
                stats.jobs += 1;
                let line = match item {
                    Item::LineError(id, msg) => {
                        stats.errors += 1;
                        error_line(&id, &msg)
                    }
                    Item::Overloaded(id) => {
                        stats.overloaded += 1;
                        overloaded_line(&id)
                    }
                    Item::Job(id, job) => match session.wait(job) {
                        Ok(report) => {
                            stats.ok += 1;
                            stats.cache_hits += usize::from(report.cache_hit());
                            stats.interrupted += usize::from(report.interrupt().is_some());
                            stats.explore = stats.explore.merged(&report.stats());
                            if let CheckReport::Litmus(l) = &report {
                                // A deadline-hit verdict never finished;
                                // don't count it as a litmus failure.
                                if !l.pass && report.interrupt().is_none() {
                                    stats.litmus_failed += 1;
                                }
                            }
                            report_line(&id, &report)
                        }
                        Err(CheckError::Cancelled) => {
                            stats.interrupted += 1;
                            error_line(&id, "cancelled")
                        }
                        Err(e) => {
                            stats.errors += 1;
                            error_line(&id, &e.to_string())
                        }
                    },
                };
                let mut out = stdout.lock();
                let _ = writeln!(out, "{line}");
                let _ = out.flush(); // stream per request — this is a service
            }
            stats
        })
    };

    // Reader (main thread): parse lines, submit jobs as they arrive.
    // Stops at EOF, on an unrecoverable read error, or when SIGTERM
    // asks for a graceful drain.
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let mut n = 0usize;
    loop {
        if term::requested() {
            break;
        }
        n += 1;
        let item = match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Line::Eof => break,
            Line::Io(e) => {
                let _ = tx.send(Item::LineError(
                    format!("line-{n}"),
                    format!("stdin read error: {e}"),
                ));
                break;
            }
            Line::TooLong(len) => Item::LineError(
                format!("line-{n}"),
                format!("line {n} exceeds the {MAX_LINE_BYTES}-byte cap ({len} bytes); dropped"),
            ),
            Line::BadUtf8(at) => Item::LineError(
                format!("line-{n}"),
                format!("line {n} is not valid UTF-8 (first invalid byte at offset {at})"),
            ),
            Line::Text(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match Json::parse(&line) {
                    Err(e) => Item::LineError(format!("line-{n}"), e.to_string()),
                    Ok(v) => {
                        let id = v
                            .get("id")
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("line-{n}"));
                        match build_request(&v) {
                            Ok(req) => match session.submit(req) {
                                Ok(job) => Item::Job(id, job),
                                Err(CheckError::Overloaded) => Item::Overloaded(id),
                                Err(e) => Item::LineError(id, e.to_string()),
                            },
                            Err(msg) => Item::LineError(id, msg),
                        }
                    }
                }
            }
        };
        let _ = tx.send(item);
    }
    drop(tx); // EOF/SIGTERM: let the writer drain in-flight jobs and finish
    let mut stats = writer.join().expect("writer thread");
    stats.wall_micros = t0.elapsed().as_micros();

    // Final batch-summary line: the canonical `BatchReport::summary_json`
    // document, extended with the session-level `explorations` counter.
    let batch = BatchReport {
        reports: Vec::new(),
        stats,
    };
    let Json::Obj(mut pairs) = batch.summary_json() else {
        unreachable!("summaries are objects");
    };
    pairs.push((
        "explorations".to_string(),
        Json::from(session.stats().explorations),
    ));
    println!("{}", Json::Obj(pairs).render());
    if batch.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
