//! `c11serve` — the long-lived checking service: `c11check/v1` request
//! JSON lines in on stdin, one report JSON line out per request, plus a
//! final `batch-summary` line. Built on the [`Session`] API: requests
//! are scheduled concurrently over a worker pool and answered from the
//! fingerprint-keyed result cache when possible, while responses stream
//! out in request order.
//!
//! ```sh
//! c11serve [--workers N] [--no-cache] [--auto-parallel T]
//!          [--job-timeout-ms MS] [--cache-capacity N] [--max-queue N]
//!          [--cache-path FILE]
//!
//! # One request per line. Exactly one of program / litmus_path /
//! # litmus_source selects the input; everything else is optional:
//! echo '{"id":"sb","program":"vars x y; thread t1 { x := 1; r0 <- y; } \
//!        thread t2 { y := 1; r0 <- x; }","mode":"outcomes"}' | c11serve
//!
//! # Pipe a litmus corpus through the service:
//! for f in litmus/*.litmus; do
//!   printf '{"id":"%s","litmus_path":"%s"}\n' "$(basename "$f")" "$f"
//! done | c11serve --workers 4
//! ```
//!
//! Request-line schema (`c11check/v1`; unknown keys are rejected):
//!
//! | key            | value                                              |
//! |----------------|----------------------------------------------------|
//! | `id`           | string echoed into the report line (default: line number) |
//! | `program`      | DSL source text                                    |
//! | `litmus_path`  | path to a `.litmus` file                           |
//! | `litmus_source`| inline `.litmus` file text                         |
//! | `model`        | `"ra"` (default) / `"sc"` / `"pre-execution"`      |
//! | `mode`         | `"outcomes"` (default) / `"count"` / `"litmus"` (litmus inputs' default) |
//! | `engine`       | `"sequential"` (default) / `"parallel"`, or `{"kind":"parallel","workers":N}` |
//! | `reduction`    | `"none"` (default) / `"sleep-set"` / `"source-set"`, or `{"kind":…,"contract":…}` |
//! | `backend`      | deprecated single-axis spelling of the pair (`"dpor"` = sequential + sleep-set); rejected alongside `engine`/`reduction` |
//! | `bounds`       | `{"max_events":N,"max_states":N,"max_depth":N}` (each optional) |
//! | `store`        | `"flat"` (default) / `"sym"` / `"shared"` — visited-state store |
//! | `symmetry`     | bool — quotient visited states by thread-permutation symmetry |
//! | `traces`       | bool — witness schedules per outcome               |
//! | `dot`          | integer — render up to N final executions as DOT   |
//! | `timeout_ms`   | integer — per-request deadline, measured from when compute starts |
//!
//! Each response line is the `c11check/v1` report object with `id`
//! prepended after `schema`; its `status` is `"ok"`, `"timed_out"` or
//! `"cancelled"` (a deadline-hit report is still a report — partial
//! stats, not an error). A `{"stats": true}` control line (optionally
//! with an `id`) is answered in stream order with the live
//! `SessionStats` counters as a `"mode":"session-stats"` line instead
//! of a report (including per-reduction exploration counts:
//! `explorations_none` / `explorations_sleep_set` /
//! `explorations_source_set`), and is not counted as a job. Malformed lines produce
//! `{"schema":"c11check/v1","id":…,"status":"error","error":"…"}`;
//! submissions bounced by a full queue (`--max-queue`) produce
//! `"status":"overloaded"` lines. Input lines are capped at 1 MiB:
//! longer lines (and lines that are not valid UTF-8) are answered with
//! a positioned error and the stream continues. On EOF — or SIGTERM /
//! SIGINT on Unix — the service stops reading, drains every in-flight
//! job, flushes the `--cache-path` snapshot (if any), prints the
//! summary and exits. The exit code is 0 iff every line was ok and
//! every litmus verdict passed; overload rejections and deadline hits
//! are service conditions, not genuine errors, and do not fail it.

use c11_operational::api::json::Json;
use c11_operational::api::net::{
    self, error_line, overloaded_line, report_line, shutdown, stats_line,
};
use c11_operational::api::{CheckError, Session, SessionConfig};
use c11_operational::prelude::*;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::mpsc;

const USAGE: &str = "usage: c11serve [--workers N] [--no-cache] [--auto-parallel T] \
     [--job-timeout-ms MS] [--cache-capacity N] [--max-queue N] [--cache-path FILE]\n\
     reads c11check/v1 request JSON lines on stdin, writes one report \
     JSON line per request and a final batch-summary line on stdout\n\
     --workers N: session pool size (default 2)\n\
     --no-cache: disable the fingerprint-keyed result cache\n\
     --auto-parallel T: run reduction-free sequential requests whose \
     program has ≥ T threads on the parallel engine (default 4; 0 \
     disables; reduced requests are never upgraded)\n\
     --job-timeout-ms MS: default per-job deadline (a request's own \
     timeout_ms wins when tighter)\n\
     --cache-capacity N: bound the result cache to N reports (LRU)\n\
     --max-queue N: reject submissions beyond N queued jobs with \
     status \"overloaded\"\n\
     --cache-path FILE: load the result cache from FILE on start and \
     snapshot it back on drain";

/// Longest accepted request line; longer lines are dropped with a
/// positioned error instead of buffering unboundedly.
const MAX_LINE_BYTES: usize = 1 << 20;

struct Opts {
    workers: usize,
    cache: bool,
    auto_parallel: usize,
    job_timeout_ms: Option<usize>,
    cache_capacity: Option<usize>,
    max_queue: Option<usize>,
    cache_path: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workers: 2,
        cache: true,
        auto_parallel: 4,
        job_timeout_ms: None,
        cache_capacity: None,
        max_queue: None,
        cache_path: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| {
        args.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-cache" => opts.cache = false,
            "--workers" => opts.workers = num(&mut args, "--workers")?,
            "--auto-parallel" => opts.auto_parallel = num(&mut args, "--auto-parallel")?,
            "--job-timeout-ms" => opts.job_timeout_ms = Some(num(&mut args, "--job-timeout-ms")?),
            "--cache-capacity" => opts.cache_capacity = Some(num(&mut args, "--cache-capacity")?),
            "--max-queue" => opts.max_queue = Some(num(&mut args, "--max-queue")?),
            "--cache-path" => {
                opts.cache_path = Some(args.next().ok_or("--cache-path needs a value")?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// One unit flowing from the reader to the writer: a submitted job, a
/// backpressure rejection, a line-level error, or a stats-control
/// answer, with the id to echo. The request parsing and response
/// rendering themselves live in `c11_api::net`, shared with `c11netd`.
enum Item {
    Job(String, c11_operational::api::JobId),
    Overloaded(String),
    LineError(String, String),
    /// A `{"stats": true}` control line: answered in stream order with
    /// the then-current counters, not counted as a job.
    Stats(String),
}

/// One raw request line, read with a hard byte cap.
enum Line {
    Eof,
    Text(String),
    /// Line exceeded [`MAX_LINE_BYTES`]; payload is the dropped length
    /// seen before giving up (the line was consumed through its newline).
    TooLong(usize),
    /// Line bytes were not valid UTF-8; payload is the offset of the
    /// first bad byte.
    BadUtf8(usize),
    Io(String),
}

/// Reads one newline-terminated line as bytes, enforcing the length cap
/// without buffering the excess. An oversized line is consumed to its
/// newline so the *next* line still parses — one hostile line must not
/// poison the rest of the stream.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> Line {
    let mut buf: Vec<u8> = Vec::new();
    let mut saw_input = false;
    let mut dropped = false;
    let mut dropped_len = 0usize;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Line::Io(e.to_string()),
        };
        if chunk.is_empty() {
            break; // EOF (a final unterminated line still counts)
        }
        saw_input = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if dropped {
            dropped_len += take;
        } else if buf.len() + take > cap {
            dropped = true;
            dropped_len = buf.len() + take;
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if dropped {
        return Line::TooLong(dropped_len);
    }
    if !saw_input {
        return Line::Eof;
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(text) => Line::Text(text),
        Err(e) => Line::BadUtf8(e.utf8_error().valid_up_to()),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // SIGTERM and SIGINT both request the same graceful drain: stop
    // reading, finish in-flight jobs, snapshot the cache, summarise.
    shutdown::install();
    let mut cfg = SessionConfig::default()
        .workers(opts.workers)
        .cache(opts.cache)
        .parallel_threshold(opts.auto_parallel);
    if let Some(ms) = opts.job_timeout_ms {
        cfg = cfg.job_timeout(std::time::Duration::from_millis(ms as u64));
    }
    if let Some(n) = opts.cache_capacity {
        cfg = cfg.cache_capacity(n);
    }
    if let Some(n) = opts.max_queue {
        cfg = cfg.max_queue_depth(n);
    }
    if let Some(path) = &opts.cache_path {
        cfg = cfg.cache_path(path);
    }
    let session = std::sync::Arc::new(Session::new(cfg));
    let (tx, rx) = mpsc::channel::<Item>();

    let t0 = std::time::Instant::now();

    // Writer thread: redeems jobs in request order and streams one line
    // per request; accumulates the batch aggregates (the reports
    // themselves are not kept — this is a stream, not a buffer).
    let writer = {
        let session = session.clone();
        std::thread::spawn(move || {
            let stdout = std::io::stdout();
            let mut stats = BatchStats::default();
            for item in rx {
                // Stats-control answers ride the same ordered stream but
                // are observations, not jobs — the batch counters skip
                // them entirely.
                if let Item::Stats(id) = &item {
                    let line = stats_line(id, &session.stats());
                    let mut out = stdout.lock();
                    let _ = writeln!(out, "{line}");
                    let _ = out.flush();
                    continue;
                }
                stats.jobs += 1;
                let line = match item {
                    Item::Stats(_) => unreachable!("handled above"),
                    Item::LineError(id, msg) => {
                        stats.errors += 1;
                        error_line(&id, &msg)
                    }
                    Item::Overloaded(id) => {
                        stats.overloaded += 1;
                        overloaded_line(&id)
                    }
                    Item::Job(id, job) => match session.wait(job) {
                        Ok(report) => {
                            stats.ok += 1;
                            stats.cache_hits += usize::from(report.cache_hit());
                            stats.interrupted += usize::from(report.interrupt().is_some());
                            stats.explore = stats.explore.merged(&report.stats());
                            if let CheckReport::Litmus(l) = &report {
                                // A deadline-hit verdict never finished;
                                // don't count it as a litmus failure.
                                if !l.pass && report.interrupt().is_none() {
                                    stats.litmus_failed += 1;
                                }
                            }
                            report_line(&id, &report)
                        }
                        Err(CheckError::Cancelled) => {
                            stats.interrupted += 1;
                            error_line(&id, "cancelled")
                        }
                        Err(e) => {
                            stats.errors += 1;
                            error_line(&id, &e.to_string())
                        }
                    },
                };
                let mut out = stdout.lock();
                let _ = writeln!(out, "{line}");
                let _ = out.flush(); // stream per request — this is a service
            }
            stats
        })
    };

    // Reader (main thread): parse lines, submit jobs as they arrive.
    // Stops at EOF, on an unrecoverable read error, or when SIGTERM /
    // SIGINT asks for a graceful drain.
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let mut n = 0usize;
    loop {
        if shutdown::requested() {
            break;
        }
        n += 1;
        let item = match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Line::Eof => break,
            Line::Io(e) => {
                let _ = tx.send(Item::LineError(
                    format!("line-{n}"),
                    format!("stdin read error: {e}"),
                ));
                break;
            }
            Line::TooLong(len) => Item::LineError(
                format!("line-{n}"),
                format!("line {n} exceeds the {MAX_LINE_BYTES}-byte cap ({len} bytes); dropped"),
            ),
            Line::BadUtf8(at) => Item::LineError(
                format!("line-{n}"),
                format!("line {n} is not valid UTF-8 (first invalid byte at offset {at})"),
            ),
            Line::Text(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match Json::parse(&line) {
                    Err(e) => Item::LineError(format!("line-{n}"), e.to_string()),
                    Ok(v) => {
                        let id = v
                            .get("id")
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("line-{n}"));
                        match net::stats_request(&v) {
                            Some(Ok(())) => Item::Stats(id),
                            Some(Err(msg)) => Item::LineError(id, msg),
                            None => match net::request_from_json(&v) {
                                Ok(req) => match session.submit(req) {
                                    Ok(job) => Item::Job(id, job),
                                    Err(CheckError::Overloaded) => Item::Overloaded(id),
                                    Err(e) => Item::LineError(id, e.to_string()),
                                },
                                Err(msg) => Item::LineError(id, msg),
                            },
                        }
                    }
                }
            }
        };
        let _ = tx.send(item);
    }
    drop(tx); // EOF/SIGTERM/SIGINT: let the writer drain in-flight jobs
    let mut stats = writer.join().expect("writer thread");
    stats.wall_micros = t0.elapsed().as_micros();
    // Snapshot the warm cache now that the pool is quiet (the session's
    // drop would too, but failing loudly beats failing silently).
    if let Err(e) = session.flush_cache() {
        eprintln!("cache snapshot failed: {e}");
    }

    // Final batch-summary line: the canonical `BatchReport::summary_json`
    // document, extended with the session-level `explorations` counter.
    let batch = BatchReport {
        reports: Vec::new(),
        stats,
    };
    let Json::Obj(mut pairs) = batch.summary_json() else {
        unreachable!("summaries are objects");
    };
    pairs.push((
        "explorations".to_string(),
        Json::from(session.stats().explorations),
    ));
    println!("{}", Json::Obj(pairs).render());
    if batch.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
