//! `c11check` — explore a program under the RAR C11 operational semantics
//! (or the SC baseline) and report reachable outcomes, axiom validity and
//! optional DOT renderings of the final executions. Built entirely on the
//! [`CheckRequest`] front door (`c11_operational::api`).
//!
//! ```sh
//! c11check program.c11 [--sc] [--max-events N] [--engine E] [--reduction R] [--workers N] [--json] [--dot] [--quiet]
//! echo 'vars x; thread t { x := 1; }' | c11check -
//! c11check --litmus litmus/ --json                        # machine-readable corpus verdicts
//! c11check --litmus litmus/ --json --reduction sleep-set  # same verdicts, fewer states
//! c11check --litmus litmus/ --json --reduction source-set # same verdicts, far fewer states
//! ```
//!
//! Directory litmus mode runs through the `Session` batch path
//! (`Session::run_batch`): tests are scheduled concurrently over a
//! worker pool with fingerprint-keyed result caching. For a long-lived
//! service over the same machinery, see `c11serve` (JSON lines on
//! stdin/stdout).

use c11_operational::api::json::Json;
use c11_operational::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

struct Opts {
    path: String,
    sc: bool,
    max_events: usize,
    workers: usize,
    engine: Option<String>,
    reduction: Option<Reduction>,
    backend: Option<String>,
    store: StoreKind,
    symmetry: bool,
    json: bool,
    dot: bool,
    quiet: bool,
    litmus: bool,
}

/// Valid flag values, kept in one place so the error messages and the
/// help text never drift apart. `BACKENDS` is the deprecated single-axis
/// spelling, kept one cycle.
const ENGINES: [&str; 2] = ["sequential", "parallel"];
const REDUCTIONS: [&str; 3] = ["none", "sleep-set", "source-set"];
const BACKENDS: [&str; 3] = ["sequential", "parallel", "dpor"];

const USAGE: &str = "usage: c11check <program.c11 | - | dir> [--litmus] [--sc] \
     [--max-events N] [--engine E] [--reduction R] [--workers N] [--store S] \
     [--symmetry] [--json] [--dot] [--quiet]\n\
     --litmus: treat the input as a .litmus file (or a directory of \
     them, checked as one Session batch) and check expected verdicts\n\
     --engine E: pick who walks the state space; both engines produce \
     identical reports:\n\
         sequential: the deterministic BFS reference engine (default)\n\
         parallel:   work-stealing engine over --workers threads \
     (fastest on big state spaces)\n\
     --reduction R: pick how much of the state space the walk may skip \
     (sequential engine only):\n\
         none:       visit every reachable configuration (default)\n\
         sleep-set:  sleep-set DPOR — fewer generated states, otherwise \
     identical reports\n\
         source-set: source-set DPOR — one execution per Mazurkiewicz \
     trace; verdicts, outcomes and validity identical, unique/generated \
     intentionally smaller (the finals-only contract, surfaced in the \
     JSON report's \"reduction\" block)\n\
     --backend B: deprecated spelling of the pair, kept one cycle \
     (sequential | parallel | dpor = sequential + sleep-set)\n\
     --workers N: thread count for the parallel engine (shorthand: \
     --workers alone implies --engine parallel); in --litmus dir mode \
     N sizes the batch pool instead (jobs run N at a time)\n\
     --store S: pick the visited-state store; all stores produce \
     identical verdicts and outcomes:\n\
         flat:   one hash set of state fingerprints (default)\n\
         sym:    flat + thread-permutation symmetry quotienting (implies \
     --symmetry; fewer unique states on programs with identical threads)\n\
         shared: hash-consed extendible-hash pages with exact resident-\
     byte accounting (a \"store\" block in --json stats)\n\
     --symmetry: quotient visited states by thread-permutation symmetry \
     with any store (changes unique/generated counts, never verdicts)\n\
     --json: emit a machine-readable c11check/v1 report, e.g.\n\
         c11check program.c11 --json --workers 4\n\
         c11check --litmus litmus/ --json --backend dpor";

/// How argument parsing can end without an `Opts`: a requested help page
/// (exit 0) or a real usage error (exit 2).
enum ArgsEnd {
    Help,
    Bad(String),
}

fn parse_args() -> Result<Opts, ArgsEnd> {
    let bad = |msg: String| ArgsEnd::Bad(msg);
    let mut opts = Opts {
        path: String::new(),
        sc: false,
        max_events: 24,
        workers: 0,
        engine: None,
        reduction: None,
        backend: None,
        store: StoreKind::Flat,
        symmetry: false,
        json: false,
        dot: false,
        quiet: false,
        litmus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sc" => opts.sc = true,
            "--litmus" => opts.litmus = true,
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--quiet" => opts.quiet = true,
            "--max-events" => {
                opts.max_events = args
                    .next()
                    .ok_or_else(|| bad("--max-events needs a value".into()))?
                    .parse()
                    .map_err(|e| bad(format!("bad --max-events: {e}")))?;
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .ok_or_else(|| bad("--workers needs a value".into()))?
                    .parse()
                    .map_err(|e| bad(format!("bad --workers: {e}")))?;
            }
            "--engine" => {
                let name = args
                    .next()
                    .ok_or_else(|| bad("--engine needs a value".into()))?;
                if !ENGINES.contains(&name.as_str()) {
                    return Err(bad(format!(
                        "unknown --engine {name:?}: valid engines are {}",
                        ENGINES.join(", ")
                    )));
                }
                opts.engine = Some(name);
            }
            "--reduction" => {
                let name = args
                    .next()
                    .ok_or_else(|| bad("--reduction needs a value".into()))?;
                opts.reduction = Some(match name.as_str() {
                    "none" => Reduction::None,
                    "sleep-set" => Reduction::SleepSet,
                    "source-set" => Reduction::SourceSet,
                    _ => {
                        return Err(bad(format!(
                            "unknown --reduction {name:?}: valid reductions are {}",
                            REDUCTIONS.join(", ")
                        )));
                    }
                });
            }
            "--backend" => {
                let name = args
                    .next()
                    .ok_or_else(|| bad("--backend needs a value".into()))?;
                if !BACKENDS.contains(&name.as_str()) {
                    return Err(bad(format!(
                        "unknown --backend {name:?}: valid backends are {}",
                        BACKENDS.join(", ")
                    )));
                }
                opts.backend = Some(name);
            }
            "--store" => {
                let name = args
                    .next()
                    .ok_or_else(|| bad("--store needs a value".into()))?;
                opts.store = StoreKind::parse(&name).ok_or_else(|| {
                    bad(format!(
                        "unknown --store {name:?}: valid stores are flat, sym, shared"
                    ))
                })?;
            }
            "--symmetry" => opts.symmetry = true,
            "-h" | "--help" => return Err(ArgsEnd::Help),
            p if opts.path.is_empty() => opts.path = p.to_string(),
            other => return Err(bad(format!("unknown argument {other:?}"))),
        }
    }
    if opts.path.is_empty() {
        return Err(bad(
            "no input file (use - for stdin); see --help".to_string()
        ));
    }
    if opts.backend.is_some() && (opts.engine.is_some() || opts.reduction.is_some()) {
        return Err(bad(
            "--backend is the legacy spelling of --engine/--reduction; \
             pass one or the other, not both"
                .to_string(),
        ));
    }
    Ok(opts)
}

/// Resolve the flags to the engine × reduction pair, honouring the
/// deprecated `--backend` spelling for one more cycle.
fn selection_of(opts: &Opts) -> (Engine, Reduction) {
    let workers = if opts.workers > 0 { opts.workers } else { 2 };
    let engine = match (opts.engine.as_deref(), opts.backend.as_deref()) {
        (Some("parallel"), _) | (None, Some("parallel")) => Engine::Parallel { workers },
        (Some(_), _) | (None, Some(_)) => Engine::Sequential,
        // Back-compat shorthand: a bare --workers N selects the parallel
        // engine.
        (None, None) if opts.workers > 0 => Engine::Parallel {
            workers: opts.workers,
        },
        (None, None) => Engine::Sequential,
    };
    let reduction = match (opts.reduction, opts.backend.as_deref()) {
        (Some(r), _) => r,
        (None, Some("dpor")) => Reduction::SleepSet,
        (None, _) => Reduction::None,
    };
    (engine, reduction)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(ArgsEnd::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(ArgsEnd::Bad(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.litmus {
        return run_litmus_mode(&opts);
    }
    let src = if opts.path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.path);
                return ExitCode::from(2);
            }
        }
    };

    let (model, bounds) = if opts.sc {
        // SC states do not grow, so bound by depth instead of events.
        (
            ModelChoice::Sc,
            Bounds::default().max_depth(10 * opts.max_events),
        )
    } else {
        (
            ModelChoice::Ra,
            Bounds::default().max_events(opts.max_events),
        )
    };
    let bounds = bounds.store(opts.store).symmetry(opts.symmetry);
    let (engine, reduction) = selection_of(&opts);
    let request = CheckRequest::program(src.as_str())
        .model(model)
        .bounds(bounds)
        .engine(engine)
        .reduction(reduction)
        .mode(Mode::Outcomes)
        .dot(if opts.dot { 4 } else { 0 });
    let report = match request.run() {
        Ok(r) => r,
        Err(CheckError::Parse(e)) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let CheckReport::Outcomes(outcomes) = &report else {
        unreachable!("Outcomes mode produces an Outcomes report");
    };
    // Theorem 4.4 as a runtime self-check (RA runs only).
    if outcomes.invalid_finals > 0 {
        eprintln!(
            "INTERNAL ERROR: {} invalid final states (soundness bug)",
            outcomes.invalid_finals
        );
        return ExitCode::from(3);
    }
    if opts.json {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    if !opts.quiet {
        println!(
            "explored {} configurations ({} terminated){}",
            outcomes.stats.unique,
            outcomes.stats.finals,
            if outcomes.stats.truncated {
                " — TRUNCATED at bound (outcomes are a lower bound)"
            } else {
                ""
            }
        );
    }
    println!(
        "states: {}   truncated: {}",
        outcomes.stats.unique, outcomes.stats.truncated
    );
    println!(
        "distinct terminated register outcomes: {}",
        outcomes.outcomes.len()
    );
    for row in outcomes.outcomes.iter().take(32) {
        println!("  {}", row.render());
    }
    for (i, dot) in outcomes.dot.iter().enumerate() {
        println!("// final execution {i}\n{dot}");
    }
    ExitCode::SUCCESS
}

fn run_litmus_mode(opts: &Opts) -> ExitCode {
    use c11_operational::litmus::load_litmus_file;
    let path = std::path::Path::new(&opts.path);
    // Directory mode is the batch path: every test becomes one job in a
    // `BatchRequest`, scheduled concurrently over a session pool (with
    // result caching across duplicate shapes) and reported back in
    // file-name order. `--workers` sizes the *pool* here — the jobs
    // themselves stay on the sequential engine, since pool × per-job
    // engine workers would oversubscribe the machine for tiny tests.
    // Single-file mode has no pool, so `--workers` selects the parallel
    // engine for the one job, as in program mode.
    let (tests, pool) = if path.is_dir() {
        match c11_operational::litmus::load_litmus_dir(path) {
            Ok(t) => (t, if opts.workers > 0 { opts.workers } else { 2 }),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match load_litmus_file(path) {
            Ok(t) => (vec![t], 1),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    };
    // Dir mode defaults to the sequential engine per job even when
    // --workers sizes the pool (pool × per-job engine workers would
    // oversubscribe the machine for tiny tests) — but an *explicit*
    // --engine (or legacy --backend) choice is always honoured, and a
    // --reduction applies per job either way.
    let (mut engine, reduction) = selection_of(opts);
    if path.is_dir() && opts.engine.is_none() && opts.backend.is_none() {
        engine = Engine::Sequential;
    }
    let names: Vec<String> = tests.iter().map(|t| t.name.clone()).collect();
    let batch: BatchRequest = tests
        .into_iter()
        .map(|t| {
            CheckRequest::litmus(t)
                .engine(engine)
                .reduction(reduction)
                .store(opts.store)
                .symmetry(opts.symmetry)
        })
        .collect();
    let session = Session::new(SessionConfig::default().workers(pool));
    let out = session.run_batch(batch);
    let failed = out.stats.litmus_failed;
    let mut reports = Vec::new();
    for (result, name) in out.reports.into_iter().zip(&names) {
        match result {
            Ok(CheckReport::Litmus(r)) => reports.push(r),
            Ok(_) => unreachable!("litmus requests produce litmus reports"),
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if opts.json {
        let doc = Json::obj(vec![
            ("schema", Json::str("c11check-litmus/v1")),
            (
                "tests",
                Json::Arr(
                    reports
                        .iter()
                        .map(|r| CheckReport::Litmus(r.clone()).json_value())
                        .collect(),
                ),
            ),
            ("failed", Json::from(failed)),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "{:<14} {:>9} {:>9} {:>10} {:>6}",
            "test", "RA", "SC", "RA-states", "pass"
        );
        for r in &reports {
            println!(
                "{:<14} {:>9} {:>9} {:>10} {:>6}",
                r.name,
                if r.observed_ra { "observed" } else { "absent" },
                if r.observed_sc { "observed" } else { "absent" },
                r.ra.unique,
                if r.pass { "ok" } else { "FAIL" }
            );
        }
    }
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
