//! `c11check` — explore a program under the RAR C11 operational semantics
//! (or the SC baseline) and report reachable outcomes, axiom validity and
//! optional DOT renderings of the final executions.
//!
//! ```sh
//! c11check program.c11 [--sc] [--max-events N] [--dot] [--quiet]
//! echo 'vars x; thread t { x := 1; }' | c11check -
//! ```

use c11_operational::core::dot::to_dot;
use c11_operational::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

struct Opts {
    path: String,
    sc: bool,
    max_events: usize,
    dot: bool,
    quiet: bool,
    litmus: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        path: String::new(),
        sc: false,
        max_events: 24,
        dot: false,
        quiet: false,
        litmus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sc" => opts.sc = true,
            "--litmus" => opts.litmus = true,
            "--dot" => opts.dot = true,
            "--quiet" => opts.quiet = true,
            "--max-events" => {
                opts.max_events = args
                    .next()
                    .ok_or("--max-events needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-events: {e}"))?;
            }
            "-h" | "--help" => {
                return Err("usage: c11check <program.c11 | - | dir> [--litmus] [--sc] \
                     [--max-events N] [--dot] [--quiet]\n\
                     --litmus: treat the input as a .litmus file (or a \
                     directory of them) and check expected verdicts"
                    .to_string())
            }
            p if opts.path.is_empty() => opts.path = p.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err("no input file (use - for stdin); see --help".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.litmus {
        return run_litmus_mode(&opts);
    }
    let src = if opts.path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.path);
                return ExitCode::from(2);
            }
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };

    if opts.sc {
        let res = Explorer::new(ScModel)
            .explore(&prog, ExploreConfig::with_max_depth(10 * opts.max_events));
        report_outcomes(
            &prog,
            res.unique,
            res.truncated,
            &res.final_register_states(),
        );
        return ExitCode::SUCCESS;
    }

    let res =
        Explorer::new(RaModel).explore(&prog, ExploreConfig::with_max_events(opts.max_events));
    if !opts.quiet {
        println!(
            "explored {} configurations ({} terminated){}",
            res.unique,
            res.finals.len(),
            if res.truncated {
                " — TRUNCATED at event bound (outcomes are a lower bound)"
            } else {
                ""
            }
        );
    }
    // Theorem 4.4 as a runtime self-check.
    let mut invalid = 0;
    for cfg in &res.finals {
        if !is_valid(&cfg.mem) {
            invalid += 1;
        }
    }
    if invalid > 0 {
        eprintln!("INTERNAL ERROR: {invalid} invalid final states (soundness bug)");
        return ExitCode::from(3);
    }
    report_outcomes(
        &prog,
        res.unique,
        res.truncated,
        &res.final_register_states(),
    );
    if opts.dot {
        for (i, cfg) in res.finals.iter().enumerate().take(4) {
            println!(
                "// final execution {i}\n{}",
                to_dot(&cfg.mem, &prog.var_names)
            );
        }
    }
    ExitCode::SUCCESS
}

fn run_litmus_mode(opts: &Opts) -> ExitCode {
    use c11_operational::litmus::{load_litmus_dir, load_litmus_file, run_test};
    let path = std::path::Path::new(&opts.path);
    let tests = if path.is_dir() {
        match load_litmus_dir(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match load_litmus_file(path) {
            Ok(t) => vec![t],
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    };
    let mut failed = 0;
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>6}",
        "test", "RA", "SC", "RA-states", "pass"
    );
    for t in &tests {
        let r = run_test(t);
        println!(
            "{:<14} {:>9} {:>9} {:>10} {:>6}",
            r.name,
            if r.observed_ra { "observed" } else { "absent" },
            if r.observed_sc { "observed" } else { "absent" },
            r.states_ra,
            if r.pass { "ok" } else { "FAIL" }
        );
        if !r.pass {
            failed += 1;
        }
    }
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report_outcomes(
    prog: &Prog,
    states: usize,
    truncated: bool,
    snaps: &[c11_operational::explore::RegSnapshot],
) {
    println!("states: {states}   truncated: {truncated}");
    println!("distinct terminated register outcomes: {}", snaps.len());
    for snap in snaps.iter().take(32) {
        let mut parts = Vec::new();
        for t in 1..=prog.num_threads() as u8 {
            for r in 0..4u8 {
                if let Some(v) = snap.get(ThreadId(t), RegId(r)) {
                    if v != 0 {
                        parts.push(format!("t{t}.r{r}={v}"));
                    }
                }
            }
        }
        println!(
            "  {{ {} }}",
            if parts.is_empty() {
                "all registers 0".to_string()
            } else {
                parts.join(", ")
            }
        );
    }
}
