//! Property tests for the incremental derived-relation maintenance: after
//! any sequence of transition-shaped mutations (`append_event`, `rf_add`,
//! `mo_insert_after`) performed with *warm* caches, the incrementally
//! updated `hb` / `eco` / `eco? ; hb?` must equal a from-scratch
//! recomputation on the same `(events, sb, rf, mo)`.

use c11_core::state::C11State;
use c11_core::Event;
use c11_lang::{Action, ThreadId, VarId};
use proptest::prelude::*;

/// One transition-shaped mutation. The `pick` fields select the observed
/// write among the variable's writes (modulo the current count), mirroring
/// how the RA rules choose an insertion/read point.
#[derive(Clone, Debug)]
enum Op {
    Read {
        tid: u8,
        var: u8,
        pick: u8,
        acquire: bool,
    },
    Write {
        tid: u8,
        var: u8,
        pick: u8,
        release: bool,
    },
    Update {
        tid: u8,
        var: u8,
        pick: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..4, 0u8..2, any::<u8>(), any::<bool>()).prop_map(|(tid, var, pick, acquire)| {
            Op::Read {
                tid,
                var,
                pick,
                acquire,
            }
        }),
        (1u8..4, 0u8..2, any::<u8>(), any::<bool>()).prop_map(|(tid, var, pick, release)| {
            Op::Write {
                tid,
                var,
                pick,
                release,
            }
        }),
        (1u8..4, 0u8..2, any::<u8>()).prop_map(|(tid, var, pick)| Op::Update { tid, var, pick }),
    ]
}

/// The write of `var` selected by `pick` (inits guarantee at least one).
fn pick_write(s: &C11State, var: VarId, pick: u8) -> usize {
    let ws: Vec<usize> = s.writes_to(var).collect();
    ws[pick as usize % ws.len()]
}

/// From-scratch twin: same raw relations, cold caches.
fn recomputed(s: &C11State) -> C11State {
    C11State::from_parts(
        s.events().to_vec(),
        s.sb().clone(),
        s.rf().clone(),
        s.mo().clone(),
    )
}

proptest! {
    #[test]
    fn incremental_derived_relations_match_recomputation(ops in prop::collection::vec(arb_op(), 1..12)) {
        let mut s = C11State::initial(&[0, 0]);
        for op in ops {
            // Warm the caches so the mutations exercise the incremental
            // paths rather than lazy recomputation.
            s.hb();
            s.eco();
            s.eco_hb_reach();
            match op {
                Op::Read { tid, var, pick, acquire } => {
                    let x = VarId(var);
                    let w = pick_write(&s, x, pick);
                    let val = s.event(w).wrval().unwrap();
                    let (mut next, e) = s.append_event(Event::new(
                        ThreadId(tid),
                        Action::Rd { var: x, val, acquire },
                    ));
                    next.rf_add(w, e);
                    s = next;
                }
                Op::Write { tid, var, pick, release } => {
                    let x = VarId(var);
                    let w = pick_write(&s, x, pick);
                    let (mut next, e) = s.append_event(Event::new(
                        ThreadId(tid),
                        Action::Wr { var: x, val: 7, release },
                    ));
                    next.mo_insert_after(w, e);
                    s = next;
                }
                Op::Update { tid, var, pick } => {
                    let x = VarId(var);
                    let w = pick_write(&s, x, pick);
                    let old = s.event(w).wrval().unwrap();
                    let (mut next, e) = s.append_event(Event::new(
                        ThreadId(tid),
                        Action::Upd { var: x, old, new: 9 },
                    ));
                    next.rf_add(w, e);
                    next.mo_insert_after(w, e);
                    s = next;
                }
            }
            let fresh = recomputed(&s);
            prop_assert_eq!(s.hb(), fresh.hb(), "hb diverged");
            prop_assert_eq!(s.eco(), fresh.eco(), "eco diverged");
            prop_assert_eq!(s.eco_hb_reach(), fresh.eco_hb_reach(), "reach diverged");
            // The canonical fingerprint agrees with the materialised
            // canonical state on equality.
            prop_assert_eq!(s.fingerprint(), fresh.fingerprint());
        }
    }

    #[test]
    fn fingerprint_agrees_with_canonical_state(ops in prop::collection::vec(arb_op(), 1..8)) {
        // Build two states applying the same per-thread programs in
        // different global interleavings: equal canonical states must
        // yield equal fingerprints.
        let build = |order: &[Op]| {
            let mut s = C11State::initial(&[0, 0]);
            for op in order {
                if let Op::Write { tid, var, release, .. } = *op {
                    let x = VarId(var);
                    let w = s.last(x).unwrap();
                    let (mut next, e) = s.append_event(Event::new(
                        ThreadId(tid),
                        Action::Wr { var: x, val: 7, release },
                    ));
                    next.mo_insert_after(w, e);
                    s = next;
                }
            }
            s
        };
        let writes: Vec<Op> = ops.into_iter().filter(|o| matches!(o, Op::Write { .. })).collect();
        // Stable-partition by thread: a different interleaving of the same
        // per-thread sequences.
        let mut reordered: Vec<Op> = Vec::new();
        for t in 1u8..4 {
            reordered.extend(
                writes
                    .iter()
                    .filter(|o| matches!(o, Op::Write { tid, .. } if *tid == t))
                    .cloned(),
            );
        }
        let a = build(&writes);
        let b = build(&reordered);
        prop_assert_eq!(a.canonical() == b.canonical(), a.fingerprint() == b.fingerprint());
    }
}
