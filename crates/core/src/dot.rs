//! Graphviz (DOT) export of C11 states, rendering executions the way the
//! paper's figures do: events as nodes, `sb`/`rf`/`mo` (and derived `sw`)
//! as labelled edges, one cluster per thread.

use crate::state::C11State;
use c11_lang::VarId;
use std::fmt::Write as _;

/// Renders the state as a DOT digraph. `var_names` maps `VarId`s to
/// names; unknown ids render as `v<N>`.
pub fn to_dot(state: &C11State, var_names: &[String]) -> String {
    let name = |v: VarId| -> String {
        var_names
            .get(v.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.0))
    };
    let mut out = String::new();
    let _ = writeln!(out, "digraph c11 {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");

    // Group events by thread into clusters.
    let mut tids: Vec<_> = state.events().iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for t in tids {
        let _ = writeln!(out, "  subgraph cluster_t{} {{", t.0);
        let label = if t.is_init() {
            "init".to_string()
        } else {
            format!("thread {}", t.0)
        };
        let _ = writeln!(out, "    label=\"{label}\"; style=dashed;");
        for e in state.ids() {
            let ev = state.event(e);
            if ev.tid != t {
                continue;
            }
            let act =
                format!("{:?}", ev.action).replace(&format!("{:?}", ev.var()), &name(ev.var()));
            let _ = writeln!(out, "    e{e} [label=\"e{e}: {act}\"];");
        }
        let _ = writeln!(out, "  }}");
    }

    // sb as thin edges between *adjacent* same-thread events (transitive
    // reduction keeps the picture readable), init edges elided.
    for (a, b) in state.sb().pairs() {
        if state.event(a).is_init() {
            continue;
        }
        let between_exists = state
            .ids()
            .any(|c| c != a && c != b && state.sb().contains(a, c) && state.sb().contains(c, b));
        if !between_exists {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"sb\", color=gray];");
        }
    }
    for (w, r) in state.rf().pairs() {
        let _ = writeln!(out, "  e{w} -> e{r} [label=\"rf\", color=forestgreen];");
    }
    // mo: transitive reduction per variable.
    for (a, b) in state.mo().pairs() {
        let between = state
            .ids()
            .any(|c| c != a && c != b && state.mo().contains(a, c) && state.mo().contains(c, b));
        if !between {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"mo\", color=crimson];");
        }
    }
    for (w, r) in state.sw().pairs() {
        let _ = writeln!(
            out,
            "  e{w} -> e{r} [label=\"sw\", color=blue, style=dashed];"
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples::{example_3_2, example_var_names};

    #[test]
    fn dot_contains_all_edge_kinds() {
        let (s, _) = example_3_2();
        let dot = to_dot(&s, &example_var_names());
        assert!(dot.starts_with("digraph c11 {"));
        assert!(dot.contains("label=\"rf\""));
        assert!(dot.contains("label=\"mo\""));
        assert!(dot.contains("label=\"sw\""));
        assert!(dot.contains("cluster_t0"));
        assert!(dot.contains("cluster_t4"));
        // variable names substituted into actions
        assert!(dot.contains("wr(x,2)") || dot.contains("wrR(x,2)"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_mo_is_transitively_reduced() {
        let (s, _) = example_3_2();
        let dot = to_dot(&s, &example_var_names());
        // x's mo chain is init → wrR2 → upd1; the shortcut init → upd1
        // must not be drawn. Count "mo" edges out of e0 (init x): 1.
        let e0_mo = dot
            .lines()
            .filter(|l| l.trim_start().starts_with("e0 ->") && l.contains("\"mo\""))
            .count();
        assert_eq!(e0_mo, 1);
    }
}
