//! Per-thread observability (paper §3.2): encountered, observable and
//! covered writes.
//!
//! These three sets drive every rule of the event semantics:
//!
//! * `EW_σ(t)` — writes thread `t` is (directly or indirectly) aware of:
//!   those `eco? ; hb?`-before one of `t`'s events.
//! * `OW_σ(t)` — writes `t` may still observe in its next read: writes not
//!   mo-superseded by an encountered write.
//! * `CW_σ` — covered writes: those read by an update, into which no new
//!   write may be mo-inserted (guaranteeing RMW atomicity).

use crate::state::C11State;
use c11_lang::ThreadId;
use c11_relations::BitSet;

/// The encountered writes `EW_σ(t)`:
/// `{ w ∈ Wr ∩ D | ∃e ∈ D. tid(e) = t ∧ (w, e) ∈ eco? ; hb? }`.
///
/// Empty until the thread executes its first action; from then on it
/// includes every initialising write (which is `sb`- hence `hb`-prior to
/// all of the thread's events).
pub fn encountered_writes(state: &C11State, t: ThreadId) -> BitSet {
    let mut thread_events = BitSet::with_capacity(state.len());
    for e in state.thread_events(t) {
        thread_events.insert(e);
    }
    let mut out = BitSet::with_capacity(state.len());
    if thread_events.is_empty() {
        return out;
    }
    let reach = state.eco_hb_reach();
    for w in state.writes().iter() {
        // `(w, e) ∈ eco? ; hb?` for some event `e` of `t`: one
        // word-parallel row intersection instead of per-event lookups.
        if !reach.row(w).is_disjoint(&thread_events) {
            out.insert(w);
        }
    }
    out
}

/// The observable writes `OW_σ(t)`:
/// `{ w ∈ Wr ∩ D | ∀w' ∈ EW_σ(t). (w, w') ∉ mo }`.
///
/// A write is observable while the thread has not encountered a write that
/// mo-supersedes it. Note: if `EW_σ(t) = ∅` (thread yet to act), *every*
/// write is observable.
pub fn observable_writes(state: &C11State, t: ThreadId) -> BitSet {
    let ew = encountered_writes(state, t);
    let mut out = BitSet::with_capacity(state.len());
    for w in state.writes().iter() {
        if !state.mo().row(w).iter().any(|w2| ew.contains(w2)) {
            out.insert(w);
        }
    }
    out
}

/// ABLATION (experiment E15): encountered writes with the `eco?` component
/// dropped — only `hb?` reaches count. The paper's definition threads
/// coherence information through `eco`; without it, stale writes remain
/// "unencountered" and the semantics admits axiom-violating states. Not
/// part of the paper's model; exists to measure how load-bearing `eco` is.
pub fn encountered_writes_hb_only(state: &C11State, t: ThreadId) -> BitSet {
    let mut thread_events = BitSet::with_capacity(state.len());
    for e in state.thread_events(t) {
        thread_events.insert(e);
    }
    let mut out = BitSet::with_capacity(state.len());
    if thread_events.is_empty() {
        return out;
    }
    let hb_q = state.hb().reflexive_closure();
    for w in state.writes().iter() {
        if !hb_q.row(w).is_disjoint(&thread_events) {
            out.insert(w);
        }
    }
    out
}

/// ABLATION: observable writes derived from [`encountered_writes_hb_only`].
pub fn observable_writes_hb_only(state: &C11State, t: ThreadId) -> BitSet {
    let ew = encountered_writes_hb_only(state, t);
    let mut out = BitSet::with_capacity(state.len());
    for w in state.writes().iter() {
        if !state.mo().row(w).iter().any(|w2| ew.contains(w2)) {
            out.insert(w);
        }
    }
    out
}

/// The covered writes `CW_σ = { w ∈ Wr ∩ D | ∃u ∈ U. (w, u) ∈ rf }`.
pub fn covered_writes(state: &C11State) -> BitSet {
    let mut out = BitSet::with_capacity(state.len());
    for (w, r) in state.rf().pairs() {
        if state.event(r).is_update() {
            out.insert(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId};
    use c11_lang::{Action, VarId};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const Z: VarId = VarId(2);

    fn wr(var: VarId, val: u32, release: bool) -> Action {
        Action::Wr { var, val, release }
    }

    fn rd(var: VarId, val: u32, acquire: bool) -> Action {
        Action::Rd { var, val, acquire }
    }

    fn upd(var: VarId, old: u32, new: u32) -> Action {
        Action::Upd { var, old, new }
    }

    /// Builds the state of Example 3.2 and returns it together with the
    /// named event ids.
    ///
    /// Events (threads 1–4, inits of x, y, z):
    /// ```text
    ///   t1: updRA₁(x,2,4)       t2: wr₂(y,1) ; wrR₂(x,2)
    ///   t3: rdA₃(x,2) ; wr₃(z,3)   t4: updRA₄(y,0,5) ; rd₄(z,3)
    /// ```
    ///
    /// Thread 2's order (`wr₂(y,1)` *before* `wrR₂(x,2)`) is forced by the
    /// paper's own `EW(3)` listing, which needs the hb-path
    /// `wr₂(y,1) →sb wrR₂(x,2) →sw rdA₃(x,2)`.
    pub(crate) fn example_3_2() -> (C11State, [EventId; 7]) {
        let s = C11State::initial(&[0, 0, 0]); // 0:x, 1:y, 2:z
        let (s, u1) = s.append_event(Event::new(ThreadId(1), upd(X, 2, 4)));
        let (s, w2y) = s.append_event(Event::new(ThreadId(2), wr(Y, 1, false)));
        let (s, w2x) = s.append_event(Event::new(ThreadId(2), wr(X, 2, true)));
        let (s, r3) = s.append_event(Event::new(ThreadId(3), rd(X, 2, true)));
        let (s, w3) = s.append_event(Event::new(ThreadId(3), wr(Z, 3, false)));
        let (s, u4) = s.append_event(Event::new(ThreadId(4), upd(Y, 0, 5)));
        let (mut s, r4) = s.append_event(Event::new(ThreadId(4), rd(Z, 3, false)));
        // rf edges from the example:
        //   wrR₂(x,2) → updRA₁(x,2,4)  (the update reads 2)
        //   wrR₂(x,2) → rdA₃(x,2)
        //   wr0(y)    → updRA₄(y,0,5)
        //   wr₃(z,3)  → rd₄(z,3)
        s.rf_mut().add(w2x, u1);
        s.rf_mut().add(w2x, r3);
        s.rf_mut().add(1, u4);
        s.rf_mut().add(w3, r4);
        // mo per variable:
        //   x: wr0x → wrR₂(x,2) → updRA₁(x,2,4)
        //   y: wr0y → updRA₄(y,0,5) → wr₂(y,1)
        //   z: wr0z → wr₃(z,3)
        s.mo_mut().add(0, w2x);
        s.mo_mut().add(0, u1);
        s.mo_mut().add(w2x, u1);
        s.mo_mut().add(1, u4);
        s.mo_mut().add(1, w2y);
        s.mo_mut().add(u4, w2y);
        s.mo_mut().add(2, w3);
        (s, [u1, w2y, w2x, r3, w3, u4, r4])
    }

    // The expectations below are computed from Definition §3.2 verbatim.
    // They agree with the paper's Example 3.4 listings except where noted:
    // the paper's printed EW(1) / OW(1) / OW(2) overlook the hb-path
    // `wr₂(y,1) →sb wrR₂(x,2) →sw updRA₁(x,2,4)` (sw because the release
    // write is read by an acquiring update), an erratum recorded in
    // EXPERIMENTS.md (E1).

    #[test]
    fn example_3_4_encountered_writes() {
        let (s, [u1, w2y, w2x, _r3, w3, u4, _r4]) = example_3_2();
        let i: Vec<EventId> = vec![0, 1, 2];
        let expect = |base: Vec<EventId>| {
            let mut v = [i.clone(), base].concat();
            v.sort_unstable();
            v
        };
        // Paper: EW(1) = I ∪ {wrR₂(x,2), updRA₁}. The literal definition
        // additionally yields wr₂(y,1) (hb: sb;sw into the update) and
        // updRA₄ (eco: mo to wr₂(y,1), then that hb) — see erratum note.
        let ew1: Vec<_> = encountered_writes(&s, ThreadId(1)).iter().collect();
        assert_eq!(ew1, expect(vec![w2y, w2x, u1, u4]));
        // EW(2) = I ∪ {wr₂(y,1), wrR₂(x,2), updRA₄(y,0,5)}   (paper ✓)
        let ew2: Vec<_> = encountered_writes(&s, ThreadId(2)).iter().collect();
        assert_eq!(ew2, expect(vec![w2y, w2x, u4]));
        // EW(3) = I ∪ {wr₂(y,1), wrR₂(x,2), wr₃(z,3), updRA₄}   (paper ✓)
        let ew3: Vec<_> = encountered_writes(&s, ThreadId(3)).iter().collect();
        assert_eq!(ew3, expect(vec![w2y, w2x, w3, u4]));
        // EW(4) = I ∪ {wr₃(z,3), updRA₄(y,0,5)}   (paper ✓)
        let ew4: Vec<_> = encountered_writes(&s, ThreadId(4)).iter().collect();
        assert_eq!(ew4, expect(vec![w3, u4]));
    }

    #[test]
    fn example_3_4_observable_writes() {
        let (s, [u1, w2y, w2x, _r3, w3, u4, _r4]) = example_3_2();
        let sorted = |mut v: Vec<EventId>| {
            v.sort_unstable();
            v
        };
        // Paper: OW(1) also lists wr0(y) and updRA₄; they drop out because
        // EW(1) contains updRA₄ / wr₂(y,1) (see erratum note above).
        let ow1: Vec<_> = observable_writes(&s, ThreadId(1)).iter().collect();
        assert_eq!(ow1, sorted(vec![2, w2y, w3, u1]));
        // Paper: OW(2) omits wrR₂(x,2); but its only mo-successor is
        // updRA₁ ∉ EW(2), so by the definition thread 2 may still read its
        // own release write (erratum note above).
        let ow2: Vec<_> = observable_writes(&s, ThreadId(2)).iter().collect();
        assert_eq!(ow2, sorted(vec![2, w2y, w2x, w3, u1]));
        // OW(3) = {wr₂(y,1), wrR₂(x,2), wr₃(z,3), updRA₁}   (paper ✓)
        let ow3: Vec<_> = observable_writes(&s, ThreadId(3)).iter().collect();
        assert_eq!(ow3, sorted(vec![w2y, w2x, w3, u1]));
        // OW(4) = {wr0x, wr₂(y,1), wrR₂(x,2), wr₃(z,3), updRA₁, updRA₄} ✓
        let ow4: Vec<_> = observable_writes(&s, ThreadId(4)).iter().collect();
        assert_eq!(ow4, sorted(vec![0, w2y, w2x, w3, u1, u4]));
    }

    #[test]
    fn example_3_4_covered_writes() {
        let (s, [_u1, _w2y, w2x, _r3, _w3, _u4, _r4]) = example_3_2();
        // CW = {wr0(y), wrR₂(x,2)} — the writes read by the two updates. ✓
        let cw: Vec<_> = covered_writes(&s).iter().collect();
        assert_eq!(cw, vec![1, w2x]);
    }

    #[test]
    fn fresh_thread_has_empty_ew_and_full_ow() {
        let (s, _) = example_3_2();
        let t9 = ThreadId(9);
        assert!(encountered_writes(&s, t9).is_empty());
        // With nothing encountered, every write is observable.
        assert_eq!(observable_writes(&s, t9), s.writes());
    }

    #[test]
    fn initial_state_observability() {
        let s = C11State::initial(&[0, 0]);
        // No thread has acted: EW empty, OW = all (init) writes.
        assert!(encountered_writes(&s, ThreadId(1)).is_empty());
        assert_eq!(observable_writes(&s, ThreadId(1)).len(), 2);
        assert!(covered_writes(&s).is_empty());
    }
}
