//! C11 states `((D, sb), rf, mo)` and their derived relations (paper §3.1).

use crate::event::{Event, EventId};
use c11_lang::{ThreadId, Val, VarId};
use c11_relations::{BitSet, Relation};
use std::cell::OnceCell;

/// Lazily computed derived relations. Cloned with the state (a clone is a
/// snapshot of the same execution, so the cache stays valid) and cleared
/// by every mutation. Excluded from equality and hashing.
#[derive(Clone, Default)]
struct Derived {
    hb: OnceCell<Relation>,
    eco: OnceCell<Relation>,
    /// `eco? ; hb?` — the reach used by encountered-writes (§3.2).
    reach: OnceCell<Relation>,
}

/// A C11 state: events with sequenced-before, reads-from and modification
/// order (Definition 3.1). Immutable-by-convention: transitions produce new
/// states. Derived relations (`hb`, `eco`, the observability reach) are
/// cached per state.
///
/// ```
/// use c11_core::state::C11State;
/// use c11_core::semantics::write_transitions;
/// use c11_core::{ThreadId, VarId};
///
/// // One shared variable initialised to 0; thread 1 writes 5.
/// let s0 = C11State::initial(&[0]);
/// let tr = &write_transitions(&s0, ThreadId(1), VarId(0), 5, false)[0];
/// assert_eq!(tr.state.last(VarId(0)), Some(tr.event));
/// assert!(tr.state.mo().contains(0, tr.event)); // init mo-before it
/// ```
#[derive(Clone)]
pub struct C11State {
    events: Vec<Event>,
    sb: Relation,
    rf: Relation,
    mo: Relation,
    derived: Derived,
}

impl PartialEq for C11State {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.sb == other.sb
            && self.rf == other.rf
            && self.mo == other.mo
    }
}

impl Eq for C11State {}

impl std::hash::Hash for C11State {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.events.hash(state);
        self.sb.hash(state);
        self.rf.hash(state);
        self.mo.hash(state);
    }
}

impl C11State {
    /// The initial state `σ₀ = ((I, ∅), ∅, ∅)` with one initialising write
    /// per variable (`inits[i]` is the initial value of `VarId(i)`).
    pub fn initial(inits: &[Val]) -> C11State {
        let events: Vec<Event> = inits
            .iter()
            .enumerate()
            .map(|(i, &v)| Event::init_write(VarId(i as u8), v))
            .collect();
        let n = events.len();
        C11State {
            events,
            sb: Relation::new(n),
            rf: Relation::new(n),
            mo: Relation::new(n),
            derived: Derived::default(),
        }
    }

    /// Builds a state directly from parts. Used by the axiomatic crate's
    /// candidate-execution enumerator; the operational semantics only goes
    /// through [`C11State::initial`] and the transition functions.
    pub fn from_parts(events: Vec<Event>, sb: Relation, rf: Relation, mo: Relation) -> C11State {
        let n = events.len();
        let mut sb = sb;
        let mut rf = rf;
        let mut mo = mo;
        sb.grow(n);
        rf.grow(n);
        mo.grow(n);
        C11State {
            events,
            sb,
            rf,
            mo,
            derived: Derived::default(),
        }
    }

    /// The event arena `D`.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the state holds no events (never the case for reachable
    /// states, which contain the initialising writes).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with id `e`.
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e]
    }

    /// Sequenced-before.
    pub fn sb(&self) -> &Relation {
        &self.sb
    }

    /// Reads-from.
    pub fn rf(&self) -> &Relation {
        &self.rf
    }

    /// Modification order.
    pub fn mo(&self) -> &Relation {
        &self.mo
    }

    /// Ids of all events, in arena order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        0..self.events.len()
    }

    /// The initialising writes `I_σ = D ∩ IWr` as a bitset.
    pub fn init_writes(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_init()))
    }

    /// All write events (updates included) as a bitset.
    pub fn writes(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_write()))
    }

    /// All read events (updates included) as a bitset.
    pub fn reads(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_read()))
    }

    /// All update events as a bitset.
    pub fn updates(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_update()))
    }

    /// Write events on variable `x` (`Wr|_x`).
    pub fn writes_to(&self, x: VarId) -> impl Iterator<Item = EventId> + '_ {
        self.ids()
            .filter(move |&e| self.events[e].is_write() && self.events[e].var() == x)
    }

    /// Events of thread `t`.
    pub fn thread_events(&self, t: ThreadId) -> impl Iterator<Item = EventId> + '_ {
        self.ids().filter(move |&e| self.events[e].tid == t)
    }

    /// The synchronises-with relation `sw = rf ∩ (WrR × RdA)`.
    pub fn sw(&self) -> Relation {
        let mut sw = Relation::new(self.len());
        for (w, r) in self.rf.pairs() {
            if self.events[w].is_release() && self.events[r].is_acquire() {
                sw.add(w, r);
            }
        }
        sw
    }

    /// Happens-before `hb = (sb ∪ sw)⁺` (cached).
    pub fn hb(&self) -> &Relation {
        self.derived
            .hb
            .get_or_init(|| self.sb.union(&self.sw()).transitive_closure())
    }

    /// From-read `fr = (rf⁻¹ ; mo) \ Id` (identity subtracted to cope with
    /// update events, which read and write the same variable).
    pub fn fr(&self) -> Relation {
        self.rf
            .inverse()
            .compose(&self.mo)
            .difference(&Relation::identity(self.len()))
    }

    /// Extended coherence order `eco = (fr ∪ mo ∪ rf)⁺` (cached).
    pub fn eco(&self) -> &Relation {
        self.derived.eco.get_or_init(|| {
            self.fr()
                .union(&self.mo)
                .union(&self.rf)
                .transitive_closure()
        })
    }

    /// The observability reach `eco? ; hb?` of §3.2 (cached): a write `w`
    /// is encountered by thread `t` iff `(w, e)` is in this relation for
    /// one of `t`'s events.
    pub fn eco_hb_reach(&self) -> &Relation {
        self.derived.reach.get_or_init(|| {
            self.eco()
                .reflexive_closure()
                .compose(&self.hb().reflexive_closure())
        })
    }

    /// Clears the derived-relation cache; every mutation must call this.
    fn invalidate(&mut self) {
        self.derived = Derived::default();
    }

    /// `σ.last(x)`: the write or update to `x` not mo-succeeded by another
    /// write to `x`. Unique and well-defined in every valid state; in a
    /// malformed state the lowest-id mo-maximal write is returned.
    pub fn last(&self, x: VarId) -> Option<EventId> {
        self.writes_to(x)
            .find(|&w| !self.mo.image(w).any(|w2| self.events[w2].var() == x))
    }

    /// Adds event `e` to the state, producing `(D, sb) + e`:
    /// `sb` gains edges from every event of `e`'s thread and of the
    /// initialising thread. Returns the new event's id. `rf` / `mo` updates
    /// are the transition rules' business (`crate::semantics`).
    pub fn append_event(&self, ev: Event) -> (C11State, EventId) {
        let mut next = self.clone();
        next.invalidate();
        let e = next.events.len();
        next.events.push(ev);
        next.sb.grow(e + 1);
        next.rf.grow(e + 1);
        next.mo.grow(e + 1);
        for e2 in 0..e {
            let t2 = next.events[e2].tid;
            if t2 == ev.tid || t2.is_init() {
                next.sb.add(e2, e);
            }
        }
        (next, e)
    }

    /// Mutable access to `rf`. Low-level: the RA transition rules and the
    /// axiomatic crate's execution builders use this; arbitrary edits can
    /// produce invalid states (which is exactly what the axiom tests want).
    pub fn rf_mut(&mut self) -> &mut Relation {
        self.invalidate();
        &mut self.rf
    }

    /// Mutable access to `mo`. See [`C11State::rf_mut`] for the caveat.
    pub fn mo_mut(&mut self) -> &mut Relation {
        self.invalidate();
        &mut self.mo
    }

    /// Inserts write `e` *directly after* write `w` in `mo` (paper
    /// `mo[w, e] = mo ∪ (mo⁺w × {e}) ∪ ({e} × mo[w])`, where
    /// `mo⁺w = {w} ∪ mo⁻¹[w]`).
    pub fn mo_insert_after(&mut self, w: EventId, e: EventId) {
        self.invalidate();
        let before: Vec<EventId> = std::iter::once(w)
            .chain(self.mo.preimage(w).collect::<Vec<_>>())
            .collect();
        let after: Vec<EventId> = self.mo.image(w).collect();
        for b in before {
            self.mo.add(b, e);
        }
        for a in after {
            self.mo.add(e, a);
        }
    }

    /// Restriction `σ|_E` of the state to an event subset, *relabelling*
    /// events compactly (used by the completeness theorem's prefix states).
    /// The kept events preserve their relative arena order.
    pub fn restrict(&self, keep: &BitSet) -> C11State {
        let kept: Vec<EventId> = self.ids().filter(|e| keep.contains(*e)).collect();
        let mut renumber = vec![usize::MAX; self.len()];
        for (new, &old) in kept.iter().enumerate() {
            renumber[old] = new;
        }
        let events = kept.iter().map(|&e| self.events[e]).collect();
        let map_rel = |r: &Relation| {
            let mut out = Relation::new(kept.len());
            for (a, b) in r.pairs() {
                if keep.contains(a) && keep.contains(b) {
                    out.add(renumber[a], renumber[b]);
                }
            }
            out
        };
        C11State {
            events,
            sb: map_rel(&self.sb),
            rf: map_rel(&self.rf),
            mo: map_rel(&self.mo),
            derived: Derived::default(),
        }
    }

    /// A canonical fingerprint of the state, invariant under the order in
    /// which *independent* events entered the arena: events are renumbered
    /// by `(tid, position within the thread)` — well-defined because
    /// `sb|_t` is total and the arena preserves per-thread order — and the
    /// relations are permuted accordingly. Two states reached by different
    /// interleavings of the same execution share a fingerprint.
    pub fn canonical(&self) -> CanonicalState {
        let mut order: Vec<EventId> = self.ids().collect();
        order.sort_by_key(|&e| (self.events[e].tid, e));
        // perm[old] = new
        let mut perm = vec![0usize; self.len()];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new;
        }
        let events: Vec<Event> = order.iter().map(|&e| self.events[e]).collect();
        let edges = |r: &Relation| -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = r
                .pairs()
                .map(|(a, b)| (perm[a] as u32, perm[b] as u32))
                .collect();
            v.sort_unstable();
            v
        };
        CanonicalState {
            events,
            sb: edges(&self.sb),
            rf: edges(&self.rf),
            mo: edges(&self.mo),
        }
    }

    /// Pretty, multi-line rendering with variable names.
    pub fn render(&self, var_names: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name = |v: VarId| -> &str {
            var_names
                .get(v.0 as usize)
                .map(|s| s.as_str())
                .unwrap_or("?")
        };
        for (i, ev) in self.events.iter().enumerate() {
            let _ = writeln!(
                out,
                "  e{i}: {:?} {:?} on {}",
                ev.tid,
                ev.action,
                name(ev.var())
            );
        }
        let _ = writeln!(out, "  rf: {:?}", self.rf.pairs().collect::<Vec<_>>());
        let _ = writeln!(out, "  mo: {:?}", self.mo.pairs().collect::<Vec<_>>());
        out
    }
}

impl std::fmt::Debug for C11State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("C11State")
            .field("events", &self.events)
            .field("sb", &self.sb)
            .field("rf", &self.rf)
            .field("mo", &self.mo)
            .finish()
    }
}

/// Canonical, interleaving-insensitive form of a state. See
/// [`C11State::canonical`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalState {
    /// Events sorted by `(tid, per-thread order)`.
    pub events: Vec<Event>,
    /// Renumbered, sorted edge lists.
    pub sb: Vec<(u32, u32)>,
    /// Renumbered, sorted edge lists.
    pub rf: Vec<(u32, u32)>,
    /// Renumbered, sorted edge lists.
    pub mo: Vec<(u32, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_lang::Action;

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);

    fn wr(var: VarId, val: Val) -> Action {
        Action::Wr {
            var,
            val,
            release: false,
        }
    }

    fn rd(var: VarId, val: Val) -> Action {
        Action::Rd {
            var,
            val,
            acquire: false,
        }
    }

    #[test]
    fn initial_state_has_one_init_write_per_var() {
        let s = C11State::initial(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert!(s.events().iter().all(Event::is_init));
        assert_eq!(s.event(0).var(), X);
        assert_eq!(s.event(1).wrval(), Some(9));
        assert!(s.sb().is_empty());
        // Initialising writes are unordered amongst themselves (Ex. 3.2).
        assert_eq!(s.last(X), Some(0));
        assert_eq!(s.last(Y), Some(1));
    }

    #[test]
    fn append_orders_after_init_and_own_thread() {
        let s = C11State::initial(&[0]);
        let (s1, e1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (s2, e2) = s1.append_event(Event::new(ThreadId(2), wr(X, 2)));
        let (s3, e3) = s2.append_event(Event::new(ThreadId(1), rd(X, 1)));
        // init → everything
        assert!(s3.sb().contains(0, e1) && s3.sb().contains(0, e2) && s3.sb().contains(0, e3));
        // same-thread order
        assert!(s3.sb().contains(e1, e3));
        // no cross-thread sb
        assert!(!s3.sb().contains(e1, e2) && !s3.sb().contains(e2, e3));
    }

    #[test]
    fn sw_requires_release_and_acquire() {
        let s = C11State::initial(&[0]);
        let (s, w_rel) = s.append_event(Event::new(
            ThreadId(1),
            Action::Wr {
                var: X,
                val: 1,
                release: true,
            },
        ));
        let (s, r_rlx) = s.append_event(Event::new(ThreadId(2), rd(X, 1)));
        let (mut s, r_acq) = s.append_event(Event::new(
            ThreadId(3),
            Action::Rd {
                var: X,
                val: 1,
                acquire: true,
            },
        ));
        s.rf_mut().add(w_rel, r_rlx);
        s.rf_mut().add(w_rel, r_acq);
        let sw = s.sw();
        assert!(!sw.contains(w_rel, r_rlx)); // relaxed read: no sw
        assert!(sw.contains(w_rel, r_acq)); // release → acquire: sw
                                            // hb includes the sw edge transitively with sb.
        assert!(s.hb().contains(0, r_acq));
        assert!(s.hb().contains(w_rel, r_acq));
    }

    #[test]
    fn fr_subtracts_identity_for_updates() {
        // u reads from w0 and is mo-after w0: rf⁻¹;mo contains (u, u).
        let s = C11State::initial(&[0]);
        let (mut s, u) = s.append_event(Event::new(
            ThreadId(1),
            Action::Upd {
                var: X,
                old: 0,
                new: 5,
            },
        ));
        s.rf_mut().add(0, u);
        s.mo_mut().add(0, u);
        let fr = s.fr();
        assert!(!fr.contains(u, u), "fr must be irreflexive for updates");
    }

    #[test]
    fn eco_shape_of_example_3_3() {
        // w1 →mo w2, reads r1 r1' of w1: fr edges to w2, eco transitive.
        let s = C11State::initial(&[0]); // event 0 = w1 (init write of x)
        let (s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        let (s, r1) = s.append_event(Event::new(ThreadId(2), rd(X, 0)));
        let (mut s, r1b) = s.append_event(Event::new(ThreadId(3), rd(X, 0)));
        s.mo_mut().add(0, w2);
        s.rf_mut().add(0, r1);
        s.rf_mut().add(0, r1b);
        let eco = s.eco();
        // rf, mo, and fr = reads-before edges all present:
        assert!(eco.contains(0, r1) && eco.contains(0, w2));
        assert!(eco.contains(r1, w2) && eco.contains(r1b, w2), "fr edges");
        // reads of the same write are not eco-related to each other
        assert!(!eco.contains(r1, r1b) && !eco.contains(r1b, r1));
    }

    #[test]
    fn mo_insert_after_places_event_in_the_middle() {
        // mo: w0 → w1 → w2; insert e after w1 ⇒ w0,w1 before e; e before w2.
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        let (mut s, e) = s.append_event(Event::new(ThreadId(2), wr(X, 9)));
        s.mo_mut().add(0, w1);
        s.mo_mut().add(0, w2);
        s.mo_mut().add(w1, w2);
        s.mo_insert_after(w1, e);
        assert!(s.mo().contains(0, e) && s.mo().contains(w1, e));
        assert!(s.mo().contains(e, w2));
        assert!(!s.mo().contains(w2, e));
        // mo|x stays a strict total order on writes to x.
        assert!(s.mo().is_strict_total_order_on(&s.writes()));
    }

    #[test]
    fn last_is_mo_maximal() {
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (mut s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        s.mo_mut().add(0, w1);
        s.mo_mut().add(0, w2);
        s.mo_mut().add(w1, w2);
        assert_eq!(s.last(X), Some(w2));
    }

    #[test]
    fn restrict_relabels_compactly() {
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (mut s, r) = s.append_event(Event::new(ThreadId(2), rd(X, 1)));
        s.rf_mut().add(w1, r);
        s.mo_mut().add(0, w1);
        // Keep init + w1 only.
        let keep = BitSet::from_iter([0, w1]);
        let small = s.restrict(&keep);
        assert_eq!(small.len(), 2);
        assert!(small.mo().contains(0, 1));
        assert!(small.rf().is_empty());
    }

    #[test]
    fn canonical_is_interleaving_insensitive() {
        // The same two independent writes (t1: x:=1, t2: y:=2), appended in
        // both interleavings, produce the same canonical form.
        let build = |t1_first: bool| {
            let s = C11State::initial(&[0, 0]);
            let e1 = Event::new(ThreadId(1), wr(X, 1));
            let e2 = Event::new(ThreadId(2), wr(Y, 2));
            let (first, second) = if t1_first { (e1, e2) } else { (e2, e1) };
            let (s, a) = s.append_event(first);
            let (mut s, b) = s.append_event(second);
            let (x_w, y_w) = if t1_first { (a, b) } else { (b, a) };
            s.mo_mut().add(0, x_w);
            s.mo_mut().add(1, y_w);
            s.canonical()
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn canonical_distinguishes_different_rf() {
        let build = |val: Val| {
            let s = C11State::initial(&[0]);
            let (s, w) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
            let (mut s, r) = s.append_event(Event::new(ThreadId(2), rd(X, val)));
            if val == 1 {
                s.rf_mut().add(w, r);
            } else {
                s.rf_mut().add(0, r);
            }
            s.mo_mut().add(0, w);
            s.canonical()
        };
        assert_ne!(build(0), build(1));
    }
}
