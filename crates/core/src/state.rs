//! C11 states `((D, sb), rf, mo)` and their derived relations (paper §3.1).

use crate::event::{Event, EventId};
use crate::fingerprint::{combine128, SetFold};
use c11_lang::{ThreadId, Val, VarId};
use c11_relations::{BitSet, Relation};
use std::sync::OnceLock;

/// Lazily computed derived relations. Cloned with the state (a clone is a
/// snapshot of the same execution, so the cache stays valid). The RA
/// transition rules *update* populated caches incrementally (every edge
/// they add is incident to the freshly appended event, so the closures can
/// absorb the delta in O(n²/64) — see [`Relation::absorb_star`]); only the
/// arbitrary-mutation escape hatches ([`C11State::rf_mut`] /
/// [`C11State::mo_mut`]) clear them. Excluded from equality and hashing.
///
/// The cells are [`OnceLock`]s, not `OnceCell`s, so a state behind an
/// `Arc` can be shared across exploration workers (`C11State: Sync`);
/// concurrent first computations race benignly — both compute the same
/// value and one `set` wins.
#[derive(Clone, Default)]
struct Derived {
    hb: OnceLock<Relation>,
    eco: OnceLock<Relation>,
    /// `eco? ; hb?` — the reach used by encountered-writes (§3.2).
    reach: OnceLock<Relation>,
    /// The 128-bit canonical fingerprint ([`C11State::fingerprint`]).
    /// τ-steps share the parent's memory state, so caching it here turns
    /// the per-successor dedup hash of every silent step into a load.
    fp: OnceLock<u128>,
}

/// A C11 state: events with sequenced-before, reads-from and modification
/// order (Definition 3.1). Immutable-by-convention: transitions produce new
/// states. Derived relations (`hb`, `eco`, the observability reach) are
/// cached per state.
///
/// ```
/// use c11_core::state::C11State;
/// use c11_core::semantics::write_transitions;
/// use c11_core::{ThreadId, VarId};
///
/// // One shared variable initialised to 0; thread 1 writes 5.
/// let s0 = C11State::initial(&[0]);
/// let tr = &write_transitions(&s0, ThreadId(1), VarId(0), 5, false)[0];
/// assert_eq!(tr.state.last(VarId(0)), Some(tr.event));
/// assert!(tr.state.mo().contains(0, tr.event)); // init mo-before it
/// ```
#[derive(Clone)]
pub struct C11State {
    events: Vec<Event>,
    sb: Relation,
    rf: Relation,
    mo: Relation,
    /// Per-variable write index (`writes_by_var[x]` = ids of writes to
    /// `VarId(x)`, in arena order): lets `last`, `writes_to` and the
    /// observability queries avoid scanning the whole arena. Derived from
    /// `events`, so excluded from equality/hashing.
    writes_by_var: Vec<Vec<EventId>>,
    /// Per-thread event index (same conventions).
    events_by_tid: Vec<Vec<EventId>>,
    derived: Derived,
}

impl PartialEq for C11State {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.sb == other.sb
            && self.rf == other.rf
            && self.mo == other.mo
    }
}

impl Eq for C11State {}

impl std::hash::Hash for C11State {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.events.hash(state);
        self.sb.hash(state);
        self.rf.hash(state);
        self.mo.hash(state);
    }
}

impl C11State {
    /// The initial state `σ₀ = ((I, ∅), ∅, ∅)` with one initialising write
    /// per variable (`inits[i]` is the initial value of `VarId(i)`).
    pub fn initial(inits: &[Val]) -> C11State {
        let events: Vec<Event> = inits
            .iter()
            .enumerate()
            .map(|(i, &v)| Event::init_write(VarId(i as u8), v))
            .collect();
        let n = events.len();
        let mut s = C11State {
            events,
            sb: Relation::new(n),
            rf: Relation::new(n),
            mo: Relation::new(n),
            writes_by_var: Vec::new(),
            events_by_tid: Vec::new(),
            derived: Derived::default(),
        };
        s.rebuild_index();
        s
    }

    /// Builds a state directly from parts. Used by the axiomatic crate's
    /// candidate-execution enumerator; the operational semantics only goes
    /// through [`C11State::initial`] and the transition functions.
    pub fn from_parts(events: Vec<Event>, sb: Relation, rf: Relation, mo: Relation) -> C11State {
        let n = events.len();
        let mut sb = sb;
        let mut rf = rf;
        let mut mo = mo;
        sb.grow(n);
        rf.grow(n);
        mo.grow(n);
        let mut s = C11State {
            events,
            sb,
            rf,
            mo,
            writes_by_var: Vec::new(),
            events_by_tid: Vec::new(),
            derived: Derived::default(),
        };
        s.rebuild_index();
        s
    }

    /// Re-derives the per-variable and per-thread indexes from `events`.
    fn rebuild_index(&mut self) {
        self.writes_by_var.clear();
        self.events_by_tid.clear();
        for e in 0..self.events.len() {
            self.index_event(e);
        }
    }

    /// Registers event `e` (already in the arena) in the indexes.
    fn index_event(&mut self, e: EventId) {
        let ev = self.events[e];
        let t = ev.tid.0 as usize;
        if self.events_by_tid.len() <= t {
            self.events_by_tid.resize(t + 1, Vec::new());
        }
        self.events_by_tid[t].push(e);
        if ev.is_write() {
            let x = ev.var().0 as usize;
            if self.writes_by_var.len() <= x {
                self.writes_by_var.resize(x + 1, Vec::new());
            }
            self.writes_by_var[x].push(e);
        }
    }

    /// The event arena `D`.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the state holds no events (never the case for reachable
    /// states, which contain the initialising writes).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with id `e`.
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e]
    }

    /// Sequenced-before.
    pub fn sb(&self) -> &Relation {
        &self.sb
    }

    /// Reads-from.
    pub fn rf(&self) -> &Relation {
        &self.rf
    }

    /// Modification order.
    pub fn mo(&self) -> &Relation {
        &self.mo
    }

    /// Ids of all events, in arena order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        0..self.events.len()
    }

    /// The initialising writes `I_σ = D ∩ IWr` as a bitset.
    pub fn init_writes(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_init()))
    }

    /// All write events (updates included) as a bitset.
    pub fn writes(&self) -> BitSet {
        let mut out = BitSet::with_capacity(self.len());
        for &w in self.writes_by_var.iter().flatten() {
            out.insert(w);
        }
        out
    }

    /// All read events (updates included) as a bitset.
    pub fn reads(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_read()))
    }

    /// All update events as a bitset.
    pub fn updates(&self) -> BitSet {
        BitSet::from_iter(self.ids().filter(|&e| self.events[e].is_update()))
    }

    /// Write events on variable `x` (`Wr|_x`), in arena order — served by
    /// the per-variable index, no arena scan.
    pub fn writes_to(&self, x: VarId) -> impl Iterator<Item = EventId> + '_ {
        self.writes_by_var
            .get(x.0 as usize)
            .into_iter()
            .flatten()
            .copied()
    }

    /// Events of thread `t`, in arena order (index-served).
    pub fn thread_events(&self, t: ThreadId) -> impl Iterator<Item = EventId> + '_ {
        self.events_by_tid
            .get(t.0 as usize)
            .into_iter()
            .flatten()
            .copied()
    }

    /// The synchronises-with relation `sw = rf ∩ (WrR × RdA)`.
    pub fn sw(&self) -> Relation {
        let mut sw = Relation::new(self.len());
        for (w, r) in self.rf.pairs() {
            if self.events[w].is_release() && self.events[r].is_acquire() {
                sw.add(w, r);
            }
        }
        sw
    }

    /// Happens-before `hb = (sb ∪ sw)⁺` (cached).
    pub fn hb(&self) -> &Relation {
        self.derived
            .hb
            .get_or_init(|| self.sb.union(&self.sw()).transitive_closure())
    }

    /// From-read `fr = (rf⁻¹ ; mo) \ Id` (identity subtracted to cope with
    /// update events, which read and write the same variable).
    pub fn fr(&self) -> Relation {
        self.rf
            .inverse()
            .compose(&self.mo)
            .difference(&Relation::identity(self.len()))
    }

    /// Extended coherence order `eco = (fr ∪ mo ∪ rf)⁺` (cached).
    pub fn eco(&self) -> &Relation {
        self.derived.eco.get_or_init(|| {
            self.fr()
                .union(&self.mo)
                .union(&self.rf)
                .transitive_closure()
        })
    }

    /// The observability reach `eco? ; hb?` of §3.2 (cached): a write `w`
    /// is encountered by thread `t` iff `(w, e)` is in this relation for
    /// one of `t`'s events.
    pub fn eco_hb_reach(&self) -> &Relation {
        self.derived.reach.get_or_init(|| {
            self.eco()
                .reflexive_closure()
                .compose(&self.hb().reflexive_closure())
        })
    }

    /// Clears the derived-relation cache. Called by the arbitrary-mutation
    /// escape hatches; the RA transition paths update the caches in place
    /// through [`C11State::derived_update`] instead.
    fn invalidate(&mut self) {
        self.derived = Derived::default();
    }

    /// Incrementally updates whichever derived-relation caches are
    /// populated after new edges *incident to event `v`* entered the
    /// underlying relations. `eco_new` / `hb_new` are the direct new
    /// `(preds × {v}, {v} × succs)` edge stars of the respective derived
    /// relation (`None` = that relation is unchanged). Populated caches
    /// absorb the star in O(n²/64); absent caches stay absent and are
    /// recomputed from scratch on next access. The `reach` cache is
    /// re-derived from the delta rectangles, or dropped when a dependency
    /// changed without a live cache to compute the delta from.
    fn derived_update(
        &mut self,
        v: EventId,
        eco_new: Option<(BitSet, BitSet)>,
        hb_new: Option<(BitSet, BitSet)>,
    ) {
        // Any change to the underlying relations invalidates the cached
        // canonical fingerprint (every caller mutated `self` just before).
        self.derived.fp.take();
        let n = self.len();
        let hb_changed = hb_new.is_some();
        let eco_changed = eco_new.is_some();
        let hb_rect = hb_new.and_then(|(p, s)| {
            self.derived.hb.get_mut().map(|hb| {
                hb.grow(n);
                hb.absorb_star(v, &p, &s)
            })
        });
        let eco_rect = eco_new.and_then(|(p, s)| {
            self.derived.eco.get_mut().map(|eco| {
                eco.grow(n);
                eco.absorb_star(v, &p, &s)
            })
        });
        // reach = eco? ; hb? — propagating the deltas needs both
        // dependency caches live and every change's rectangle known.
        let delta_lost = (hb_changed && hb_rect.is_none()) || (eco_changed && eco_rect.is_none());
        let deps_live = self.derived.hb.get().is_some() && self.derived.eco.get().is_some();
        if delta_lost || !deps_live {
            self.derived.reach.take();
            return;
        }
        let Some(mut reach) = self.derived.reach.take() else {
            return;
        };
        reach.grow(n);
        let hb = self.derived.hb.get().expect("checked live");
        let eco = self.derived.eco.get().expect("checked live");
        // Every new eco pair lies in (pe ∪ {v}) × (se ∪ {v}); compose it
        // with hb? on the right: each new source reaches hb?[se ∪ {v}].
        if let Some((pe, se)) = eco_rect {
            let mut se_plus = se;
            se_plus.insert(v);
            let mut b1 = hb.image_set(&se_plus);
            b1.union_with(&se_plus);
            let mut pe_plus = pe;
            pe_plus.insert(v);
            for p in pe_plus.iter() {
                reach.union_into_row(p, &b1);
            }
        }
        // Every new hb pair lies in (ph ∪ {v}) × (sh ∪ {v}); compose with
        // eco? on the left: every eco?-predecessor of a new source reaches
        // the new targets.
        if let Some((ph, sh)) = hb_rect {
            let mut ph_plus = ph;
            ph_plus.insert(v);
            let mut a2 = eco.preimage_set(&ph_plus);
            a2.union_with(&ph_plus);
            let mut sh_plus = sh;
            sh_plus.insert(v);
            for x in a2.iter() {
                reach.union_into_row(x, &sh_plus);
            }
        }
        let _ = self.derived.reach.set(reach);
    }

    /// `σ.last(x)`: the write or update to `x` not mo-succeeded by another
    /// write to `x`. Unique and well-defined in every valid state; in a
    /// malformed state the lowest-id mo-maximal write is returned. Only
    /// the per-variable write list is consulted, not the whole arena.
    pub fn last(&self, x: VarId) -> Option<EventId> {
        let ws = self.writes_by_var.get(x.0 as usize)?;
        ws.iter()
            .copied()
            .find(|&w| !ws.iter().any(|&w2| self.mo.contains(w, w2)))
    }

    /// Adds event `e` to the state, producing `(D, sb) + e`:
    /// `sb` gains edges from every event of `e`'s thread and of the
    /// initialising thread. Returns the new event's id. `rf` / `mo` updates
    /// are the transition rules' business (`crate::semantics`).
    ///
    /// Populated derived-relation caches are carried over and updated
    /// incrementally: the new `sb` edges all point *into* the fresh sink
    /// `e`, so `hb` absorbs one star and `eco` is untouched.
    pub fn append_event(&self, ev: Event) -> (C11State, EventId) {
        let mut next = self.clone();
        let e = next.events.len();
        next.events.push(ev);
        next.sb.grow(e + 1);
        next.rf.grow(e + 1);
        next.mo.grow(e + 1);
        let mut sb_preds = BitSet::with_capacity(e + 1);
        for e2 in 0..e {
            let t2 = next.events[e2].tid;
            if t2 == ev.tid || t2.is_init() {
                next.sb.add(e2, e);
                sb_preds.insert(e2);
            }
        }
        next.index_event(e);
        next.derived_update(e, None, Some((sb_preds, BitSet::new())));
        (next, e)
    }

    /// Adds the reads-from edge `(w, e)` — the R͟E͟A͟D͟ / R͟M͟W͟ rules' `rf`
    /// update — maintaining the derived-relation caches incrementally:
    /// `eco` gains the `rf` edge plus the induced from-read edges
    /// `{e} × mo[w]`, and `hb` gains the synchronises-with edge when the
    /// pair is release/acquire. All of these are incident to `e`.
    pub fn rf_add(&mut self, w: EventId, e: EventId) {
        self.rf.add(w, e);
        let mut preds = BitSet::with_capacity(self.len());
        preds.insert(w);
        let mut succs = BitSet::with_capacity(self.len());
        for m in self.mo.image(w) {
            if m != e {
                succs.insert(m);
            }
        }
        let hb_new = (self.events[w].is_release() && self.events[e].is_acquire()).then(|| {
            let mut p = BitSet::with_capacity(self.len());
            p.insert(w);
            (p, BitSet::new())
        });
        self.derived_update(e, Some((preds, succs)), hb_new);
    }

    /// Mutable access to `rf`. Low-level: the axiomatic crate's execution
    /// builders use this; arbitrary edits can produce invalid states
    /// (which is exactly what the axiom tests want). Drops the derived
    /// caches — the transition rules use [`C11State::rf_add`] /
    /// [`C11State::mo_insert_after`], which keep them.
    pub fn rf_mut(&mut self) -> &mut Relation {
        self.invalidate();
        &mut self.rf
    }

    /// Mutable access to `mo`. See [`C11State::rf_mut`] for the caveat.
    pub fn mo_mut(&mut self) -> &mut Relation {
        self.invalidate();
        &mut self.mo
    }

    /// Inserts write `e` *directly after* write `w` in `mo` (paper
    /// `mo[w, e] = mo ∪ (mo⁺w × {e}) ∪ ({e} × mo[w])`, where
    /// `mo⁺w = {w} ∪ mo⁻¹[w]`).
    ///
    /// Derived caches are updated in place: the new `mo` edges and the
    /// from-read edges they induce (readers of `e`'s new `mo`-predecessors
    /// now read-before `e`) are all incident to `e`. The one shape that
    /// is not — `e` already having readers of its own — falls back to
    /// invalidation (it never arises in the transition rules, where `e`
    /// is freshly appended).
    pub fn mo_insert_after(&mut self, w: EventId, e: EventId) {
        let before: Vec<EventId> = std::iter::once(w)
            .chain(self.mo.preimage(w).collect::<Vec<_>>())
            .collect();
        let after: Vec<EventId> = self.mo.image(w).collect();
        for &b in &before {
            self.mo.add(b, e);
        }
        for &a in &after {
            self.mo.add(e, a);
        }
        if self.rf.image(e).next().is_some() {
            self.invalidate();
            return;
        }
        let mut preds = BitSet::with_capacity(self.len());
        let mut succs = BitSet::with_capacity(self.len());
        for &b in &before {
            preds.insert(b);
            // New from-read edges: every read of `b` is now fr-before `e`.
            for r in self.rf.image(b) {
                if r != e {
                    preds.insert(r);
                }
            }
        }
        for &a in &after {
            if a != e {
                succs.insert(a);
            }
        }
        self.derived_update(e, Some((preds, succs)), None);
    }

    /// Restriction `σ|_E` of the state to an event subset, *relabelling*
    /// events compactly (used by the completeness theorem's prefix states).
    /// The kept events preserve their relative arena order.
    pub fn restrict(&self, keep: &BitSet) -> C11State {
        let kept: Vec<EventId> = self.ids().filter(|e| keep.contains(*e)).collect();
        let mut renumber = vec![usize::MAX; self.len()];
        for (new, &old) in kept.iter().enumerate() {
            renumber[old] = new;
        }
        let events = kept.iter().map(|&e| self.events[e]).collect();
        let map_rel = |r: &Relation| {
            let mut out = Relation::new(kept.len());
            for (a, b) in r.pairs() {
                if keep.contains(a) && keep.contains(b) {
                    out.add(renumber[a], renumber[b]);
                }
            }
            out
        };
        let mut out = C11State {
            events,
            sb: map_rel(&self.sb),
            rf: map_rel(&self.rf),
            mo: map_rel(&self.mo),
            writes_by_var: Vec::new(),
            events_by_tid: Vec::new(),
            derived: Derived::default(),
        };
        out.rebuild_index();
        out
    }

    /// A canonical fingerprint of the state, invariant under the order in
    /// which *independent* events entered the arena: events are renumbered
    /// by `(tid, position within the thread)` — well-defined because
    /// `sb|_t` is total and the arena preserves per-thread order — and the
    /// relations are permuted accordingly. Two states reached by different
    /// interleavings of the same execution share a fingerprint.
    pub fn canonical(&self) -> CanonicalState {
        let mut order: Vec<EventId> = self.ids().collect();
        order.sort_by_key(|&e| (self.events[e].tid, e));
        // perm[old] = new
        let mut perm = vec![0usize; self.len()];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new;
        }
        let events: Vec<Event> = order.iter().map(|&e| self.events[e]).collect();
        let edges = |r: &Relation| -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = r
                .pairs()
                .map(|(a, b)| (perm[a] as u32, perm[b] as u32))
                .collect();
            v.sort_unstable();
            v
        };
        CanonicalState {
            events,
            sb: edges(&self.sb),
            rf: edges(&self.rf),
            mo: edges(&self.mo),
        }
    }

    /// A 128-bit canonical fingerprint: the same renumbering as
    /// [`C11State::canonical`] — events sorted by `(tid, per-thread
    /// order)`, relations permuted accordingly — but hashed on the fly
    /// instead of materialised. The permutation comes from a counting
    /// sort over thread ids (stack-allocated for the sizes exploration
    /// reaches) and the permuted edge sets are folded with an
    /// order-insensitive accumulator, so no sorting and no per-state edge
    /// vectors are needed. Two states with equal [`CanonicalState`]s get
    /// equal fingerprints; the converse holds up to 128-bit hash
    /// collisions (see [`crate::fingerprint`] for the collision stance).
    ///
    /// Cached per state: τ-successors share the parent's memory state
    /// (structurally, behind an `Arc`), so every silent step's dedup
    /// fingerprint after the first is a load. Mutations clear the cache.
    pub fn fingerprint(&self) -> u128 {
        *self.derived.fp.get_or_init(|| self.fingerprint_uncached())
    }

    fn fingerprint_uncached(&self) -> u128 {
        let n = self.len();
        let mut stack = [0usize; 128];
        let mut heap = Vec::new();
        let perm: &mut [usize] = if n <= 128 {
            &mut stack[..n]
        } else {
            heap.resize(n, 0);
            &mut heap[..]
        };
        // Counting sort by tid: new id = rank under (tid, arena order).
        let mut start = [0usize; 257];
        for ev in &self.events {
            start[ev.tid.0 as usize + 1] += 1;
        }
        for i in 1..257 {
            start[i] += start[i - 1];
        }
        for (old, ev) in self.events.iter().enumerate() {
            let slot = &mut start[ev.tid.0 as usize];
            perm[old] = *slot;
            *slot += 1;
        }
        // Events: position-tagged records folded order-insensitively
        // (the canonical position is baked into each record, so the fold
        // still distinguishes orderings).
        let mut events = SetFold::default();
        for (old, ev) in self.events.iter().enumerate() {
            let (kind, var, a, b) = match ev.action {
                c11_lang::Action::Rd { var, val, acquire } => {
                    (1u64, var.0, val as u64, acquire as u64)
                }
                c11_lang::Action::Wr { var, val, release } => {
                    (2u64, var.0, val as u64, release as u64)
                }
                c11_lang::Action::Upd { var, old, new } => (3u64, var.0, old as u64, new as u64),
            };
            // `a` / `b` are full u32 values (e.g. an update's old/new), so
            // they are avalanche-mixed with distinct asymmetric constants
            // rather than packed into the structured head word — packing
            // would bleed values ≥ 2⁸ into the var/tid/kind fields.
            let head =
                (perm[old] as u64) << 32 | kind << 24 | (ev.tid.0 as u64) << 16 | (var as u64) << 8;
            let payload = a.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
                ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).rotate_left(39);
            events.absorb(head ^ payload);
        }
        // Edge sets: permuted pairs tagged by relation, folded without
        // materialising or sorting them.
        let edge_fold = |r: &Relation, tag: u64| -> u128 {
            let mut fold = SetFold::default();
            for (a, b) in r.pairs() {
                fold.absorb(tag << 60 | (perm[a] as u64) << 30 | perm[b] as u64);
            }
            fold.digest()
        };
        combine128(&[
            n as u128,
            events.digest(),
            edge_fold(&self.sb, 1),
            edge_fold(&self.rf, 2),
            edge_fold(&self.mo, 3),
        ])
    }

    /// The fingerprint of this state *relabelled* by a thread
    /// permutation: `map[old_tid] = new_tid` (`map[0] = 0`; injective
    /// over the tids that occur). Mirrors [`C11State::fingerprint`]
    /// exactly — counting-sorts events by the *mapped* tid and bakes the
    /// mapped tid into each event record — so the result equals the
    /// cached fingerprint of the state with every event's tid rewritten
    /// through `map`. Never cached: symmetry canonicalisation probes
    /// many relabellings per state.
    ///
    /// Well-defined because the canonical renumbering only needs the
    /// per-thread arena order, which a tid *rename* preserves.
    pub fn fingerprint_relabelled(&self, map: &[u8]) -> u128 {
        let n = self.len();
        let mut stack = [0usize; 128];
        let mut heap = Vec::new();
        let perm: &mut [usize] = if n <= 128 {
            &mut stack[..n]
        } else {
            heap.resize(n, 0);
            &mut heap[..]
        };
        let tid_of = |t: ThreadId| -> u64 { map[t.0 as usize] as u64 };
        // Counting sort by *mapped* tid: new id = rank under
        // (map[tid], arena order).
        let mut start = [0usize; 257];
        for ev in &self.events {
            start[tid_of(ev.tid) as usize + 1] += 1;
        }
        for i in 1..257 {
            start[i] += start[i - 1];
        }
        for (old, ev) in self.events.iter().enumerate() {
            let slot = &mut start[tid_of(ev.tid) as usize];
            perm[old] = *slot;
            *slot += 1;
        }
        let mut events = SetFold::default();
        for (old, ev) in self.events.iter().enumerate() {
            let (kind, var, a, b) = match ev.action {
                c11_lang::Action::Rd { var, val, acquire } => {
                    (1u64, var.0, val as u64, acquire as u64)
                }
                c11_lang::Action::Wr { var, val, release } => {
                    (2u64, var.0, val as u64, release as u64)
                }
                c11_lang::Action::Upd { var, old, new } => (3u64, var.0, old as u64, new as u64),
            };
            let head =
                (perm[old] as u64) << 32 | kind << 24 | tid_of(ev.tid) << 16 | (var as u64) << 8;
            let payload = a.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
                ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).rotate_left(39);
            events.absorb(head ^ payload);
        }
        let edge_fold = |r: &Relation, tag: u64| -> u128 {
            let mut fold = SetFold::default();
            for (a, b) in r.pairs() {
                fold.absorb(tag << 60 | (perm[a] as u64) << 30 | perm[b] as u64);
            }
            fold.digest()
        };
        combine128(&[
            n as u128,
            events.digest(),
            edge_fold(&self.sb, 1),
            edge_fold(&self.rf, 2),
            edge_fold(&self.mo, 3),
        ])
    }

    /// A thread-naming-independent digest of what thread `t` has done:
    /// an order-*sensitive* fold over `t`'s events in arena order
    /// (= `sb|_t` order), mixing each event's kind, variable, values and
    /// — for writes — its rank in `mo` on its variable. Equal keys for
    /// threads whose histories are interchangeable under a thread
    /// rename; used by symmetry canonicalisation to sort the members of
    /// a symmetry class before probing relabellings.
    pub fn thread_obs_key(&self, t: ThreadId) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |w: u64| {
            h = (h ^ w).wrapping_mul(0x100000001b3).rotate_left(29);
        };
        for e in self.thread_events(t) {
            let ev = &self.events[e];
            let (kind, var, a, b) = match ev.action {
                c11_lang::Action::Rd { var, val, acquire } => {
                    (1u64, var.0, val as u64, acquire as u64)
                }
                c11_lang::Action::Wr { var, val, release } => {
                    (2u64, var.0, val as u64, release as u64)
                }
                c11_lang::Action::Upd { var, old, new } => (3u64, var.0, old as u64, new as u64),
            };
            mix(kind << 32 | (var as u64));
            mix(a.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
                ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).rotate_left(39));
            if kind != 1 {
                // Write/update: its mo-rank on the variable is part of
                // the observable history and independent of thread names.
                mix(0x6d0_u64 << 48 | self.mo.preimage(e).count() as u64);
            }
        }
        h
    }

    /// Pretty, multi-line rendering with variable names.
    pub fn render(&self, var_names: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name = |v: VarId| -> &str {
            var_names
                .get(v.0 as usize)
                .map(|s| s.as_str())
                .unwrap_or("?")
        };
        for (i, ev) in self.events.iter().enumerate() {
            let _ = writeln!(
                out,
                "  e{i}: {:?} {:?} on {}",
                ev.tid,
                ev.action,
                name(ev.var())
            );
        }
        let _ = writeln!(out, "  rf: {:?}", self.rf.pairs().collect::<Vec<_>>());
        let _ = writeln!(out, "  mo: {:?}", self.mo.pairs().collect::<Vec<_>>());
        out
    }
}

impl std::fmt::Debug for C11State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("C11State")
            .field("events", &self.events)
            .field("sb", &self.sb)
            .field("rf", &self.rf)
            .field("mo", &self.mo)
            .finish()
    }
}

/// Canonical, interleaving-insensitive form of a state. See
/// [`C11State::canonical`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalState {
    /// Events sorted by `(tid, per-thread order)`.
    pub events: Vec<Event>,
    /// Renumbered, sorted edge lists.
    pub sb: Vec<(u32, u32)>,
    /// Renumbered, sorted edge lists.
    pub rf: Vec<(u32, u32)>,
    /// Renumbered, sorted edge lists.
    pub mo: Vec<(u32, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_lang::Action;

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);

    fn wr(var: VarId, val: Val) -> Action {
        Action::Wr {
            var,
            val,
            release: false,
        }
    }

    fn rd(var: VarId, val: Val) -> Action {
        Action::Rd {
            var,
            val,
            acquire: false,
        }
    }

    #[test]
    fn initial_state_has_one_init_write_per_var() {
        let s = C11State::initial(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert!(s.events().iter().all(Event::is_init));
        assert_eq!(s.event(0).var(), X);
        assert_eq!(s.event(1).wrval(), Some(9));
        assert!(s.sb().is_empty());
        // Initialising writes are unordered amongst themselves (Ex. 3.2).
        assert_eq!(s.last(X), Some(0));
        assert_eq!(s.last(Y), Some(1));
    }

    #[test]
    fn append_orders_after_init_and_own_thread() {
        let s = C11State::initial(&[0]);
        let (s1, e1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (s2, e2) = s1.append_event(Event::new(ThreadId(2), wr(X, 2)));
        let (s3, e3) = s2.append_event(Event::new(ThreadId(1), rd(X, 1)));
        // init → everything
        assert!(s3.sb().contains(0, e1) && s3.sb().contains(0, e2) && s3.sb().contains(0, e3));
        // same-thread order
        assert!(s3.sb().contains(e1, e3));
        // no cross-thread sb
        assert!(!s3.sb().contains(e1, e2) && !s3.sb().contains(e2, e3));
    }

    #[test]
    fn sw_requires_release_and_acquire() {
        let s = C11State::initial(&[0]);
        let (s, w_rel) = s.append_event(Event::new(
            ThreadId(1),
            Action::Wr {
                var: X,
                val: 1,
                release: true,
            },
        ));
        let (s, r_rlx) = s.append_event(Event::new(ThreadId(2), rd(X, 1)));
        let (mut s, r_acq) = s.append_event(Event::new(
            ThreadId(3),
            Action::Rd {
                var: X,
                val: 1,
                acquire: true,
            },
        ));
        s.rf_mut().add(w_rel, r_rlx);
        s.rf_mut().add(w_rel, r_acq);
        let sw = s.sw();
        assert!(!sw.contains(w_rel, r_rlx)); // relaxed read: no sw
        assert!(sw.contains(w_rel, r_acq)); // release → acquire: sw
                                            // hb includes the sw edge transitively with sb.
        assert!(s.hb().contains(0, r_acq));
        assert!(s.hb().contains(w_rel, r_acq));
    }

    #[test]
    fn fr_subtracts_identity_for_updates() {
        // u reads from w0 and is mo-after w0: rf⁻¹;mo contains (u, u).
        let s = C11State::initial(&[0]);
        let (mut s, u) = s.append_event(Event::new(
            ThreadId(1),
            Action::Upd {
                var: X,
                old: 0,
                new: 5,
            },
        ));
        s.rf_mut().add(0, u);
        s.mo_mut().add(0, u);
        let fr = s.fr();
        assert!(!fr.contains(u, u), "fr must be irreflexive for updates");
    }

    #[test]
    fn eco_shape_of_example_3_3() {
        // w1 →mo w2, reads r1 r1' of w1: fr edges to w2, eco transitive.
        let s = C11State::initial(&[0]); // event 0 = w1 (init write of x)
        let (s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        let (s, r1) = s.append_event(Event::new(ThreadId(2), rd(X, 0)));
        let (mut s, r1b) = s.append_event(Event::new(ThreadId(3), rd(X, 0)));
        s.mo_mut().add(0, w2);
        s.rf_mut().add(0, r1);
        s.rf_mut().add(0, r1b);
        let eco = s.eco();
        // rf, mo, and fr = reads-before edges all present:
        assert!(eco.contains(0, r1) && eco.contains(0, w2));
        assert!(eco.contains(r1, w2) && eco.contains(r1b, w2), "fr edges");
        // reads of the same write are not eco-related to each other
        assert!(!eco.contains(r1, r1b) && !eco.contains(r1b, r1));
    }

    #[test]
    fn mo_insert_after_places_event_in_the_middle() {
        // mo: w0 → w1 → w2; insert e after w1 ⇒ w0,w1 before e; e before w2.
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        let (mut s, e) = s.append_event(Event::new(ThreadId(2), wr(X, 9)));
        s.mo_mut().add(0, w1);
        s.mo_mut().add(0, w2);
        s.mo_mut().add(w1, w2);
        s.mo_insert_after(w1, e);
        assert!(s.mo().contains(0, e) && s.mo().contains(w1, e));
        assert!(s.mo().contains(e, w2));
        assert!(!s.mo().contains(w2, e));
        // mo|x stays a strict total order on writes to x.
        assert!(s.mo().is_strict_total_order_on(&s.writes()));
    }

    #[test]
    fn last_is_mo_maximal() {
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (mut s, w2) = s.append_event(Event::new(ThreadId(1), wr(X, 2)));
        s.mo_mut().add(0, w1);
        s.mo_mut().add(0, w2);
        s.mo_mut().add(w1, w2);
        assert_eq!(s.last(X), Some(w2));
    }

    #[test]
    fn restrict_relabels_compactly() {
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
        let (mut s, r) = s.append_event(Event::new(ThreadId(2), rd(X, 1)));
        s.rf_mut().add(w1, r);
        s.mo_mut().add(0, w1);
        // Keep init + w1 only.
        let keep = BitSet::from_iter([0, w1]);
        let small = s.restrict(&keep);
        assert_eq!(small.len(), 2);
        assert!(small.mo().contains(0, 1));
        assert!(small.rf().is_empty());
    }

    #[test]
    fn canonical_is_interleaving_insensitive() {
        // The same two independent writes (t1: x:=1, t2: y:=2), appended in
        // both interleavings, produce the same canonical form.
        let build = |t1_first: bool| {
            let s = C11State::initial(&[0, 0]);
            let e1 = Event::new(ThreadId(1), wr(X, 1));
            let e2 = Event::new(ThreadId(2), wr(Y, 2));
            let (first, second) = if t1_first { (e1, e2) } else { (e2, e1) };
            let (s, a) = s.append_event(first);
            let (mut s, b) = s.append_event(second);
            let (x_w, y_w) = if t1_first { (a, b) } else { (b, a) };
            s.mo_mut().add(0, x_w);
            s.mo_mut().add(1, y_w);
            s.canonical()
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn fingerprint_distinguishes_wide_update_values() {
        // Regression: an update's u32 values must not be packed into the
        // 8-bit slots of the event record — Upd{var:1, new:0} and
        // Upd{var:0, new:256} would alias (1 << 8 == 256).
        let build = |var: VarId, new: Val| {
            let s = C11State::initial(&[0, 0]);
            let (s, _) = s.append_event(Event::new(ThreadId(1), Action::Upd { var, old: 5, new }));
            s
        };
        let a = build(VarId(1), 0);
        let b = build(VarId(0), 256);
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // tid field vs value bleed (65536 == 1 << 16).
        let c = build(VarId(0), 65536);
        assert_ne!(build(VarId(0), 0).fingerprint(), c.fingerprint());
    }

    #[test]
    fn canonical_distinguishes_different_rf() {
        let build = |val: Val| {
            let s = C11State::initial(&[0]);
            let (s, w) = s.append_event(Event::new(ThreadId(1), wr(X, 1)));
            let (mut s, r) = s.append_event(Event::new(ThreadId(2), rd(X, val)));
            if val == 1 {
                s.rf_mut().add(w, r);
            } else {
                s.rf_mut().add(0, r);
            }
            s.mo_mut().add(0, w);
            s.canonical()
        };
        assert_ne!(build(0), build(1));
    }
}
