//! Fixed-seed 128-bit fingerprints for exploration dedup keys.
//!
//! The explorer used to deduplicate configurations by cloning the whole
//! `(coms, regs, CanonicalState)` tuple into a hash map. These helpers
//! replace that with a 128-bit fingerprint: two independent 64-bit lanes,
//! each a fixed-seed FNV-1a fold finished with a splitmix64 avalanche.
//!
//! Collision stance: keys are 128 bits, so two distinct canonical states
//! colliding is a ~2⁻⁶⁴ event even after billions of states (birthday
//! bound), far below the chance of a hardware fault during the same run.
//! Dedup by fingerprint can therefore *undercount* states only with
//! negligible probability and can never produce unsound "allowed"
//! verdicts (a merged state was still reached by a real execution).

use std::hash::{Hash, Hasher};

/// The splitmix64 finaliser: a cheap full-avalanche bijection on `u64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A `std::hash::Hasher` running FNV-1a from a caller-chosen seed, with a
/// splitmix64 finaliser. Deterministic across runs and processes (unlike
/// `DefaultHasher`'s documented-unstable initial state), which keeps
/// fingerprints comparable between the sequential and parallel engines.
pub struct SeededFnv {
    state: u64,
}

impl SeededFnv {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher whose initial state is `seed` folded into the
    /// standard FNV offset basis.
    pub fn new(seed: u64) -> SeededFnv {
        SeededFnv {
            state: 0xcbf2_9ce4_8422_2325 ^ seed,
        }
    }
}

impl Hasher for SeededFnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

/// Hashes any `Hash` value into 128 bits via two differently-seeded lanes.
pub fn hash128_of<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut lo = SeededFnv::new(0x243f_6a88_85a3_08d3); // π digits
    let mut hi = SeededFnv::new(0x1319_8a2e_0370_7344);
    value.hash(&mut lo);
    value.hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

/// Mixes several 128-bit fingerprints (e.g. coms / regs / memory state)
/// into one, order-sensitively.
pub fn combine128(parts: &[u128]) -> u128 {
    let mut lo: u64 = 0x4528_21e6_38d0_1377;
    let mut hi: u64 = 0xbe54_66cf_34e9_0c6c;
    for &p in parts {
        lo = splitmix64(lo ^ p as u64);
        hi = splitmix64(hi ^ (p >> 64) as u64);
    }
    ((hi as u128) << 64) | lo as u128
}

/// A fixed-seed 128-bit fingerprint of a parsed program: initial values,
/// variable names and thread bodies, order-sensitively mixed. This is the
/// identity the api crate's `Session` result cache keys on — two sources
/// that parse to the same program (whitespace, comments, formatting)
/// share a fingerprint; any semantic difference (and any variable
/// rename, which changes rendered traces and DOT output) separates them.
pub fn fingerprint_prog(prog: &c11_lang::Prog) -> u128 {
    combine128(&[
        hash128_of(&prog.inits),
        hash128_of(&prog.var_names),
        hash128_of(&prog.threads),
    ])
}

/// An order-insensitive 128-bit accumulator for edge multisets: each
/// record is avalanche-mixed per lane and then folded in with wrapping
/// addition, so permuting the insertion order cannot change the result.
/// Used by [`crate::state::C11State::fingerprint`] to hash the permuted
/// `sb`/`rf`/`mo` edge sets without sorting (hence without allocating).
#[derive(Clone, Copy, Default)]
pub struct SetFold {
    lo: u64,
    hi: u64,
}

impl SetFold {
    /// Folds one record into both lanes.
    #[inline]
    pub fn absorb(&mut self, record: u64) {
        self.lo = self
            .lo
            .wrapping_add(splitmix64(record ^ 0x9216_d5d9_8979_fb1b));
        self.hi = self
            .hi
            .wrapping_add(splitmix64(record ^ 0xd131_0ba6_98df_b5ac));
    }

    /// The accumulated 128-bit digest.
    pub fn digest(&self) -> u128 {
        ((splitmix64(self.hi) as u128) << 64) | splitmix64(self.lo) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fnv_is_deterministic_and_seed_sensitive() {
        let h = |seed: u64, data: &[u8]| {
            let mut f = SeededFnv::new(seed);
            f.write(data);
            f.finish()
        };
        assert_eq!(h(1, b"abc"), h(1, b"abc"));
        assert_ne!(h(1, b"abc"), h(2, b"abc"));
        assert_ne!(h(1, b"abc"), h(1, b"abd"));
    }

    #[test]
    fn hash128_distinguishes_values() {
        assert_eq!(hash128_of(&[1u32, 2, 3]), hash128_of(&[1u32, 2, 3]));
        assert_ne!(hash128_of(&[1u32, 2, 3]), hash128_of(&[1u32, 3, 2]));
        assert_ne!(hash128_of(&1u64), hash128_of(&2u64));
    }

    #[test]
    fn set_fold_is_order_insensitive() {
        let mut a = SetFold::default();
        let mut b = SetFold::default();
        for x in [3u64, 1, 4, 1, 5] {
            a.absorb(x);
        }
        for x in [5u64, 1, 4, 3, 1] {
            b.absorb(x);
        }
        assert_eq!(a.digest(), b.digest());
        let mut c = SetFold::default();
        for x in [3u64, 1, 4, 1] {
            c.absorb(x);
        }
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine128(&[1, 2]), combine128(&[2, 1]));
        assert_eq!(combine128(&[1, 2]), combine128(&[1, 2]));
    }

    #[test]
    fn prog_fingerprint_ignores_formatting_but_not_semantics() {
        let parse = |s: &str| c11_lang::parse_program(s).unwrap();
        let a = parse("vars x; thread t { x := 1; }");
        let b = parse("vars x;\n  thread t {\n    x := 1;\n  }");
        assert_eq!(fingerprint_prog(&a), fingerprint_prog(&b));
        let c = parse("vars x; thread t { x := 2; }");
        assert_ne!(fingerprint_prog(&a), fingerprint_prog(&c));
        // Renames change rendered traces/DOT, so they must separate.
        let d = parse("vars y; thread t { y := 1; }");
        assert_ne!(fingerprint_prog(&a), fingerprint_prog(&d));
    }
}
