//! Configurations and the interpreted semantics (paper §3.3).
//!
//! A configuration pairs the residual program (one command per thread plus
//! thread-local registers) with a memory-model state. The two generic rules
//! of the paper are implemented by [`Config::successors`]:
//!
//! ```text
//!   P —τ→_t P'                    P —a→_t P'   σ —w,e→_M σ'
//!   ─────────────────            ────────────────────────────
//!   (P, σ) ⟹ (P', σ)             (P, σ) ⟹ (P', σ')
//! ```

use crate::model::{MemoryModel, Transition};
use c11_lang::step::{apply_step, step_shape, RegFile, StepShape};
use c11_lang::{Com, Prog, StepLabel, ThreadId};
use std::sync::Arc;

/// A configuration `(P, σ)` of the interpreted semantics, extended with
/// per-thread register files.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Config<M: MemoryModel> {
    /// Residual command of each thread (`coms[i]` is thread `i + 1`).
    /// Each tree is behind an [`Arc`]: a step clones `coms` as a vector
    /// of pointers and replaces only the entry of the thread that moved,
    /// so the (arbitrarily large) residual trees of the other threads are
    /// shared between parent and successor instead of deep-cloned.
    /// `Arc<Com>` hashes and compares through to the tree, so dedup
    /// fingerprints are unaffected by the sharing.
    pub coms: Vec<Arc<Com>>,
    /// Register file of each thread (same indexing).
    pub regs: Vec<RegFile>,
    /// The memory-model state `σ`, behind an [`Arc`]: τ-steps leave memory
    /// untouched, so their successors share the parent's state instead of
    /// deep-cloning it (the dominant clone of the exploration hot loop —
    /// silent steps outnumber actions on every corpus shape). Action steps
    /// wrap the state the model transition produced; nobody mutates a
    /// state through the `Arc`, matching the states'
    /// immutable-by-convention contract. `Arc<S>` hashes and compares
    /// through to the state, so dedup keys are unaffected.
    pub mem: Arc<M::State>,
}

// Manual impl: `derive(Clone)` would demand `M: Clone`, but only pointer
// vectors and register files need cloning (`mem` is a refcount bump).
impl<M: MemoryModel> Clone for Config<M> {
    fn clone(&self) -> Self {
        Config {
            coms: self.coms.clone(),
            regs: self.regs.clone(),
            mem: Arc::clone(&self.mem),
        }
    }
}

/// One step of the interpreted semantics, with enough labelling for the
/// verification crate to replay proofs: thread, label, and (for RA) the
/// observed write and new event.
#[derive(Clone, Debug)]
pub struct ConfigStep<M: MemoryModel> {
    /// The thread that stepped.
    pub tid: ThreadId,
    /// The step label (τ or a concrete action).
    pub label: StepLabel,
    /// The observed write, when the model provides one (RA).
    pub observed: Option<usize>,
    /// The appended event id, when the model tracks events.
    pub event: Option<usize>,
    /// The successor configuration.
    pub next: Config<M>,
}

impl<M: MemoryModel> Config<M> {
    /// The initial configuration of a program.
    pub fn initial(model: &M, prog: &Prog) -> Config<M> {
        Config {
            coms: prog.threads.iter().cloned().map(Arc::new).collect(),
            regs: vec![RegFile::new(); prog.threads.len()],
            mem: Arc::new(model.init(prog)),
        }
    }

    /// The command of thread `t`.
    pub fn com(&self, t: ThreadId) -> &Com {
        &self.coms[t.0 as usize - 1]
    }

    /// The register file of thread `t`.
    pub fn reg_file(&self, t: ThreadId) -> &RegFile {
        &self.regs[t.0 as usize - 1]
    }

    /// The program counter of thread `t` (label of its leftmost active
    /// statement).
    pub fn pc(&self, t: ThreadId) -> Option<u32> {
        self.com(t).pc()
    }

    /// `true` iff every thread has terminated.
    pub fn is_terminated(&self) -> bool {
        self.coms.iter().all(|c| c.is_terminated())
    }

    /// Thread ids `1..=n`.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (1..=self.coms.len() as u8).map(ThreadId)
    }

    /// The shape of thread `t`'s enabled step (`None` when terminated).
    /// The partial-order-reduction engine classifies races on these
    /// shapes before deciding which threads to expand.
    pub fn step_shape_of(&self, t: ThreadId) -> Option<StepShape> {
        let idx = t.0 as usize - 1;
        step_shape(&self.coms[idx], &self.regs[idx])
    }

    /// All successor configurations under the interpreted semantics: every
    /// thread's enabled step, with memory transitions expanded by the
    /// model.
    pub fn successors(&self, model: &M) -> Vec<ConfigStep<M>> {
        let mut out = Vec::new();
        for t in self.thread_ids() {
            self.successors_of_into(model, t, &mut out);
        }
        out
    }

    /// The successor configurations contributed by thread `t` alone (the
    /// per-thread slice of [`Config::successors`], in the same order).
    pub fn successors_of(&self, model: &M, t: ThreadId) -> Vec<ConfigStep<M>> {
        let mut out = Vec::new();
        self.successors_of_into(model, t, &mut out);
        out
    }

    fn successors_of_into(&self, model: &M, t: ThreadId, out: &mut Vec<ConfigStep<M>>) {
        let idx = t.0 as usize - 1;
        let com = &self.coms[idx];
        let regs = &self.regs[idx];
        match step_shape(com, regs) {
            None => {}
            Some(StepShape::Tau) => {
                let res = apply_step(com, &StepLabel::Tau, regs)
                    .expect("τ shape must apply with τ label");
                // A silent step leaves memory untouched: `clone` shares
                // `self.mem` through the `Arc`, so the successor costs two
                // small vector clones and a refcount bump.
                let mut next = self.clone();
                next.coms[idx] = Arc::new(res.com);
                if let Some((r, v)) = res.reg_write {
                    next.regs[idx].set(r, v);
                }
                out.push(ConfigStep {
                    tid: t,
                    label: StepLabel::Tau,
                    observed: None,
                    event: None,
                    next,
                });
            }
            Some(StepShape::Act(shape)) => {
                for Transition {
                    action,
                    observed,
                    event,
                    state,
                } in model.transitions(&self.mem, t, &shape)
                {
                    let label = StepLabel::Act(action);
                    let res = apply_step(com, &label, regs)
                        .expect("model transition must match the enabled shape");
                    // Assemble the successor directly: the transition
                    // already produced the new memory state, so cloning
                    // `self.mem` only to overwrite it would waste the
                    // most expensive copy of the hot loop.
                    let mut coms = self.coms.clone();
                    coms[idx] = Arc::new(res.com);
                    let mut regs = self.regs.clone();
                    if let Some((r, v)) = res.reg_write {
                        regs[idx].set(r, v);
                    }
                    out.push(ConfigStep {
                        tid: t,
                        label,
                        observed,
                        event,
                        next: Config {
                            coms,
                            regs,
                            mem: Arc::new(state),
                        },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RaModel, ScModel};
    use c11_lang::parse_program;
    use c11_lang::RegId;

    fn mp() -> Prog {
        parse_program(
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        )
        .unwrap()
    }

    #[test]
    fn initial_config() {
        let prog = mp();
        let cfg = Config::initial(&RaModel, &prog);
        assert_eq!(cfg.coms.len(), 2);
        assert!(!cfg.is_terminated());
        assert_eq!(cfg.mem.len(), 2); // two init writes
    }

    #[test]
    fn successors_cover_both_threads() {
        let prog = mp();
        let cfg = Config::initial(&RaModel, &prog);
        let succs = cfg.successors(&RaModel);
        // t1: one write transition (d := 5, only init insertion point).
        // t2: one read transition (only init write of f observable).
        assert_eq!(succs.len(), 2);
        let tids: Vec<u8> = succs.iter().map(|s| s.tid.0).collect();
        assert_eq!(tids, vec![1, 2]);
    }

    #[test]
    fn run_to_termination_under_sc() {
        let prog = mp();
        let mut cfg = Config::initial(&ScModel, &prog);
        let mut steps = 0;
        while !cfg.is_terminated() {
            // Deterministically pick the first successor (SC: t1 priority).
            let succs = cfg.successors(&ScModel);
            cfg = succs.into_iter().next().expect("not stuck").next;
            steps += 1;
            assert!(steps < 100, "runaway");
        }
        // t1 ran first under this schedule, so t2 read f = 1 and d = 5.
        assert_eq!(cfg.regs[1].get(RegId(0)), 1);
        assert_eq!(cfg.regs[1].get(RegId(1)), 5);
    }

    #[test]
    fn ra_read_can_miss_unpublished_write() {
        // Schedule: t1 writes d := 5 (relaxed), then t2 reads d. Both the
        // init 0 and the new 5 are observable — two read transitions.
        let prog = mp();
        let cfg = Config::initial(&RaModel, &prog);
        let w = cfg
            .successors(&RaModel)
            .into_iter()
            .find(|s| s.tid == ThreadId(1))
            .unwrap()
            .next;
        // advance t2's read of f = 0 (init), then the reg write-back τ …
        let r_f = w
            .successors(&RaModel)
            .into_iter()
            .find(|s| s.tid == ThreadId(2))
            .unwrap()
            .next;
        // … drain t2's silent steps (write-back, skip-consumption) …
        let mut cur = r_f;
        while let Some(step) = cur
            .successors(&RaModel)
            .into_iter()
            .find(|s| s.tid == ThreadId(2) && s.label == StepLabel::Tau)
        {
            cur = step.next;
        }
        // … now t2 reads d: both values possible.
        let reads: Vec<_> = cur
            .successors(&RaModel)
            .into_iter()
            .filter(|s| s.tid == ThreadId(2))
            .filter_map(|s| match s.label {
                StepLabel::Act(a) => a.rdval(),
                _ => None,
            })
            .collect();
        let mut sorted = reads.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 5]);
    }

    #[test]
    fn terminated_config_has_no_successors() {
        let prog = parse_program("vars x; thread t { skip; }").unwrap();
        let cfg = Config::initial(&ScModel, &prog);
        assert!(cfg.is_terminated());
        assert!(cfg.successors(&ScModel).is_empty());
    }
}
