//! The pluggable memory-model interface of the interpreted semantics
//! (paper §3.3), with three instantiations: RA, pre-executions and SC.

use crate::event::EventId;
use crate::semantics::{read_transitions, update_transitions, write_transitions};
use crate::state::C11State;
use c11_lang::{Action, ActionShape, Prog, ThreadId, Val};
use c11_relations::Relation;
use std::fmt::Debug;
use std::hash::Hash;

/// One enabled memory transition for an action shape.
#[derive(Clone, Debug)]
pub struct Transition<S> {
    /// The concrete action (read value resolved by the model).
    pub action: Action,
    /// The write observed (`w` in `σ —w,e→ σ'`); `None` for models without
    /// an observation notion (pre-executions, SC).
    pub observed: Option<EventId>,
    /// Id of the appended event, for models that track events.
    pub event: Option<EventId>,
    /// The successor memory state.
    pub state: S,
}

/// A memory model `M` pluggable into the interpreted semantics:
/// `(P, σ) ⟹_M (P', σ')` (paper §3.3). The model decides which concrete
/// actions realise an action shape and how the memory state evolves.
pub trait MemoryModel {
    /// The model's state type (`Σ`).
    type State: Clone + PartialEq + Eq + Hash + Debug;

    /// Canonical form of a state used for deduplication during
    /// exploration. States reachable by different interleavings of the
    /// same execution should share a key (see [`C11State::canonical`]).
    type CanonKey: Clone + PartialEq + Eq + Hash;

    /// The initial state for a program's declared variables.
    fn init(&self, prog: &Prog) -> Self::State;

    /// All transitions enabled for thread `t` performing `shape`.
    fn transitions(
        &self,
        state: &Self::State,
        t: ThreadId,
        shape: &ActionShape,
    ) -> Vec<Transition<Self::State>>;

    /// The canonical key of a state.
    fn canonical_key(&self, state: &Self::State) -> Self::CanonKey;

    /// A 128-bit fingerprint of the state's canonical form — the
    /// exploration dedup key. Two states with equal canonical keys must
    /// fingerprint equal; distinct keys collide only with ~2⁻¹²⁸
    /// probability (see `c11_core::fingerprint`). The default hashes the
    /// materialised canonical key; models override it when they can
    /// fingerprint without materialising (see [`C11State::fingerprint`]).
    fn state_fingerprint(&self, state: &Self::State) -> u128 {
        crate::fingerprint::hash128_of(&self.canonical_key(state))
    }

    /// A size measure used to bound exploration of growing states (event
    /// count for event-based models; 0 for store-based models).
    fn state_size(&self, state: &Self::State) -> usize;

    /// Independence oracle for partial-order reduction: may the two
    /// enabled action steps (by *different* threads) be executed in
    /// either order from `state`, reaching the same canonical state with
    /// neither step changing the set of concrete transitions enabled for
    /// the other? `true` lets the DPOR engine prune one of the two
    /// orders; a wrong `true` loses states, so the default is the
    /// maximally conservative `false` (the DPOR backend then degenerates
    /// to the plain BFS, which is always sound). Implementations must be
    /// symmetric in `a`/`b`.
    fn actions_independent(
        &self,
        _state: &Self::State,
        _a: (ThreadId, &ActionShape),
        _b: (ThreadId, &ActionShape),
    ) -> bool {
        false
    }

    /// Does this model implement the thread-relabelling hooks below
    /// exactly? Thread ids are pure names in the interpreted semantics,
    /// so relabelling is always a semantics equivariance — but a model
    /// must *implement* [`MemoryModel::state_fingerprint_relabelled`]
    /// for the symmetry quotient to merge anything. The conservative
    /// default `false` makes symmetry reduction silently degrade to
    /// flat keying (sound, no reduction).
    fn symmetry_exact(&self) -> bool {
        false
    }

    /// The fingerprint of `state` with every thread id rewritten through
    /// `map` (`map[old] = new`, `map[0] = 0`, injective). Must equal
    /// [`MemoryModel::state_fingerprint`] of the relabelled state. The
    /// default ignores the map — only sound to *use* when
    /// [`MemoryModel::symmetry_exact`] is `false` (the engine then never
    /// calls this with a non-identity map).
    fn state_fingerprint_relabelled(&self, state: &Self::State, _map: &[u8]) -> u128 {
        self.state_fingerprint(state)
    }

    /// A thread-naming-independent digest of thread `t`'s contribution
    /// to the state, used by symmetry canonicalisation to order the
    /// members of a symmetry class. Any equivariant function works (it
    /// only steers which relabellings get probed first); the default is
    /// the trivially equivariant constant.
    fn thread_mem_key(&self, _state: &Self::State, _t: ThreadId) -> u64 {
        0
    }

    /// Placement oracle for the source-set engine: the ids of the *old*
    /// events that the step's fresh event (`event` in `next`) was ordered
    /// before by the step's coherence insertion, in coherence order
    /// (the directly-overtaken event first). A write transition that
    /// overtakes another thread's write re-derives, step for step, the
    /// state the *reversed* execution order reaches by appending — so the
    /// source-set engine prunes such a successor whenever the reversed
    /// order is itself explored (the reversal is then already
    /// scheduled). Models without placement choice (store-based SC, the
    /// append-only pre-execution semantics) keep the empty default,
    /// which disables the pruning.
    fn step_overtakes(
        &self,
        _prev: &Self::State,
        _next: &Self::State,
        _event: Option<usize>,
    ) -> Vec<usize> {
        Vec::new()
    }
}

/// Shape-level race check shared by the models that can claim
/// independence: two action shapes race iff they touch the same variable
/// and at least one of them writes it (updates count as writes). For the
/// shipped models, non-racing cross-thread steps commute exactly:
///
/// * disjoint variables — a step on `x` only adds edges incident to its
///   own fresh event, so neither the `mo` insertion points nor the
///   observable-write set (`eco? ; hb?` reaches ending in the *other*
///   thread's events) of a `y`-step change, and appending in either
///   order yields the same canonical state;
/// * two plain reads of the same variable — a read adds an `rf` edge
///   into its own fresh (hb-maximal) event, which no observability query
///   of another thread can pass through.
pub fn shapes_race(a: &ActionShape, b: &ActionShape) -> bool {
    let var = |s: &ActionShape| match *s {
        ActionShape::Read { var, .. }
        | ActionShape::Write { var, .. }
        | ActionShape::Update { var, .. } => var,
    };
    let writes = |s: &ActionShape| !matches!(s, ActionShape::Read { .. });
    var(a) == var(b) && (writes(a) || writes(b))
}

/// The paper's operational RA semantics (§3.2 / Figure 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct RaModel;

impl MemoryModel for RaModel {
    type State = C11State;
    type CanonKey = crate::state::CanonicalState;

    fn init(&self, prog: &Prog) -> C11State {
        C11State::initial(&prog.inits)
    }

    fn transitions(
        &self,
        state: &C11State,
        t: ThreadId,
        shape: &ActionShape,
    ) -> Vec<Transition<C11State>> {
        let ra = match *shape {
            ActionShape::Read { var, acquire } => read_transitions(state, t, var, acquire),
            ActionShape::Write { var, val, release } => {
                write_transitions(state, t, var, val, release)
            }
            ActionShape::Update { var, new } => update_transitions(state, t, var, new),
        };
        ra.into_iter()
            .map(|tr| Transition {
                action: tr.action,
                observed: Some(tr.observed),
                event: Some(tr.event),
                state: tr.state,
            })
            .collect()
    }

    fn canonical_key(&self, state: &C11State) -> Self::CanonKey {
        state.canonical()
    }

    fn state_fingerprint(&self, state: &C11State) -> u128 {
        state.fingerprint()
    }

    fn state_size(&self, state: &C11State) -> usize {
        state.len()
    }

    fn actions_independent(
        &self,
        _state: &C11State,
        a: (ThreadId, &ActionShape),
        b: (ThreadId, &ActionShape),
    ) -> bool {
        a.0 != b.0 && !shapes_race(a.1, b.1)
    }

    fn symmetry_exact(&self) -> bool {
        true
    }

    fn state_fingerprint_relabelled(&self, state: &C11State, map: &[u8]) -> u128 {
        state.fingerprint_relabelled(map)
    }

    fn thread_mem_key(&self, state: &C11State, t: ThreadId) -> u64 {
        state.thread_obs_key(t)
    }

    fn step_overtakes(
        &self,
        _prev: &C11State,
        next: &C11State,
        event: Option<usize>,
    ) -> Vec<usize> {
        // `mo` is kept transitively closed, so the image of the fresh
        // event is exactly the set of writes it was inserted before;
        // `mo` restricted to one variable is total, so sorting by it
        // puts the directly-overtaken event first.
        let Some(e) = event else {
            return Vec::new();
        };
        let mut overtaken: Vec<usize> = next.mo().image(e).collect();
        overtaken.sort_by(|&a, &b| {
            if a == b {
                std::cmp::Ordering::Equal
            } else if next.mo().contains(a, b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        overtaken
    }
}

/// The pre-execution semantics of §4.1: states are `(D, sb)` only, and a
/// read may return *any* value from the program's value universe (reads
/// are justified post-hoc by the axiomatic semantics).
///
/// Represented as a [`C11State`] whose `rf` and `mo` stay empty.
#[derive(Clone, Debug)]
pub struct PreExecutionModel {
    /// Values a read may return. Built from [`Prog::value_universe`].
    pub universe: Vec<Val>,
}

impl PreExecutionModel {
    /// Builds the model for a program (universe = values occurring in the
    /// program text and its initialisation).
    pub fn for_program(prog: &Prog) -> PreExecutionModel {
        PreExecutionModel {
            universe: prog.value_universe(),
        }
    }
}

impl MemoryModel for PreExecutionModel {
    type State = C11State;
    type CanonKey = crate::state::CanonicalState;

    fn init(&self, prog: &Prog) -> C11State {
        C11State::initial(&prog.inits)
    }

    fn transitions(
        &self,
        state: &C11State,
        t: ThreadId,
        shape: &ActionShape,
    ) -> Vec<Transition<C11State>> {
        use crate::event::Event;
        let mut out = Vec::new();
        let mut push = |action: Action| {
            let (next, e) = state.append_event(Event::new(t, action));
            out.push(Transition {
                action,
                observed: None,
                event: Some(e),
                state: next,
            });
        };
        match *shape {
            ActionShape::Read { .. } | ActionShape::Update { .. } => {
                for &v in &self.universe {
                    push(shape.instantiate(v));
                }
            }
            ActionShape::Write { .. } => push(shape.instantiate(0)),
        }
        out
    }

    fn canonical_key(&self, state: &C11State) -> Self::CanonKey {
        state.canonical()
    }

    fn state_fingerprint(&self, state: &C11State) -> u128 {
        state.fingerprint()
    }

    fn state_size(&self, state: &C11State) -> usize {
        state.len()
    }

    fn actions_independent(
        &self,
        _state: &C11State,
        a: (ThreadId, &ActionShape),
        b: (ThreadId, &ActionShape),
    ) -> bool {
        // Pre-execution steps only append events (Prop 4.1 commutation),
        // but the shared variable-footprint rule is kept for uniformity.
        a.0 != b.0 && !shapes_race(a.1, b.1)
    }

    fn symmetry_exact(&self) -> bool {
        true
    }

    fn state_fingerprint_relabelled(&self, state: &C11State, map: &[u8]) -> u128 {
        state.fingerprint_relabelled(map)
    }

    fn thread_mem_key(&self, state: &C11State, t: ThreadId) -> u64 {
        state.thread_obs_key(t)
    }
}

/// ABLATION MODEL (experiment E15): the RA semantics with the `eco?`
/// component of encountered-writes removed (`hb?`-only reach). Admits
/// states that violate the Coherence axiom — exploring with this model
/// and counting `is_valid` failures measures how load-bearing the
/// extended coherence order is in the paper's observability definition.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeakObsRaModel;

impl MemoryModel for WeakObsRaModel {
    type State = C11State;
    type CanonKey = crate::state::CanonicalState;

    fn init(&self, prog: &Prog) -> C11State {
        C11State::initial(&prog.inits)
    }

    fn transitions(
        &self,
        state: &C11State,
        t: ThreadId,
        shape: &ActionShape,
    ) -> Vec<Transition<C11State>> {
        use crate::obs::observable_writes_hb_only as weak;
        use crate::semantics::{
            read_transitions_using, update_transitions_using, write_transitions_using,
        };
        let ra = match *shape {
            ActionShape::Read { var, acquire } => {
                read_transitions_using(state, t, var, acquire, weak)
            }
            ActionShape::Write { var, val, release } => {
                write_transitions_using(state, t, var, val, release, weak)
            }
            ActionShape::Update { var, new } => update_transitions_using(state, t, var, new, weak),
        };
        ra.into_iter()
            .map(|tr| Transition {
                action: tr.action,
                observed: Some(tr.observed),
                event: Some(tr.event),
                state: tr.state,
            })
            .collect()
    }

    fn canonical_key(&self, state: &C11State) -> Self::CanonKey {
        state.canonical()
    }

    fn state_fingerprint(&self, state: &C11State) -> u128 {
        state.fingerprint()
    }

    fn state_size(&self, state: &C11State) -> usize {
        state.len()
    }
}

/// A sequentially consistent baseline: the "conventional setting" of the
/// paper's §5, where the store is a simple map from variables to values.
/// Used to contrast verdicts (a litmus behaviour allowed under RA but not
/// SC demonstrates weak-memory effects) and as the benchmark baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScModel;

/// The SC store: one value per variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScState {
    /// `mem[v]` is the current value of `VarId(v)`.
    pub mem: Vec<Val>,
}

impl MemoryModel for ScModel {
    type State = ScState;
    type CanonKey = ScState;

    fn init(&self, prog: &Prog) -> ScState {
        ScState {
            mem: prog.inits.clone(),
        }
    }

    fn transitions(
        &self,
        state: &ScState,
        _t: ThreadId,
        shape: &ActionShape,
    ) -> Vec<Transition<ScState>> {
        match *shape {
            ActionShape::Read { var, .. } => {
                let val = state.mem[var.0 as usize];
                vec![Transition {
                    action: shape.instantiate(val),
                    observed: None,
                    event: None,
                    state: state.clone(),
                }]
            }
            ActionShape::Write { var, val, .. } => {
                let mut next = state.clone();
                next.mem[var.0 as usize] = val;
                vec![Transition {
                    action: shape.instantiate(0),
                    observed: None,
                    event: None,
                    state: next,
                }]
            }
            ActionShape::Update { var, new } => {
                let old = state.mem[var.0 as usize];
                let mut next = state.clone();
                next.mem[var.0 as usize] = new;
                vec![Transition {
                    action: Action::Upd { var, old, new },
                    observed: None,
                    event: None,
                    state: next,
                }]
            }
        }
    }

    fn canonical_key(&self, state: &ScState) -> ScState {
        state.clone()
    }

    fn state_size(&self, _state: &ScState) -> usize {
        0
    }

    fn actions_independent(
        &self,
        _state: &ScState,
        a: (ThreadId, &ActionShape),
        b: (ThreadId, &ActionShape),
    ) -> bool {
        a.0 != b.0 && !shapes_race(a.1, b.1)
    }

    fn symmetry_exact(&self) -> bool {
        // The SC store has no thread-indexed content at all, so every
        // relabelling fixes the state: the defaults are already exact.
        true
    }
}

/// Checks Proposition 4.1 / 2.3 commutation on a pre-execution state: two
/// steps by different threads can be taken in either order reaching the
/// same final `(D, sb)` up to canonical renaming. Exposed as a helper so
/// tests and the completeness machinery can assert it.
pub fn pe_steps_commute(state: &C11State, a: (ThreadId, Action), b: (ThreadId, Action)) -> bool {
    use crate::event::Event;
    if a.0 == b.0 {
        return true; // only cross-thread commutation is claimed
    }
    let ab = {
        let (s1, _) = state.append_event(Event::new(a.0, a.1));
        let (s2, _) = s1.append_event(Event::new(b.0, b.1));
        s2.canonical()
    };
    let ba = {
        let (s1, _) = state.append_event(Event::new(b.0, b.1));
        let (s2, _) = s1.append_event(Event::new(a.0, a.1));
        s2.canonical()
    };
    ab == ba
}

/// Convenience: an `rf`-free, `mo`-free projection check — `true` iff the
/// state is a pure pre-execution (used in assertions).
pub fn is_pre_execution(state: &C11State) -> bool {
    state.rf() == &Relation::new(state.len()).clone() && state.mo().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_lang::{ActionShape, VarId};

    const X: VarId = VarId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn prog_xy() -> Prog {
        Prog::new(vec![("x".into(), 0), ("y".into(), 0)], vec![])
    }

    #[test]
    fn ra_model_wraps_event_semantics() {
        let m = RaModel;
        let s = m.init(&prog_xy());
        let ts = m.transitions(
            &s,
            T1,
            &ActionShape::Read {
                var: X,
                acquire: false,
            },
        );
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].action.rdval(), Some(0));
        assert!(ts[0].observed.is_some());
    }

    #[test]
    fn pre_execution_reads_any_universe_value() {
        let mut prog = prog_xy();
        prog.inits = vec![0, 9];
        let m = PreExecutionModel::for_program(&prog);
        let s = m.init(&prog);
        let ts = m.transitions(
            &s,
            T1,
            &ActionShape::Read {
                var: X,
                acquire: false,
            },
        );
        let vals: Vec<Val> = ts.iter().filter_map(|t| t.action.rdval()).collect();
        assert_eq!(vals, prog.value_universe());
        // rf and mo stay empty in pre-executions.
        assert!(ts.iter().all(|t| is_pre_execution(&t.state)));
    }

    #[test]
    fn sc_model_is_deterministic() {
        let m = ScModel;
        let prog = prog_xy();
        let s = m.init(&prog);
        let w = &m.transitions(
            &s,
            T1,
            &ActionShape::Write {
                var: X,
                val: 4,
                release: false,
            },
        )[0];
        let r = &m.transitions(
            &w.state,
            T2,
            &ActionShape::Read {
                var: X,
                acquire: false,
            },
        )[0];
        assert_eq!(r.action.rdval(), Some(4));
        // SC has exactly one transition per shape.
        assert_eq!(
            m.transitions(&w.state, T2, &ActionShape::Update { var: X, new: 6 })
                .len(),
            1
        );
    }

    #[test]
    fn sc_update_reads_current_value() {
        let m = ScModel;
        let prog = prog_xy();
        let s = m.init(&prog);
        let u = &m.transitions(&s, T1, &ActionShape::Update { var: X, new: 3 })[0];
        assert_eq!(u.action.rdval(), Some(0));
        assert_eq!(u.state.mem[0], 3);
    }

    #[test]
    fn shapes_race_is_the_variable_footprint_rule() {
        let rd = |var| ActionShape::Read {
            var,
            acquire: false,
        };
        let wr = |var| ActionShape::Write {
            var,
            val: 1,
            release: false,
        };
        let upd = |var| ActionShape::Update { var, new: 2 };
        let y = VarId(1);
        // Same variable: races unless both sides only read.
        assert!(!shapes_race(&rd(X), &rd(X)));
        assert!(shapes_race(&rd(X), &wr(X)));
        assert!(shapes_race(&wr(X), &wr(X)));
        assert!(shapes_race(&rd(X), &upd(X)), "updates write");
        // Disjoint variables never race.
        assert!(!shapes_race(&wr(X), &wr(y)));
        assert!(!shapes_race(&upd(X), &rd(y)));
    }

    #[test]
    fn independence_requires_distinct_threads_and_is_symmetric() {
        let s = RaModel.init(&prog_xy());
        let rd = ActionShape::Read {
            var: X,
            acquire: true,
        };
        let wr = ActionShape::Write {
            var: VarId(1),
            val: 3,
            release: true,
        };
        assert!(RaModel.actions_independent(&s, (T1, &rd), (T2, &wr)));
        assert!(RaModel.actions_independent(&s, (T2, &wr), (T1, &rd)));
        assert!(!RaModel.actions_independent(&s, (T1, &rd), (T1, &wr)));
        // The ablation model keeps the conservative default.
        assert!(!WeakObsRaModel.actions_independent(&s, (T1, &rd), (T2, &wr)));
        // The SC baseline shares the footprint rule.
        let sc = ScModel.init(&prog_xy());
        assert!(ScModel.actions_independent(&sc, (T1, &rd), (T2, &wr)));
    }

    #[test]
    fn prop_4_1_pe_commutation() {
        let prog = prog_xy();
        let m = PreExecutionModel::for_program(&prog);
        let s = m.init(&prog);
        let a = (
            T1,
            Action::Wr {
                var: X,
                val: 1,
                release: false,
            },
        );
        let b = (
            T2,
            Action::Rd {
                var: X,
                val: 1,
                acquire: false,
            },
        );
        assert!(pe_steps_commute(&s, a, b));
    }
}
