//! The operational semantics of the RAR fragment of C11 (paper §3).
//!
//! A C11 state is a triple `((D, sb), rf, mo)`: events with sequenced-before,
//! reads-from and modification order ([`state::C11State`]). The *event
//! semantics* ([`semantics`]) adds one event per step, validating reads
//! on-the-fly against the executing thread's *observable writes*
//! ([`obs`]): writes not superseded (in `mo`) by any write the thread has
//! already *encountered* through `eco? ; hb?`.
//!
//! The interpreted semantics ([`config`]) pairs a program with a memory
//! model state and is generic in the memory model ([`model::MemoryModel`]),
//! exactly as in the paper's §3.3. Three models are provided:
//!
//! * [`model::RaModel`] — the paper's release/acquire/relaxed semantics;
//! * [`model::PreExecutionModel`] — pre-executions (§4.1), whose reads are
//!   unconstrained; used by the completeness construction;
//! * [`model::ScModel`] — a sequentially-consistent baseline (a plain
//!   variable store), the "conventional setting" the paper's §5 contrasts
//!   against; also the benchmark baseline.

pub mod config;
pub mod dot;
pub mod event;
pub mod fingerprint;
pub mod model;
pub mod obs;
pub mod paper_examples;
pub mod semantics;
pub mod state;

pub use config::Config;
pub use event::{Event, EventId};
pub use model::{MemoryModel, PreExecutionModel, RaModel, ScModel, Transition};
pub use obs::{covered_writes, encountered_writes, observable_writes};
pub use state::C11State;

// Re-export the shared vocabulary so downstream crates import one place.
pub use c11_lang::{Action, ThreadId, Val, VarId};
