//! Hand-built states from the paper's worked examples, shared by unit
//! tests, integration tests, runnable examples and benches.

use crate::event::{Event, EventId};
use crate::state::C11State;
use c11_lang::{Action, ThreadId, VarId};

/// Variable ids used by the examples: `x`, `y`, `z`.
pub const X: VarId = VarId(0);
/// See [`X`].
pub const Y: VarId = VarId(1);
/// See [`X`].
pub const Z: VarId = VarId(2);

/// Variable names for rendering the example states.
pub fn example_var_names() -> Vec<String> {
    vec!["x".into(), "y".into(), "z".into()]
}

/// The C11 state of Example 3.2 (threads 1–4 over `x`, `y`, `z`).
///
/// Returns the state and the ids `[updRA₁(x,2,4), wr₂(y,1), wrR₂(x,2),
/// rdA₃(x,2), wr₃(z,3), updRA₄(y,0,5), rd₄(z,3)]`. Events 0–2 are the
/// initialising writes of `x`, `y`, `z`.
///
/// Thread 2's program order is `wr₂(y,1)` then `wrR₂(x,2)`: the paper's
/// own `EW(3)` listing requires the hb-path
/// `wr₂(y,1) →sb wrR₂(x,2) →sw rdA₃(x,2)`. See EXPERIMENTS.md (E1) for
/// the resulting erratum in the printed `EW(1)`/`OW(1)`/`OW(2)`.
pub fn example_3_2() -> (C11State, [EventId; 7]) {
    let wr = |var, val, release| Action::Wr { var, val, release };
    let rd = |var, val, acquire| Action::Rd { var, val, acquire };
    let s = C11State::initial(&[0, 0, 0]);
    let (s, u1) = s.append_event(Event::new(
        ThreadId(1),
        Action::Upd {
            var: X,
            old: 2,
            new: 4,
        },
    ));
    let (s, w2y) = s.append_event(Event::new(ThreadId(2), wr(Y, 1, false)));
    let (s, w2x) = s.append_event(Event::new(ThreadId(2), wr(X, 2, true)));
    let (s, r3) = s.append_event(Event::new(ThreadId(3), rd(X, 2, true)));
    let (s, w3) = s.append_event(Event::new(ThreadId(3), wr(Z, 3, false)));
    let (s, u4) = s.append_event(Event::new(
        ThreadId(4),
        Action::Upd {
            var: Y,
            old: 0,
            new: 5,
        },
    ));
    let (mut s, r4) = s.append_event(Event::new(ThreadId(4), rd(Z, 3, false)));
    s.rf_mut().add(w2x, u1);
    s.rf_mut().add(w2x, r3);
    s.rf_mut().add(1, u4);
    s.rf_mut().add(w3, r4);
    s.mo_mut().add(0, w2x);
    s.mo_mut().add(0, u1);
    s.mo_mut().add(w2x, u1);
    s.mo_mut().add(1, u4);
    s.mo_mut().add(1, w2y);
    s.mo_mut().add(u4, w2y);
    s.mo_mut().add(2, w3);
    (s, [u1, w2y, w2x, r3, w3, u4, r4])
}

/// The single-variable eco chain of Example 3.3:
/// `w₁ →mo w₂ →mo w₃ →mo u →mo w₄` with reads `r₁ r₁' r₁''` of `w₁`,
/// `r₂ r₂'` of `w₂`, `r₃` = the update's read, and `r₄ r₄'` of `w₄`.
/// (The update reads `w₃`.) Returns the state.
pub fn example_3_3() -> C11State {
    let t = ThreadId(1); // one writer thread; readers on others
    let wr = |val| Action::Wr {
        var: X,
        val,
        release: false,
    };
    let rd = |val| Action::Rd {
        var: X,
        val,
        acquire: false,
    };
    let s = C11State::initial(&[1]); // w1 = init write (value 1)
    let (s, w2) = s.append_event(Event::new(t, wr(2)));
    let (s, w3) = s.append_event(Event::new(t, wr(3)));
    let (s, u) = s.append_event(Event::new(
        t,
        Action::Upd {
            var: X,
            old: 3,
            new: 4,
        },
    ));
    let (s, w4) = s.append_event(Event::new(t, wr(5)));
    let (s, r1) = s.append_event(Event::new(ThreadId(2), rd(1)));
    let (s, r1b) = s.append_event(Event::new(ThreadId(3), rd(1)));
    let (s, r2) = s.append_event(Event::new(ThreadId(2), rd(2)));
    let (mut s, r4) = s.append_event(Event::new(ThreadId(3), rd(5)));
    let w1 = 0;
    for (a, b) in [(w1, w2), (w2, w3), (w3, u), (u, w4)] {
        s.mo_mut().add(a, b);
    }
    // transitive closure of the chain
    let closed = s.mo().transitive_closure();
    *s.mo_mut() = closed;
    s.rf_mut().add(w1, r1);
    s.rf_mut().add(w1, r1b);
    s.rf_mut().add(w2, r2);
    s.rf_mut().add(w3, u);
    s.rf_mut().add(w4, r4);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{covered_writes, encountered_writes, observable_writes};

    #[test]
    fn example_3_2_is_consistent_with_obs_module() {
        let (s, [u1, w2y, w2x, _r3, w3, u4, _r4]) = example_3_2();
        // Spot checks (full expectations live in obs.rs and tests/):
        assert!(covered_writes(&s).contains(w2x));
        assert!(encountered_writes(&s, ThreadId(3)).contains(w2y));
        assert!(observable_writes(&s, ThreadId(4)).contains(0));
        let _ = (u1, w3, u4);
    }

    #[test]
    fn example_3_3_eco_shape() {
        let s = example_3_3();
        let eco = s.eco();
        // Reads of w1 are eco-before w2 (from-read), and everything
        // downstream of the chain.
        let (w2, u, w4, r1, r2, r4) = (1, 3, 4, 5, 7, 8);
        assert!(eco.contains(r1, w2));
        assert!(eco.contains(r2, u), "r2 fr to the update");
        assert!(eco.contains(u, w4));
        assert!(eco.contains(0, r4), "w1 reaches the last read via eco");
        // Reads of the same write are unrelated.
        assert!(!eco.contains(r1, 6) && !eco.contains(6, r1));
    }
}
