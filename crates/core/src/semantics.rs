//! The RA event semantics (paper Figure 3).
//!
//! Each rule appends one event `e = (a, t)` to the state and records the
//! *observed write* `w` that justified it:
//!
//! * **Read** — `w ∈ OW_σ(t)` with `var(w) = x`, `wrval(w) = n`;
//!   `rf' = rf ∪ {(w, e)}`.
//! * **Write** — `w ∈ OW_σ(t) \ CW_σ` with `var(w) = x`;
//!   `mo' = mo[w, e]` (insert directly after `w`).
//! * **RMW** — `w ∈ OW_σ(t) \ CW_σ` with `var(w) = x`, `wrval(w) = m`;
//!   both `rf'` and `mo'` updated, making the update atomic
//!   (no write can later squeeze between `w` and `e` because `w` becomes
//!   covered).
//!
//! The functions below return *all* transitions enabled for an action
//! shape, which is what both the model checker and the completeness
//! construction need.

use crate::event::{Event, EventId};
use crate::obs::{covered_writes, observable_writes};
use crate::state::C11State;
use c11_lang::{Action, ThreadId, Val, VarId};
use c11_relations::BitSet;

/// An observability function: which writes a thread may observe next.
/// The paper's semantics uses [`observable_writes`]; the E15 ablation
/// plugs in [`crate::obs::observable_writes_hb_only`].
pub type ObsFn = fn(&C11State, ThreadId) -> BitSet;

/// One enabled RA transition: the observed write `w`, the concrete action
/// (read value resolved), the new event's id, and the successor state.
#[derive(Clone, Debug)]
pub struct RaTransition {
    /// The write observed by the step (`w` in `σ —w,e→ σ'`).
    pub observed: EventId,
    /// The concrete action of the new event.
    pub action: Action,
    /// Id of the appended event `e` in `state`.
    pub event: EventId,
    /// The successor state `σ'`.
    pub state: C11State,
}

/// All transitions of the R͟E͟A͟D͟ rule for thread `t` reading `x`:
/// one per observable write to `x`.
pub fn read_transitions(
    state: &C11State,
    t: ThreadId,
    x: VarId,
    acquire: bool,
) -> Vec<RaTransition> {
    read_transitions_using(state, t, x, acquire, observable_writes)
}

/// [`read_transitions`] with a pluggable observability function.
pub fn read_transitions_using(
    state: &C11State,
    t: ThreadId,
    x: VarId,
    acquire: bool,
    obs: ObsFn,
) -> Vec<RaTransition> {
    let ow = obs(state, t);
    let mut out = Vec::new();
    for w in ow.iter() {
        let ev = state.event(w);
        if ev.var() != x {
            continue;
        }
        let n = ev.wrval().expect("observable events are writes");
        let action = Action::Rd {
            var: x,
            val: n,
            acquire,
        };
        let (mut next, e) = state.append_event(Event::new(t, action));
        next.rf_add(w, e);
        out.push(RaTransition {
            observed: w,
            action,
            event: e,
            state: next,
        });
    }
    out
}

/// All transitions of the W͟R͟I͟T͟E͟ rule for thread `t` writing `val` to `x`:
/// one insertion point per observable, non-covered write to `x`.
pub fn write_transitions(
    state: &C11State,
    t: ThreadId,
    x: VarId,
    val: Val,
    release: bool,
) -> Vec<RaTransition> {
    write_transitions_using(state, t, x, val, release, observable_writes)
}

/// [`write_transitions`] with a pluggable observability function.
pub fn write_transitions_using(
    state: &C11State,
    t: ThreadId,
    x: VarId,
    val: Val,
    release: bool,
    obs: ObsFn,
) -> Vec<RaTransition> {
    let ow = obs(state, t);
    let cw = covered_writes(state);
    let mut out = Vec::new();
    for w in ow.difference(&cw).iter() {
        if state.event(w).var() != x {
            continue;
        }
        let action = Action::Wr {
            var: x,
            val,
            release,
        };
        let (mut next, e) = state.append_event(Event::new(t, action));
        next.mo_insert_after(w, e);
        out.push(RaTransition {
            observed: w,
            action,
            event: e,
            state: next,
        });
    }
    out
}

/// All transitions of the R͟M͟W͟ rule for thread `t` swapping `x` to `new`:
/// one per observable, non-covered write to `x`; the value read is the
/// observed write's value.
pub fn update_transitions(state: &C11State, t: ThreadId, x: VarId, new: Val) -> Vec<RaTransition> {
    update_transitions_using(state, t, x, new, observable_writes)
}

/// [`update_transitions`] with a pluggable observability function.
pub fn update_transitions_using(
    state: &C11State,
    t: ThreadId,
    x: VarId,
    new: Val,
    obs: ObsFn,
) -> Vec<RaTransition> {
    let ow = obs(state, t);
    let cw = covered_writes(state);
    let mut out = Vec::new();
    for w in ow.difference(&cw).iter() {
        let ev = state.event(w);
        if ev.var() != x {
            continue;
        }
        let m = ev.wrval().expect("observable events are writes");
        let action = Action::Upd {
            var: x,
            old: m,
            new,
        };
        let (mut next, e) = state.append_event(Event::new(t, action));
        next.rf_add(w, e);
        next.mo_insert_after(w, e);
        out.push(RaTransition {
            observed: w,
            action,
            event: e,
            state: next,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn read_from_initial_state_sees_init_value() {
        let s = C11State::initial(&[7]);
        let ts = read_transitions(&s, T1, X, false);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].observed, 0);
        assert_eq!(ts[0].action.rdval(), Some(7));
        assert!(ts[0].state.rf().contains(0, ts[0].event));
    }

    #[test]
    fn write_appends_to_mo_and_becomes_last() {
        let s = C11State::initial(&[0]);
        let ts = write_transitions(&s, T1, X, 5, false);
        assert_eq!(ts.len(), 1);
        let s1 = &ts[0].state;
        assert!(s1.mo().contains(0, ts[0].event));
        assert_eq!(s1.last(X), Some(ts[0].event));
    }

    #[test]
    fn two_writers_can_interleave_mo() {
        // After t1 writes x=1, t2 (which hasn't encountered it) may insert
        // its write either before or after in mo: 2 transitions.
        let s = C11State::initial(&[0]);
        let w1 = &write_transitions(&s, T1, X, 1, false)[0];
        let ts = write_transitions(&w1.state, T2, X, 2, false);
        assert_eq!(ts.len(), 2);
        let mut mo_shapes: Vec<bool> = ts
            .iter()
            .map(|t| t.state.mo().contains(w1.event, t.event))
            .collect();
        mo_shapes.sort_unstable();
        assert_eq!(mo_shapes, vec![false, true]);
    }

    #[test]
    fn writer_thread_observes_only_its_own_last_write() {
        // After t1 writes x=1 (encountering its own write), t1 can only
        // read 1, not the init 0.
        let s = C11State::initial(&[0]);
        let w1 = &write_transitions(&s, T1, X, 1, false)[0];
        let ts = read_transitions(&w1.state, T1, X, false);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].action.rdval(), Some(1));
    }

    #[test]
    fn other_thread_may_read_old_or_new() {
        let s = C11State::initial(&[0]);
        let w1 = &write_transitions(&s, T1, X, 1, false)[0];
        let ts = read_transitions(&w1.state, T2, X, false);
        let mut vals: Vec<Val> = ts.iter().filter_map(|t| t.action.rdval()).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1]);
    }

    #[test]
    fn update_reads_and_covers_its_write() {
        let s = C11State::initial(&[0]);
        let ts = update_transitions(&s, T1, X, 9);
        assert_eq!(ts.len(), 1);
        let tr = &ts[0];
        assert_eq!(tr.action.rdval(), Some(0));
        assert_eq!(tr.action.wrval(), Some(9));
        let s1 = &tr.state;
        assert!(s1.rf().contains(0, tr.event));
        assert!(s1.mo().contains(0, tr.event));
        // The init write is now covered: no write/update may observe it.
        assert!(covered_writes(s1).contains(0));
        assert!(write_transitions(s1, T2, X, 5, false)
            .iter()
            .all(|t| t.observed != 0));
        assert!(update_transitions(s1, T2, X, 5)
            .iter()
            .all(|t| t.observed != 0));
        // But a *read* may still observe a covered write (READ draws from
        // OW, not OW \ CW).
        assert!(read_transitions(s1, T2, X, false)
            .iter()
            .any(|t| t.observed == 0));
    }

    #[test]
    fn example_3_5_no_insertion_between_covered_pairs() {
        // Example 3.5: no thread may introduce a write between a write and
        // the update that reads it.
        let s = C11State::initial(&[0]);
        let u = &update_transitions(&s, T1, X, 4)[0]; // updRA(x,0,4) covers init
        let ts = write_transitions(&u.state, T2, X, 7, false);
        // Only insertion point: after the update.
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].observed, u.event);
        assert!(ts[0].state.mo().contains(u.event, ts[0].event));
    }

    #[test]
    fn reads_never_change_mo_and_writes_never_change_rf() {
        let s = C11State::initial(&[0, 0]);
        let r = &read_transitions(&s, T1, X, true)[0];
        assert_eq!(r.state.mo(), s.mo());
        let w = &write_transitions(&s, T1, Y, 3, true)[0];
        assert_eq!(w.state.rf(), s.rf());
    }

    #[test]
    fn update_chain_orders_totally() {
        // Two successive updates form a chain init → u1 → u2 in both rf
        // and mo; u2 must read u1's value.
        let s = C11State::initial(&[0]);
        let u1 = &update_transitions(&s, T1, X, 1)[0];
        let ts = update_transitions(&u1.state, T2, X, 2);
        assert_eq!(ts.len(), 1, "init is covered; only u1 observable");
        let u2 = &ts[0];
        assert_eq!(u2.action.rdval(), Some(1));
        assert!(u2.state.mo().contains(u1.event, u2.event));
        assert!(u2.state.rf().contains(u1.event, u2.event));
    }

    #[test]
    fn read_of_wrong_variable_yields_no_transitions() {
        let s = C11State::initial(&[0]);
        assert!(read_transitions(&s, T1, VarId(9), false).is_empty());
    }
}
