//! Events: tagged actions with a thread identifier (paper `Evt = G × Act × T`).
//!
//! The tag set `G` of the paper exists only to make events unique; here an
//! event's identity is its index in the state's event arena, so tags are
//! implicit and [`EventId`] plays the role of `G`.

use c11_lang::{Action, ThreadId, Val, VarId};

/// Index of an event in a state's arena. Doubles as the paper's tag.
pub type EventId = usize;

/// An event: an action executed by a thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Executing thread (`tid(e)`); thread 0 initialises.
    pub tid: ThreadId,
    /// The action (`act(e)`).
    pub action: Action,
}

impl Event {
    /// Creates an event.
    pub fn new(tid: ThreadId, action: Action) -> Event {
        Event { tid, action }
    }

    /// An initialising write of `val` to `var` (thread 0, relaxed).
    ///
    /// Initialising writes are plain writes of the special thread `0`; the
    /// paper's `IWr = { w ∈ Wr | tid(w) = 0 }`.
    pub fn init_write(var: VarId, val: Val) -> Event {
        Event {
            tid: ThreadId::INIT,
            action: Action::Wr {
                var,
                val,
                release: false,
            },
        }
    }

    /// The variable touched (`var(e)`).
    pub fn var(&self) -> VarId {
        self.action.var()
    }

    /// The value written, if the event writes (`wrval(e)`).
    pub fn wrval(&self) -> Option<Val> {
        self.action.wrval()
    }

    /// The value read, if the event reads (`rdval(e)`).
    pub fn rdval(&self) -> Option<Val> {
        self.action.rdval()
    }

    /// `e ∈ Wr` — writes and updates.
    pub fn is_write(&self) -> bool {
        self.action.is_write()
    }

    /// `e ∈ Rd` — reads and updates.
    pub fn is_read(&self) -> bool {
        self.action.is_read()
    }

    /// `e ∈ U` — update (RMW) events.
    pub fn is_update(&self) -> bool {
        self.action.is_update()
    }

    /// `e ∈ WrR` — release writes (updates included).
    pub fn is_release(&self) -> bool {
        self.action.is_release()
    }

    /// `e ∈ RdA` — acquire reads (updates included).
    pub fn is_acquire(&self) -> bool {
        self.action.is_acquire()
    }

    /// `e ∈ IWr` — initialising writes.
    pub fn is_init(&self) -> bool {
        self.tid.is_init()
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}@{:?}", self.action, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_write_classification() {
        let w = Event::init_write(VarId(0), 7);
        assert!(w.is_init() && w.is_write() && !w.is_read());
        assert!(!w.is_release() && !w.is_update());
        assert_eq!(w.wrval(), Some(7));
        assert_eq!(w.rdval(), None);
    }

    #[test]
    fn update_is_both_read_and_write() {
        let u = Event::new(
            ThreadId(1),
            Action::Upd {
                var: VarId(0),
                old: 1,
                new: 2,
            },
        );
        assert!(u.is_read() && u.is_write() && u.is_update());
        assert!(u.is_release() && u.is_acquire());
        assert!(!u.is_init());
        assert_eq!(u.rdval(), Some(1));
        assert_eq!(u.wrval(), Some(2));
    }
}
