//! The uninterpreted operational semantics of commands (paper Figure 2).
//!
//! A command exposes at most one *step shape* per state: silent (`τ`), or a
//! read / write / update action shape. Thread nondeterminism comes from the
//! program level (which thread steps) and from read values (which write the
//! memory model lets the read observe); the command semantics itself is
//! deterministic once those are fixed.
//!
//! Two functions implement the relation `C —a→ C′`:
//!
//! * [`step_shape`] — the shape of the enabled step (if the command has not
//!   terminated);
//! * [`apply_step`] — given a concrete [`StepLabel`] matching the shape,
//!   the successor command (plus a register write-back, for the register
//!   extension).
//!
//! Proposition 2.2 holds by construction: `apply_step` accepts a read label
//! with *any* value and the successor is uniform in it.

use crate::action::{Action, ActionShape, StepLabel};
use crate::ast::{Com, Exp, RegId, Val};
use crate::eval::{eval_closed, fold, next_read, resolve_regs, subst_leftmost};

/// The thread-local register file (extension; defaults to 0).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegFile {
    vals: Vec<Val>,
}

impl RegFile {
    /// A register file with all registers 0.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Current value of `r` (0 if never written).
    pub fn get(&self, r: RegId) -> Val {
        self.vals.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// Writes `v` to `r`.
    pub fn set(&mut self, r: RegId, v: Val) {
        let idx = r.0 as usize;
        if self.vals.len() <= idx {
            self.vals.resize(idx + 1, 0);
        }
        self.vals[idx] = v;
    }

    /// Iterates over the registers written so far as `(register, value)`
    /// pairs (reporting surface: report writers enumerate these instead of
    /// probing a fixed register range).
    pub fn iter(&self) -> impl Iterator<Item = (RegId, Val)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (RegId(i as u8), v))
    }
}

/// The shape of a command step: silent or an action with open read value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepShape {
    /// A silent step.
    Tau,
    /// A memory action shape.
    Act(ActionShape),
}

/// Result of applying a step: the successor command, plus the register
/// write performed by a completing `r <- E` (if any).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepResult {
    /// The successor command `C′`.
    pub com: Com,
    /// Register write-back, for `AssignReg` completion steps.
    pub reg_write: Option<(RegId, Val)>,
}

impl StepResult {
    fn pure(com: Com) -> StepResult {
        StepResult {
            com,
            reg_write: None,
        }
    }
}

/// Prepares the right-hand side of a statement for evaluation: registers
/// resolved, constants folded.
fn prep(e: &Exp, regs: &RegFile) -> Exp {
    fold(&resolve_regs(e, &|r| regs.get(r)))
}

/// The shape of the next step of `c`, or `None` if `c` has terminated.
pub fn step_shape(c: &Com, regs: &RegFile) -> Option<StepShape> {
    match c {
        Com::Skip => None,
        Com::Assign { var, rhs, release } => {
            let rhs = prep(rhs, regs);
            match next_read(&rhs) {
                Some((x, acquire)) => Some(StepShape::Act(ActionShape::Read { var: x, acquire })),
                None => Some(StepShape::Act(ActionShape::Write {
                    var: *var,
                    val: eval_closed(&rhs).expect("closed after prep"),
                    release: *release,
                })),
            }
        }
        Com::Swap { var, new, .. } => {
            let new = prep(new, regs);
            let val = eval_closed(&new)
                .expect("swap argument must not read shared memory (checked by the parser)");
            Some(StepShape::Act(ActionShape::Update {
                var: *var,
                new: val,
            }))
        }
        Com::AssignReg { rhs, .. } => {
            let rhs = prep(rhs, regs);
            match next_read(&rhs) {
                Some((x, acquire)) => Some(StepShape::Act(ActionShape::Read { var: x, acquire })),
                // Completion is silent: registers are thread-local.
                None => Some(StepShape::Tau),
            }
        }
        Com::Seq(a, _) if a.is_terminated() => Some(StepShape::Tau), // skip;C —τ→ C
        Com::Seq(a, _) => step_shape(a, regs),
        Com::If { cond, .. } => {
            let cond = prep(cond, regs);
            match next_read(&cond) {
                Some((x, acquire)) => Some(StepShape::Act(ActionShape::Read { var: x, acquire })),
                None => Some(StepShape::Tau),
            }
        }
        // `while B do C` unfolds silently to `if B then (C ; while B do C)
        // else skip`, so the pristine guard is re-evaluated each iteration.
        Com::While { .. } => Some(StepShape::Tau),
        // A label around a terminated body is consumed silently (this is
        // how `5: skip` — the critical-section marker — takes its step).
        Com::Labeled(_, inner) if inner.is_terminated() => Some(StepShape::Tau),
        Com::Labeled(_, inner) => step_shape(inner, regs),
    }
}

/// Applies a step with label `label` to `c`. Returns `None` if the label
/// does not match the enabled step shape. Read labels are accepted with
/// any value (Proposition 2.2).
pub fn apply_step(c: &Com, label: &StepLabel, regs: &RegFile) -> Option<StepResult> {
    match c {
        Com::Skip => None,
        Com::Assign { var, rhs, release } => {
            let rhs = prep(rhs, regs);
            match (next_read(&rhs), label) {
                (
                    Some((x, acq)),
                    StepLabel::Act(Action::Rd {
                        var: lv,
                        val,
                        acquire,
                    }),
                ) if *lv == x && *acquire == acq => {
                    let rhs2 = fold(&subst_leftmost(&rhs, *val).expect("open rhs"));
                    Some(StepResult::pure(Com::Assign {
                        var: *var,
                        rhs: rhs2,
                        release: *release,
                    }))
                }
                (
                    None,
                    StepLabel::Act(Action::Wr {
                        var: lv,
                        val,
                        release: lr,
                    }),
                ) => {
                    let expect = eval_closed(&rhs).expect("closed after prep");
                    (*lv == *var && *val == expect && *lr == *release)
                        .then(|| StepResult::pure(Com::Skip))
                }
                _ => None,
            }
        }
        Com::Swap { var, new, out } => {
            let new = prep(new, regs);
            let expect = eval_closed(&new)?;
            match label {
                StepLabel::Act(Action::Upd {
                    var: lv,
                    old,
                    new: lnew,
                }) if *lv == *var && *lnew == expect => {
                    Some(StepResult {
                        com: Com::Skip,
                        // exchange result: the value the update read
                        reg_write: out.map(|r| (r, *old)),
                    })
                }
                _ => None,
            }
        }
        Com::AssignReg { reg, rhs } => {
            let rhs = prep(rhs, regs);
            match (next_read(&rhs), label) {
                (
                    Some((x, acq)),
                    StepLabel::Act(Action::Rd {
                        var: lv,
                        val,
                        acquire,
                    }),
                ) if *lv == x && *acquire == acq => {
                    let rhs2 = fold(&subst_leftmost(&rhs, *val).expect("open rhs"));
                    Some(StepResult::pure(Com::AssignReg {
                        reg: *reg,
                        rhs: rhs2,
                    }))
                }
                (None, StepLabel::Tau) => {
                    let val = eval_closed(&rhs).expect("closed after prep");
                    Some(StepResult {
                        com: Com::Skip,
                        reg_write: Some((*reg, val)),
                    })
                }
                _ => None,
            }
        }
        Com::Seq(a, b) if a.is_terminated() => {
            matches!(label, StepLabel::Tau).then(|| StepResult::pure((**b).clone()))
        }
        Com::Seq(a, b) => {
            let res = apply_step(a, label, regs)?;
            Some(StepResult {
                com: Com::seq(res.com, (**b).clone()),
                reg_write: res.reg_write,
            })
        }
        Com::If { cond, then_, else_ } => {
            let cond = prep(cond, regs);
            match (next_read(&cond), label) {
                (
                    Some((x, acq)),
                    StepLabel::Act(Action::Rd {
                        var: lv,
                        val,
                        acquire,
                    }),
                ) if *lv == x && *acquire == acq => {
                    let cond2 = fold(&subst_leftmost(&cond, *val).expect("open cond"));
                    Some(StepResult::pure(Com::If {
                        cond: cond2,
                        then_: then_.clone(),
                        else_: else_.clone(),
                    }))
                }
                (None, StepLabel::Tau) => {
                    let v = eval_closed(&cond).expect("closed after prep");
                    Some(StepResult::pure(if v != 0 {
                        (**then_).clone()
                    } else {
                        (**else_).clone()
                    }))
                }
                _ => None,
            }
        }
        Com::While { cond, body } => matches!(label, StepLabel::Tau).then(|| {
            StepResult::pure(Com::if_(
                cond.clone(),
                Com::seq((**body).clone(), c.clone()),
                Com::Skip,
            ))
        }),
        Com::Labeled(_, inner) if inner.is_terminated() => {
            matches!(label, StepLabel::Tau).then(|| StepResult::pure(Com::Skip))
        }
        Com::Labeled(n, inner) => {
            let res = apply_step(inner, label, regs)?;
            let com = if res.com.is_terminated() {
                Com::Skip
            } else {
                Com::labeled(*n, res.com)
            };
            Some(StepResult {
                com,
                reg_write: res.reg_write,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, VarId};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const R0: RegId = RegId(0);

    fn rd(var: VarId, val: Val) -> StepLabel {
        StepLabel::Act(Action::Rd {
            var,
            val,
            acquire: false,
        })
    }

    fn wr(var: VarId, val: Val, release: bool) -> StepLabel {
        StepLabel::Act(Action::Wr { var, val, release })
    }

    #[test]
    fn closed_assign_is_a_write() {
        let regs = RegFile::new();
        let c = Com::Assign {
            var: X,
            rhs: Exp::Val(5),
            release: false,
        };
        assert_eq!(
            step_shape(&c, &regs),
            Some(StepShape::Act(ActionShape::Write {
                var: X,
                val: 5,
                release: false
            }))
        );
        let res = apply_step(&c, &wr(X, 5, false), &regs).unwrap();
        assert_eq!(res.com, Com::Skip);
        // Mismatched value or release flag is rejected.
        assert!(apply_step(&c, &wr(X, 6, false), &regs).is_none());
        assert!(apply_step(&c, &wr(X, 5, true), &regs).is_none());
    }

    #[test]
    fn open_assign_reads_first() {
        let regs = RegFile::new();
        // x := y + 1
        let c = Com::Assign {
            var: X,
            rhs: Exp::bin(Exp::Var(Y), BinOp::Add, Exp::Val(1)),
            release: true,
        };
        assert_eq!(
            step_shape(&c, &regs),
            Some(StepShape::Act(ActionShape::Read {
                var: Y,
                acquire: false
            }))
        );
        // Any read value is accepted (Prop 2.2); continuation is uniform.
        let r1 = apply_step(&c, &rd(Y, 3), &regs).unwrap();
        let r2 = apply_step(&c, &rd(Y, 9), &regs).unwrap();
        assert_eq!(
            step_shape(&r1.com, &regs),
            Some(StepShape::Act(ActionShape::Write {
                var: X,
                val: 4,
                release: true
            }))
        );
        assert_eq!(
            step_shape(&r2.com, &regs),
            Some(StepShape::Act(ActionShape::Write {
                var: X,
                val: 10,
                release: true
            }))
        );
    }

    #[test]
    fn swap_generates_update() {
        let regs = RegFile::new();
        let c = Com::Swap {
            var: X,
            new: Exp::Val(2),
            out: None,
        };
        assert_eq!(
            step_shape(&c, &regs),
            Some(StepShape::Act(ActionShape::Update { var: X, new: 2 }))
        );
        // Accepts any old value.
        for old in [0, 7, 100] {
            let res = apply_step(
                &c,
                &StepLabel::Act(Action::Upd {
                    var: X,
                    old,
                    new: 2,
                }),
                &regs,
            )
            .unwrap();
            assert_eq!(res.com, Com::Skip);
        }
    }

    #[test]
    fn reg_assign_reads_then_writes_back_silently() {
        let mut regs = RegFile::new();
        let c = Com::AssignReg {
            reg: R0,
            rhs: Exp::Var(X),
        };
        assert_eq!(
            step_shape(&c, &regs),
            Some(StepShape::Act(ActionShape::Read {
                var: X,
                acquire: false
            }))
        );
        let r = apply_step(&c, &rd(X, 42), &regs).unwrap();
        assert_eq!(step_shape(&r.com, &regs), Some(StepShape::Tau));
        let fin = apply_step(&r.com, &StepLabel::Tau, &regs).unwrap();
        assert_eq!(fin.reg_write, Some((R0, 42)));
        regs.set(R0, 42);
        assert_eq!(regs.get(R0), 42);
        assert_eq!(fin.com, Com::Skip);
    }

    #[test]
    fn seq_steps_left_then_consumes_skip() {
        let regs = RegFile::new();
        let c = Com::seq(
            Com::Assign {
                var: X,
                rhs: Exp::Val(1),
                release: false,
            },
            Com::Assign {
                var: Y,
                rhs: Exp::Val(2),
                release: false,
            },
        );
        let r = apply_step(&c, &wr(X, 1, false), &regs).unwrap();
        // skip ; (y := 2) —τ→ (y := 2)
        assert_eq!(step_shape(&r.com, &regs), Some(StepShape::Tau));
        let r2 = apply_step(&r.com, &StepLabel::Tau, &regs).unwrap();
        assert_eq!(
            step_shape(&r2.com, &regs),
            Some(StepShape::Act(ActionShape::Write {
                var: Y,
                val: 2,
                release: false
            }))
        );
    }

    #[test]
    fn if_evaluates_guard_then_branches() {
        let regs = RegFile::new();
        let c = Com::if_(
            Exp::bin(Exp::Var(X), BinOp::Eq, Exp::Val(1)),
            Com::Assign {
                var: Y,
                rhs: Exp::Val(10),
                release: false,
            },
            Com::Skip,
        );
        let r = apply_step(&c, &rd(X, 1), &regs).unwrap();
        assert_eq!(step_shape(&r.com, &regs), Some(StepShape::Tau));
        let taken = apply_step(&r.com, &StepLabel::Tau, &regs).unwrap();
        assert!(matches!(taken.com, Com::Assign { .. }));

        let r = apply_step(&c, &rd(X, 0), &regs).unwrap();
        let not_taken = apply_step(&r.com, &StepLabel::Tau, &regs).unwrap();
        assert_eq!(not_taken.com, Com::Skip);
    }

    #[test]
    fn while_restores_pristine_guard_each_iteration() {
        let regs = RegFile::new();
        // while (x == 0) do skip
        let guard = Exp::bin(Exp::Var(X), BinOp::Eq, Exp::Val(0));
        let w = Com::while_(guard.clone(), Com::Skip);
        // Unfold.
        let unfolded = apply_step(&w, &StepLabel::Tau, &regs).unwrap().com;
        // Read guard true → loop body; after body the guard must be open
        // again (pristine), not the substituted one.
        let after_read = apply_step(&unfolded, &rd(X, 0), &regs).unwrap().com;
        let into_body = apply_step(&after_read, &StepLabel::Tau, &regs).unwrap().com;
        // into_body = skip ; while (x == 0) skip
        let back_to_loop = apply_step(&into_body, &StepLabel::Tau, &regs).unwrap().com;
        assert_eq!(back_to_loop, w);
    }

    #[test]
    fn labeled_skip_takes_a_silent_step() {
        let regs = RegFile::new();
        let c = Com::labeled(5, Com::Skip);
        assert_eq!(c.pc(), Some(5));
        assert_eq!(step_shape(&c, &regs), Some(StepShape::Tau));
        let r = apply_step(&c, &StepLabel::Tau, &regs).unwrap();
        assert_eq!(r.com, Com::Skip);
    }

    #[test]
    fn label_is_dropped_when_body_terminates() {
        let regs = RegFile::new();
        let c = Com::labeled(
            2,
            Com::Assign {
                var: X,
                rhs: Exp::Val(1),
                release: false,
            },
        );
        assert_eq!(c.pc(), Some(2));
        let r = apply_step(&c, &wr(X, 1, false), &regs).unwrap();
        assert_eq!(r.com, Com::Skip);
    }

    #[test]
    fn terminated_command_has_no_step() {
        let regs = RegFile::new();
        assert_eq!(step_shape(&Com::Skip, &regs), None);
        assert!(apply_step(&Com::Skip, &StepLabel::Tau, &regs).is_none());
    }

    #[test]
    fn register_values_feed_subsequent_statements() {
        let mut regs = RegFile::new();
        regs.set(R0, 41);
        // x := r0 + 1 — closed after register resolution, writes 42.
        let c = Com::Assign {
            var: X,
            rhs: Exp::bin(Exp::Reg(R0), BinOp::Add, Exp::Val(1)),
            release: false,
        };
        assert_eq!(
            step_shape(&c, &regs),
            Some(StepShape::Act(ActionShape::Write {
                var: X,
                val: 42,
                release: false
            }))
        );
    }

    #[test]
    fn shortcircuit_guard_skips_second_read() {
        let regs = RegFile::new();
        // if (x == 1 && y == 1) ... — reading x = 0 decides the guard.
        let guard = Exp::bin(
            Exp::bin(Exp::Var(X), BinOp::Eq, Exp::Val(1)),
            BinOp::And,
            Exp::bin(Exp::Var(Y), BinOp::Eq, Exp::Val(1)),
        );
        let c = Com::if_(guard, Com::Skip, Com::Skip);
        let r = apply_step(&c, &rd(X, 0), &regs).unwrap();
        // Guard decided: next step is the τ branch, no read of y.
        assert_eq!(step_shape(&r.com, &regs), Some(StepShape::Tau));
    }
}
