//! Expression evaluation (paper Figure 1).
//!
//! Evaluation is syntax-directed and proceeds left to right: the *leftmost*
//! shared-variable occurrence is read first, and each occurrence generates
//! its own read action. After every substitution the expression is constant
//! folded; folding short-circuits `&&` / `||` whose outcome is already
//! decided, which reproduces the sequential two-test reading of Algorithm
//! 1's guard used in the paper's Appendix D proof.

use crate::ast::{BinOp, Exp, RegId, UnOp, Val, VarId};

/// Replaces every register occurrence by its current value. Registers are
/// thread-local, so this incurs no memory action.
pub fn resolve_regs(e: &Exp, regs: &impl Fn(RegId) -> Val) -> Exp {
    match e {
        Exp::Val(_) | Exp::Var(_) | Exp::VarA(_) => e.clone(),
        Exp::Reg(r) => Exp::Val(regs(*r)),
        Exp::Un(op, inner) => Exp::Un(*op, Box::new(resolve_regs(inner, regs))),
        Exp::Bin(a, op, b) => Exp::bin(resolve_regs(a, regs), *op, resolve_regs(b, regs)),
    }
}

/// Constant folding with short-circuiting of decided `&&` / `||`.
pub fn fold(e: &Exp) -> Exp {
    match e {
        Exp::Val(_) | Exp::Var(_) | Exp::VarA(_) | Exp::Reg(_) => e.clone(),
        Exp::Un(op, inner) => {
            let inner = fold(inner);
            match (op, &inner) {
                (UnOp::Not, Exp::Val(v)) => Exp::Val(if *v == 0 { 1 } else { 0 }),
                _ => Exp::Un(*op, Box::new(inner)),
            }
        }
        Exp::Bin(a, op, b) => {
            let a = fold(a);
            // Short-circuit before folding the right operand so a decided
            // guard stops generating reads.
            match (op, &a) {
                (BinOp::And, Exp::Val(0)) => return Exp::Val(0),
                (BinOp::Or, Exp::Val(v)) if *v != 0 => return Exp::Val(1),
                _ => {}
            }
            let b = fold(b);
            match (&a, &b) {
                (Exp::Val(va), Exp::Val(vb)) => Exp::Val(op.apply(*va, *vb)),
                _ => Exp::bin(a, *op, b),
            }
        }
    }
}

/// The leftmost shared-variable occurrence still to be read, if any.
/// Returns the variable and whether the occurrence is acquiring.
pub fn next_read(e: &Exp) -> Option<(VarId, bool)> {
    match e {
        Exp::Val(_) | Exp::Reg(_) => None,
        Exp::Var(x) => Some((*x, false)),
        Exp::VarA(x) => Some((*x, true)),
        Exp::Un(_, inner) => next_read(inner),
        Exp::Bin(a, _, b) => next_read(a).or_else(|| next_read(b)),
    }
}

/// Substitutes `val` for the *leftmost* shared-variable occurrence.
/// Returns `None` if the expression is closed.
pub fn subst_leftmost(e: &Exp, val: Val) -> Option<Exp> {
    match e {
        Exp::Val(_) | Exp::Reg(_) => None,
        Exp::Var(_) | Exp::VarA(_) => Some(Exp::Val(val)),
        Exp::Un(op, inner) => subst_leftmost(inner, val).map(|i| Exp::Un(*op, Box::new(i))),
        Exp::Bin(a, op, b) => {
            if let Some(a2) = subst_leftmost(a, val) {
                Some(Exp::bin(a2, *op, (**b).clone()))
            } else {
                subst_leftmost(b, val).map(|b2| Exp::bin((**a).clone(), *op, b2))
            }
        }
    }
}

/// Evaluates a closed expression (paper `[[E]]`). Returns `None` if the
/// expression still mentions a shared variable or register.
pub fn eval_closed(e: &Exp) -> Option<Val> {
    match e {
        Exp::Val(v) => Some(*v),
        Exp::Var(_) | Exp::VarA(_) | Exp::Reg(_) => None,
        Exp::Un(UnOp::Not, inner) => eval_closed(inner).map(|v| if v == 0 { 1 } else { 0 }),
        Exp::Bin(a, op, b) => {
            // NB: no short-circuit here; closed expressions have no effects.
            let va = eval_closed(a)?;
            let vb = eval_closed(b)?;
            Some(op.apply(va, vb))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);

    fn var(x: VarId) -> Exp {
        Exp::Var(x)
    }

    #[test]
    fn fold_constants() {
        let e = Exp::bin(Exp::Val(2), BinOp::Add, Exp::Val(3));
        assert_eq!(fold(&e), Exp::Val(5));
        assert_eq!(fold(&Exp::not(Exp::Val(0))), Exp::Val(1));
        assert_eq!(fold(&Exp::not(Exp::Val(7))), Exp::Val(0));
    }

    #[test]
    fn fold_shortcircuits_and() {
        // (0 && y): decided false without reading y.
        let e = Exp::bin(Exp::Val(0), BinOp::And, var(Y));
        assert_eq!(fold(&e), Exp::Val(0));
        // (1 && y): still needs y.
        let e = Exp::bin(Exp::Val(1), BinOp::And, var(Y));
        assert!(next_read(&fold(&e)).is_some());
    }

    #[test]
    fn fold_shortcircuits_or() {
        let e = Exp::bin(Exp::Val(3), BinOp::Or, var(Y));
        assert_eq!(fold(&e), Exp::Val(1));
        let e = Exp::bin(Exp::Val(0), BinOp::Or, var(Y));
        assert!(next_read(&fold(&e)).is_some());
    }

    #[test]
    fn next_read_is_leftmost() {
        let e = Exp::bin(var(Y), BinOp::Add, Exp::VarA(X));
        assert_eq!(next_read(&e), Some((Y, false)));
        let e2 = Exp::bin(Exp::Val(1), BinOp::Add, Exp::VarA(X));
        assert_eq!(next_read(&e2), Some((X, true)));
        assert_eq!(next_read(&Exp::Val(3)), None);
    }

    #[test]
    fn subst_replaces_only_leftmost() {
        // x + x: substituting 5 touches only the first occurrence, so the
        // two occurrences may read different values (two loads).
        let e = Exp::bin(var(X), BinOp::Add, var(X));
        let e2 = subst_leftmost(&e, 5).unwrap();
        assert_eq!(e2, Exp::bin(Exp::Val(5), BinOp::Add, var(X)));
        let e3 = subst_leftmost(&e2, 7).unwrap();
        assert_eq!(fold(&e3), Exp::Val(12));
    }

    #[test]
    fn subst_closed_is_none() {
        assert_eq!(subst_leftmost(&Exp::Val(4), 1), None);
    }

    #[test]
    fn resolve_regs_substitutes_all() {
        let r0 = RegId(0);
        let e = Exp::bin(Exp::Reg(r0), BinOp::Add, Exp::Reg(r0));
        let resolved = resolve_regs(&e, &|_r| 21);
        assert_eq!(eval_closed(&fold(&resolved)), Some(42));
    }

    #[test]
    fn eval_closed_rejects_open() {
        assert_eq!(eval_closed(&var(X)), None);
        assert_eq!(eval_closed(&Exp::Reg(RegId(0))), None);
        assert_eq!(
            eval_closed(&Exp::bin(Exp::Val(6), BinOp::Mul, Exp::Val(7))),
            Some(42)
        );
    }

    #[test]
    fn left_to_right_evaluation_order() {
        // ((x + y) + x): reads are x, then y, then x again.
        let e = Exp::bin(Exp::bin(var(X), BinOp::Add, var(Y)), BinOp::Add, var(X));
        let mut order = Vec::new();
        let mut cur = e;
        while let Some((v, _)) = next_read(&cur) {
            order.push(v);
            cur = fold(&subst_leftmost(&cur, 1).unwrap());
        }
        assert_eq!(order, vec![X, Y, X]);
        assert_eq!(eval_closed(&cur), Some(3));
    }
}
