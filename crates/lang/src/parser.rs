//! A small text syntax for programs, used by litmus tests, examples and the
//! documentation.
//!
//! ```text
//! vars d f;                       // shared variables, default-initialised 0
//! thread t1 { d := 5; f :=R 1; }  // :=  relaxed write, :=R release write
//! thread t2 {
//!     do { r0 <-A f; } while (r0 == 0);  // r <-A x : acquire read into reg
//!     r1 <- d;                          // r <- E  : relaxed reads
//! }
//! ```
//!
//! Grammar summary:
//!
//! * `vars x y=1 z;` — declarations with optional initial values.
//! * statements: `skip;`, `x := E;`, `x :=R E;`, `x.swap(E);`, `r0 <- E;`,
//!   `r0 <-A x;` (sugar for `r0 <- acq(x)`), `if (E) { .. } else { .. }`,
//!   `while (E) { .. }`, `do { .. } while (E);`, and `N: stmt` labels.
//! * expressions: `||`, `&&`, comparisons, `+ - *`, `!`, literals,
//!   registers `rN`, shared variables, `acq(x)` for acquire reads,
//!   parentheses. `true`/`false` are sugar for `1`/`0`.
//! * `//` line comments.

use crate::ast::{BinOp, Com, Exp, Prog, RegId, Val, VarId};

/// A parse error with a human-readable message and source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based source line.
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(Val),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

const SYMBOLS: &[&str] = &[
    ":=R", ":=", "<-A", "<-", "==", "!=", "<=", ">=", "&&", "||", "{", "}", "(", ")", ";", ":",
    ".", ",", "+", "-", "*", "<", ">", "!", "=",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        for sym in SYMBOLS {
            if src[i..].starts_with(sym) {
                toks.push((Tok::Sym(sym), line));
                i += sym.len();
                continue 'outer;
            }
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: Val = src[start..i].parse().map_err(|_| ParseError {
                msg: format!("number too large: {}", &src[start..i]),
                line,
            })?;
            toks.push((Tok::Num(n), line));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            toks.push((Tok::Ident(src[start..i].to_string()), line));
            continue;
        }
        return Err(ParseError {
            msg: format!("unexpected character {c:?}"),
            line,
        });
    }
    Ok(toks)
}

struct Parser {
    lx: Lexer,
    vars: Vec<(String, Val)>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.lx.toks.get(self.lx.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.lx
            .toks
            .get(self.lx.pos.min(self.lx.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.lx.toks.get(self.lx.pos).map(|(t, _)| t.clone());
        self.lx.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn expect_sym(&mut self, sym: &'static str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => self.err(format!("expected `{sym}`, found {other:?}")),
        }
    }

    fn eat_sym(&mut self, sym: &'static str) -> bool {
        if self.peek() == Some(&Tok::Sym(sym)) {
            self.lx.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn lookup_var(&mut self, name: &str) -> Result<VarId, ParseError> {
        match self.vars.iter().position(|(n, _)| n == name) {
            Some(i) => Ok(VarId(i as u8)),
            None => self.err(format!("undeclared variable `{name}`")),
        }
    }

    /// Register names are `r` followed by digits; they are thread-local and
    /// need no declaration.
    fn as_reg(name: &str) -> Option<RegId> {
        let digits = name.strip_prefix('r')?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u8>().ok().map(RegId)
    }

    fn parse_program(&mut self) -> Result<Prog, ParseError> {
        let mut threads = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(Tok::Ident(kw)) if kw == "vars" => {
                    self.bump();
                    self.parse_var_decls()?;
                }
                Some(Tok::Ident(kw)) if kw == "thread" => {
                    self.bump();
                    let _name = self.expect_ident()?;
                    self.expect_sym("{")?;
                    let body = self.parse_block_body()?;
                    threads.push(body);
                }
                other => return self.err(format!("expected `vars` or `thread`, found {other:?}")),
            }
        }
        if threads.is_empty() {
            return self.err("program has no threads");
        }
        Ok(Prog::new(std::mem::take(&mut self.vars), threads))
    }

    fn parse_var_decls(&mut self) -> Result<(), ParseError> {
        loop {
            match self.bump() {
                Some(Tok::Ident(name)) => {
                    if Self::as_reg(&name).is_some() {
                        return self.err(format!(
                            "`{name}` looks like a register; shared variables may not be named rN"
                        ));
                    }
                    let init = if self.eat_sym("=") {
                        match self.bump() {
                            Some(Tok::Num(n)) => n,
                            other => {
                                return self.err(format!("expected initial value, found {other:?}"))
                            }
                        }
                    } else {
                        0
                    };
                    if self.vars.iter().any(|(n, _)| *n == name) {
                        return self.err(format!("duplicate variable `{name}`"));
                    }
                    self.vars.push((name, init));
                    // optional comma between declarations
                    self.eat_sym(",");
                }
                Some(Tok::Sym(";")) => return Ok(()),
                other => return self.err(format!("expected variable name, found {other:?}")),
            }
        }
    }

    /// Parses statements until the closing `}` (consumed).
    fn parse_block_body(&mut self) -> Result<Com, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Com::block(stmts))
    }

    fn parse_block(&mut self) -> Result<Com, ParseError> {
        self.expect_sym("{")?;
        self.parse_block_body()
    }

    fn parse_stmt(&mut self) -> Result<Com, ParseError> {
        // Optional `N:` label.
        if let Some(Tok::Num(n)) = self.peek() {
            let n = *n;
            let save = self.lx.pos;
            self.bump();
            if self.eat_sym(":") {
                let inner = self.parse_stmt()?;
                return Ok(Com::labeled(n, inner));
            }
            self.lx.pos = save;
        }
        match self.peek().cloned() {
            Some(Tok::Ident(kw)) if kw == "skip" => {
                self.bump();
                self.expect_sym(";")?;
                Ok(Com::Skip)
            }
            Some(Tok::Ident(kw)) if kw == "if" => {
                self.bump();
                self.expect_sym("(")?;
                let cond = self.parse_exp()?;
                self.expect_sym(")")?;
                let then_ = self.parse_block()?;
                let else_ = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else") {
                    self.bump();
                    self.parse_block()?
                } else {
                    Com::Skip
                };
                Ok(Com::if_(cond, then_, else_))
            }
            Some(Tok::Ident(kw)) if kw == "while" => {
                self.bump();
                self.expect_sym("(")?;
                let cond = self.parse_exp()?;
                self.expect_sym(")")?;
                let body = self.parse_block()?;
                Ok(Com::while_(cond, body))
            }
            Some(Tok::Ident(kw)) if kw == "do" => {
                self.bump();
                let body = self.parse_block()?;
                match self.bump() {
                    Some(Tok::Ident(k)) if k == "while" => {}
                    other => return self.err(format!("expected `while`, found {other:?}")),
                }
                self.expect_sym("(")?;
                let cond = self.parse_exp()?;
                self.expect_sym(")")?;
                self.expect_sym(";")?;
                // do C while (B)  ≡  C ; while (B) C
                Ok(Com::seq(body.clone(), Com::while_(cond, body)))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if let Some(reg) = Self::as_reg(&name) {
                    // r <- E   or   r <-A x
                    if self.eat_sym("<-A") {
                        let var_name = self.expect_ident()?;
                        let var = self.lookup_var(&var_name)?;
                        self.expect_sym(";")?;
                        Ok(Com::AssignReg {
                            reg,
                            rhs: Exp::VarA(var),
                        })
                    } else if self.eat_sym("<-") {
                        // Two-token lookahead: `r <- x.swap(E);` is an
                        // atomic exchange into the register.
                        let save = self.lx.pos;
                        if let Some(Tok::Ident(name)) = self.peek().cloned() {
                            self.bump();
                            if self.eat_sym(".") {
                                let var = self.lookup_var(&name)?;
                                let m = self.expect_ident()?;
                                if m != "swap" {
                                    return self
                                        .err(format!("unknown method `{m}` (expected `swap`)"));
                                }
                                self.expect_sym("(")?;
                                let new = self.parse_exp()?;
                                self.expect_sym(")")?;
                                self.expect_sym(";")?;
                                if !new.is_closed() {
                                    return self.err("swap argument may not read shared memory");
                                }
                                return Ok(Com::Swap {
                                    var,
                                    new,
                                    out: Some(reg),
                                });
                            }
                            self.lx.pos = save;
                        }
                        let rhs = self.parse_exp()?;
                        self.expect_sym(";")?;
                        Ok(Com::AssignReg { reg, rhs })
                    } else {
                        self.err("expected `<-` or `<-A` after register")
                    }
                } else {
                    let var = self.lookup_var(&name)?;
                    if self.eat_sym(".") {
                        // x.swap(E);
                        let m = self.expect_ident()?;
                        if m != "swap" {
                            return self.err(format!("unknown method `{m}` (expected `swap`)"));
                        }
                        self.expect_sym("(")?;
                        let new = self.parse_exp()?;
                        self.expect_sym(")")?;
                        self.expect_sym(";")?;
                        if !new.is_closed() {
                            return self.err(
                                "swap argument may not read shared memory (paper: x.swap(n))",
                            );
                        }
                        Ok(Com::Swap {
                            var,
                            new,
                            out: None,
                        })
                    } else if self.eat_sym(":=R") {
                        let rhs = self.parse_exp()?;
                        self.expect_sym(";")?;
                        Ok(Com::Assign {
                            var,
                            rhs,
                            release: true,
                        })
                    } else if self.eat_sym(":=") {
                        let rhs = self.parse_exp()?;
                        self.expect_sym(";")?;
                        Ok(Com::Assign {
                            var,
                            rhs,
                            release: false,
                        })
                    } else {
                        self.err("expected `:=`, `:=R` or `.swap(..)` after variable")
                    }
                }
            }
            other => self.err(format!("expected statement, found {other:?}")),
        }
    }

    fn parse_exp(&mut self) -> Result<Exp, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_sym("||") {
            let rhs = self.parse_and()?;
            lhs = Exp::bin(lhs, BinOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_sym("&&") {
            let rhs = self.parse_cmp()?;
            lhs = Exp::bin(lhs, BinOp::And, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Exp, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => BinOp::Eq,
            Some(Tok::Sym("!=")) => BinOp::Ne,
            Some(Tok::Sym("<=")) => BinOp::Le,
            Some(Tok::Sym(">=")) => BinOp::Ge,
            Some(Tok::Sym("<")) => BinOp::Lt,
            Some(Tok::Sym(">")) => BinOp::Gt,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Exp::bin(lhs, op, rhs))
    }

    fn parse_add(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Exp::bin(lhs, op, rhs);
        }
    }

    fn parse_mul(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.eat_sym("*") {
            let rhs = self.parse_unary()?;
            lhs = Exp::bin(lhs, BinOp::Mul, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Exp, ParseError> {
        if self.eat_sym("!") {
            return Ok(Exp::not(self.parse_unary()?));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Exp, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Exp::Val(n)),
            Some(Tok::Sym("(")) => {
                let e = self.parse_exp()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "true" => Ok(Exp::Val(1)),
            Some(Tok::Ident(name)) if name == "false" => Ok(Exp::Val(0)),
            Some(Tok::Ident(name)) if name == "acq" => {
                self.expect_sym("(")?;
                let var_name = self.expect_ident()?;
                let var = self.lookup_var(&var_name)?;
                self.expect_sym(")")?;
                Ok(Exp::VarA(var))
            }
            Some(Tok::Ident(name)) => {
                if let Some(reg) = Self::as_reg(&name) {
                    Ok(Exp::Reg(reg))
                } else {
                    Ok(Exp::Var(self.lookup_var(&name)?))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parses a program in the DSL described in the module docs.
///
/// ```
/// use c11_lang::parse_program;
/// let prog = parse_program(
///     "vars x y=1;
///      thread t1 { x := 2; r0 <-A y; }",
/// ).unwrap();
/// assert_eq!(prog.num_vars(), 2);
/// assert_eq!(prog.inits, vec![0, 1]);
/// ```
pub fn parse_program(src: &str) -> Result<Prog, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        lx: Lexer { toks, pos: 0 },
        vars: Vec::new(),
    };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ThreadId;

    #[test]
    fn parses_message_passing() {
        let p = parse_program(
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { do { r0 <-A f; } while (r0 == 0); r1 <- d; }",
        )
        .unwrap();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.var("d"), Some(VarId(0)));
        assert_eq!(p.var("f"), Some(VarId(1)));
        // Thread 1: d := 5 ; f :=R 1
        match p.thread(ThreadId(1)) {
            Com::Seq(a, b) => {
                assert!(matches!(**a, Com::Assign { release: false, .. }));
                assert!(matches!(**b, Com::Assign { release: true, .. }));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_initial_values() {
        let p = parse_program("vars x=3 y, z=7; thread t { x := 1; }").unwrap();
        assert_eq!(p.inits, vec![3, 0, 7]);
    }

    #[test]
    fn parses_swap_and_labels() {
        let p = parse_program(
            "vars turn flag1;
             thread t1 {
               2: flag1 := true;
               3: turn.swap(2);
             }",
        )
        .unwrap();
        let c = p.thread(ThreadId(1));
        assert_eq!(c.pc(), Some(2));
        match c {
            Com::Seq(a, b) => {
                assert_eq!(a.pc(), Some(2));
                assert_eq!(b.pc(), Some(3));
                assert!(matches!(**b, Com::Labeled(3, ref inner)
                    if matches!(**inner, Com::Swap { .. })));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn swap_rejects_shared_read_argument() {
        let err = parse_program("vars x y; thread t { x.swap(y); }").unwrap_err();
        assert!(err.msg.contains("swap argument"));
    }

    #[test]
    fn acquire_read_forms() {
        let p = parse_program(
            "vars f;
             thread t { r0 <-A f; r1 <- acq(f) + 1; }",
        )
        .unwrap();
        match p.thread(ThreadId(1)) {
            Com::Seq(a, b) => {
                assert!(matches!(
                    **a,
                    Com::AssignReg {
                        rhs: Exp::VarA(_),
                        ..
                    }
                ));
                assert!(matches!(**b, Com::AssignReg { .. }));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let err = parse_program("vars x; thread t { y := 1; }").unwrap_err();
        assert!(err.msg.contains("undeclared"));
    }

    #[test]
    fn duplicate_variable_is_an_error() {
        let err = parse_program("vars x x; thread t { x := 1; }").unwrap_err();
        assert!(err.msg.contains("duplicate"));
    }

    #[test]
    fn reserved_register_names() {
        let err = parse_program("vars r1; thread t { r1 := 1; }").unwrap_err();
        assert!(err.msg.contains("register"));
    }

    #[test]
    fn if_else_and_comments() {
        let p = parse_program(
            "vars x y; // declarations
             thread t {
               if (x == 1) { y := 1; } else { y := 2; } // branch
             }",
        )
        .unwrap();
        assert!(matches!(p.thread(ThreadId(1)), Com::If { .. }));
    }

    #[test]
    fn while_and_expressions() {
        let p = parse_program(
            "vars x y;
             thread t {
               while (!(x == 1) && y <= 3 || x > 2) { skip; }
             }",
        )
        .unwrap();
        assert!(matches!(p.thread(ThreadId(1)), Com::While { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("vars x;\nthread t {\n  x ::= 1;\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(parse_program("vars x;").is_err());
        assert!(parse_program("").is_err());
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 == 7 parses as ((1 + (2*3)) == 7).
        let p = parse_program("vars x; thread t { r0 <- 1 + 2 * 3 == 7; }").unwrap();
        match p.thread(ThreadId(1)) {
            Com::AssignReg { rhs, .. } => {
                assert_eq!(crate::eval::eval_closed(rhs), Some(1));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn exchange_into_register() {
        let p = parse_program("vars l; thread t { r0 <- l.swap(1); }").unwrap();
        match p.thread(ThreadId(1)) {
            Com::Swap { out, .. } => assert_eq!(*out, Some(crate::ast::RegId(0))),
            other => panic!("unexpected shape: {other:?}"),
        }
        // Rollback path: `r0 <- l + 1;` still parses as a register read.
        let p = parse_program("vars l; thread t { r0 <- l + 1; }").unwrap();
        assert!(matches!(p.thread(ThreadId(1)), Com::AssignReg { .. }));
    }

    /// The parser returns errors — never panics — on arbitrary input.
    #[test]
    fn parser_never_panics_on_garbage() {
        let samples = [
            "thread",
            "vars ; thread t { }",
            "thread t { x := ; }",
            "vars x; thread t { x.swap; }",
            "vars x; thread t { r0 <- x.swip(1); }",
            "vars x; thread t { if (x { skip; } }",
            "vars x; thread t { while () {} }",
            "vars x; thread t { 12345678901234567890: skip; }",
            "ยูนิโค้ด",
            "vars x; thread t { r0 <-A 5; }",
            "}{)(",
            "vars x; thread t { do { skip; } while; }",
        ];
        for s in samples {
            let _ = parse_program(s); // must not panic
        }
        // Pseudo-random byte soup.
        let mut seed = 0x12345678u64;
        for _ in 0..500 {
            let mut src = String::new();
            for _ in 0..40 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (seed >> 33) as u8;
                src.push((b % 94 + 32) as char);
            }
            let _ = parse_program(&src);
        }
    }
}
