//! Abstract syntax for expressions, commands and programs (paper §2.1).

/// A shared-memory variable, interned by the program that declares it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u8);

/// A thread-local register (an extension over the paper; see crate docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u8);

/// Values are unsigned machine integers; `0` is boolean false, anything
/// else is true (canonical true is `1`).
pub type Val = u32;

/// A thread identifier. Thread `0` is the special initialising thread of
/// the paper; program threads are numbered from `1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// The initialising thread (paper: `0 ∈ T`).
    pub const INIT: ThreadId = ThreadId(0);

    /// `true` for the initialising thread.
    pub fn is_init(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Debug for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Debug for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation: `!0 = 1`, `!n = 0` for `n ≠ 0`.
    Not,
}

/// Binary operators. Arithmetic wraps; comparisons and logic return `0`/`1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Applies the operator to closed values.
    pub fn apply(self, a: Val, b: Val) -> Val {
        let bool2val = |b: bool| if b { 1 } else { 0 };
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Eq => bool2val(a == b),
            BinOp::Ne => bool2val(a != b),
            BinOp::Lt => bool2val(a < b),
            BinOp::Le => bool2val(a <= b),
            BinOp::Gt => bool2val(a > b),
            BinOp::Ge => bool2val(a >= b),
            BinOp::And => bool2val(a != 0 && b != 0),
            BinOp::Or => bool2val(a != 0 || b != 0),
        }
    }
}

/// Expressions (paper grammar `Exp`), extended with registers.
///
/// `Var` is a relaxed read of a shared variable; `VarA` is an acquire read
/// (written `x^A` in the paper, `acq(x)` in the DSL).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Exp {
    /// A literal value.
    Val(Val),
    /// A relaxed read of a shared variable.
    Var(VarId),
    /// An acquire read of a shared variable (`Exp^A`).
    VarA(VarId),
    /// A thread-local register (extension; resolved without a memory event).
    Reg(RegId),
    /// Unary operator application.
    Un(UnOp, Box<Exp>),
    /// Binary operator application; operands evaluate left to right.
    Bin(Box<Exp>, BinOp, Box<Exp>),
}

impl Exp {
    /// Convenience constructor for binary expressions.
    pub fn bin(lhs: Exp, op: BinOp, rhs: Exp) -> Exp {
        Exp::Bin(Box::new(lhs), op, Box::new(rhs))
    }

    /// Convenience constructor for logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Exp) -> Exp {
        Exp::Un(UnOp::Not, Box::new(e))
    }

    /// `true` iff the expression contains no shared-variable occurrence
    /// (registers do not count: they resolve without memory events).
    /// This is the paper's `fv(E) = ∅` test.
    pub fn is_closed(&self) -> bool {
        match self {
            Exp::Val(_) | Exp::Reg(_) => true,
            Exp::Var(_) | Exp::VarA(_) => false,
            Exp::Un(_, e) => e.is_closed(),
            Exp::Bin(a, _, b) => a.is_closed() && b.is_closed(),
        }
    }

    /// Collects the free shared variables (the paper's `fv(E)`).
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Exp::Val(_) | Exp::Reg(_) => {}
            Exp::Var(x) | Exp::VarA(x) => {
                if !out.contains(x) {
                    out.push(*x);
                }
            }
            Exp::Un(_, e) => e.free_vars(out),
            Exp::Bin(a, _, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

/// Commands (paper grammar `Com`), extended with registers and labels.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Com {
    /// The terminated / no-op command.
    Skip,
    /// `x := E` (relaxed) or `x :=R E` (release) — a write once `E` is
    /// closed; read steps while `E` still mentions shared variables.
    Assign { var: VarId, rhs: Exp, release: bool },
    /// `x.swap(E)^RA` — an atomic release-acquire read-modify-write that
    /// overwrites `x` with the value of `E`. The paper writes a literal
    /// `n`; we allow any *register-closed* expression (no shared reads),
    /// which degenerates to the paper's form when no registers occur.
    /// `out`, when present, receives the value the update read
    /// (`r <- x.swap(E)` in the DSL) — the standard atomic-exchange
    /// return value, silently written back like a register assignment.
    Swap {
        var: VarId,
        new: Exp,
        out: Option<RegId>,
    },
    /// `r <- E` — register assignment (extension). Generates read actions
    /// while `E` mentions shared variables, then silently stores the value.
    AssignReg { reg: RegId, rhs: Exp },
    /// Sequential composition `C1 ; C2`.
    Seq(Box<Com>, Box<Com>),
    /// `if B then C1 else C2`.
    If {
        cond: Exp,
        then_: Box<Com>,
        else_: Box<Com>,
    },
    /// `while B do C`. Unfolds (by a silent step) to
    /// `if B then (C ; while B do C) else skip`, so the original guard is
    /// re-evaluated afresh on every iteration.
    While { cond: Exp, body: Box<Com> },
    /// A labelled statement: carries the line number used by the auxiliary
    /// program-counter function `P.pc_t` of the Section 5 verification.
    Labeled(u32, Box<Com>),
}

impl Com {
    /// `C1 ; C2`, flattening `skip` on the left eagerly is *not* done here —
    /// the semantics consumes it with a silent step, as in Figure 2.
    pub fn seq(a: Com, b: Com) -> Com {
        Com::Seq(Box::new(a), Box::new(b))
    }

    /// Sequences a list of commands.
    pub fn block<I: IntoIterator<Item = Com>>(cmds: I) -> Com {
        let mut iter = cmds.into_iter();
        let first = iter.next().unwrap_or(Com::Skip);
        iter.fold(first, Com::seq)
    }

    /// `if B then C1 else C2`.
    pub fn if_(cond: Exp, then_: Com, else_: Com) -> Com {
        Com::If {
            cond,
            then_: Box::new(then_),
            else_: Box::new(else_),
        }
    }

    /// `while B do C`.
    pub fn while_(cond: Exp, body: Com) -> Com {
        Com::While {
            cond,
            body: Box::new(body),
        }
    }

    /// Labels a statement with a line number.
    pub fn labeled(pc: u32, inner: Com) -> Com {
        Com::Labeled(pc, Box::new(inner))
    }

    /// `true` iff the command is (structurally) terminated.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Com::Skip)
    }

    /// The auxiliary program counter: the label of the leftmost active
    /// statement, if any. Mirrors the paper's `P.pc_t`, which "returns `i`
    /// when `P(t)` is the part of the program starting on line `i`".
    ///
    /// A `while` loop whose body starts at line `i` reports `i` (the
    /// thread is "at" the loop head, as in Algorithm 1's outer loop). An
    /// *unlabelled* `if` reports no line: the thread has not yet entered
    /// either branch, so branch-local labels (e.g. a critical-section
    /// marker) must not leak out of it.
    pub fn pc(&self) -> Option<u32> {
        match self {
            Com::Labeled(n, _) => Some(*n),
            Com::Seq(a, b) => a.pc().or_else(|| b.pc()),
            Com::While { body, .. } => body.pc(),
            _ => None,
        }
    }

    /// Number of AST nodes — used as a fuzzing size metric.
    pub fn size(&self) -> usize {
        match self {
            Com::Skip => 1,
            Com::Assign { .. } | Com::Swap { .. } | Com::AssignReg { .. } => 1,
            Com::Seq(a, b) => 1 + a.size() + b.size(),
            Com::If { then_, else_, .. } => 1 + then_.size() + else_.size(),
            Com::While { body, .. } => 1 + body.size(),
            Com::Labeled(_, c) => c.size(),
        }
    }
}

/// A program: initialised shared variables plus one command per thread
/// (paper: `Prog : T → Com`, concurrency at the top level only).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Prog {
    /// Initial value of each shared variable, indexed by `VarId`.
    pub inits: Vec<Val>,
    /// Human-readable variable names (same indexing).
    pub var_names: Vec<String>,
    /// Thread bodies. `threads[i]` is thread `i + 1` (thread 0 initialises).
    pub threads: Vec<Com>,
}

impl Prog {
    /// Builds a program from initialised variables and thread bodies.
    pub fn new(vars: Vec<(String, Val)>, threads: Vec<Com>) -> Prog {
        let (var_names, inits) = vars.into_iter().unzip();
        Prog {
            inits,
            var_names,
            threads,
        }
    }

    /// Number of shared variables.
    pub fn num_vars(&self) -> usize {
        self.inits.len()
    }

    /// Number of (non-initialising) threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Looks up a variable id by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u8))
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// The command of thread `t` (1-based; panics for the init thread).
    pub fn thread(&self, t: ThreadId) -> &Com {
        assert!(!t.is_init(), "init thread has no command");
        &self.threads[t.0 as usize - 1]
    }

    /// Iterates `(ThreadId, &Com)` over program threads.
    pub fn thread_iter(&self) -> impl Iterator<Item = (ThreadId, &Com)> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, c)| (ThreadId(i as u8 + 1), c))
    }

    /// All values that occur syntactically in the program or its
    /// initialisation — the *value universe* used by the pre-execution
    /// semantics, whose reads may return any value.
    pub fn value_universe(&self) -> Vec<Val> {
        let mut vals: Vec<Val> = self.inits.clone();
        fn exp_vals(e: &Exp, out: &mut Vec<Val>) {
            match e {
                Exp::Val(v) => out.push(*v),
                Exp::Var(_) | Exp::VarA(_) | Exp::Reg(_) => {}
                Exp::Un(_, e) => exp_vals(e, out),
                Exp::Bin(a, _, b) => {
                    exp_vals(a, out);
                    exp_vals(b, out);
                }
            }
        }
        fn com_vals(c: &Com, out: &mut Vec<Val>) {
            match c {
                Com::Skip => {}
                Com::Assign { rhs, .. } => exp_vals(rhs, out),
                Com::Swap { new, .. } => exp_vals(new, out),
                Com::AssignReg { rhs, .. } => exp_vals(rhs, out),
                Com::Seq(a, b) => {
                    com_vals(a, out);
                    com_vals(b, out);
                }
                Com::If { cond, then_, else_ } => {
                    exp_vals(cond, out);
                    com_vals(then_, out);
                    com_vals(else_, out);
                }
                Com::While { cond, body } => {
                    exp_vals(cond, out);
                    com_vals(body, out);
                }
                Com::Labeled(_, c) => com_vals(c, out),
            }
        }
        for t in &self.threads {
            com_vals(t, &mut vals);
        }
        // Comparison results can also flow into variables.
        vals.push(0);
        vals.push(1);
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(0, 1), u32::MAX); // wrapping
        assert_eq!(BinOp::Eq.apply(4, 4), 1);
        assert_eq!(BinOp::Ne.apply(4, 4), 0);
        assert_eq!(BinOp::And.apply(7, 0), 0);
        assert_eq!(BinOp::And.apply(7, 2), 1);
        assert_eq!(BinOp::Or.apply(0, 0), 0);
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Ge.apply(2, 2), 1);
    }

    #[test]
    fn closedness() {
        let x = VarId(0);
        assert!(Exp::Val(3).is_closed());
        assert!(Exp::Reg(RegId(0)).is_closed());
        assert!(!Exp::Var(x).is_closed());
        assert!(!Exp::bin(Exp::Val(1), BinOp::Add, Exp::VarA(x)).is_closed());
        let mut fv = Vec::new();
        Exp::bin(Exp::Var(x), BinOp::Add, Exp::VarA(x)).free_vars(&mut fv);
        assert_eq!(fv, vec![x]);
    }

    #[test]
    fn pc_finds_leftmost_label() {
        let c = Com::seq(Com::labeled(2, Com::Skip), Com::labeled(3, Com::Skip));
        assert_eq!(c.pc(), Some(2));
        let c2 = Com::seq(Com::Skip, Com::labeled(4, Com::Skip));
        assert_eq!(c2.pc(), Some(4));
        assert_eq!(Com::Skip.pc(), None);
    }

    #[test]
    fn pc_through_while() {
        let body = Com::labeled(2, Com::Skip);
        let w = Com::while_(Exp::Val(1), body);
        assert_eq!(w.pc(), Some(2));
    }

    #[test]
    fn value_universe_collects_literals() {
        let prog = Prog::new(
            vec![("x".into(), 0), ("y".into(), 9)],
            vec![Com::Assign {
                var: VarId(0),
                rhs: Exp::Val(5),
                release: false,
            }],
        );
        assert_eq!(prog.value_universe(), vec![0, 1, 5, 9]);
    }

    #[test]
    fn var_lookup() {
        let prog = Prog::new(vec![("x".into(), 0), ("y".into(), 0)], vec![]);
        assert_eq!(prog.var("y"), Some(VarId(1)));
        assert_eq!(prog.var("z"), None);
        assert_eq!(prog.var_name(VarId(0)), "x");
    }

    #[test]
    fn block_builder() {
        let b = Com::block([Com::Skip, Com::Skip, Com::Skip]);
        assert_eq!(b.size(), 5);
        assert_eq!(Com::block([]), Com::Skip);
    }
}
