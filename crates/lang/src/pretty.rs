//! Pretty-printing of expressions, commands and programs back into the
//! DSL accepted by [`crate::parser`]. `parse(print(p)) == p` up to label
//! placement — property-tested in the parser tests.

use crate::ast::{BinOp, Com, Exp, Prog, UnOp};

/// Operator precedence used to decide parenthesisation (higher binds
/// tighter; mirrors the parser's grammar).
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul => 5,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders an expression, using `names` for variables.
pub fn exp_to_string(e: &Exp, names: &[String]) -> String {
    fn go(e: &Exp, names: &[String], parent_prec: u8, out: &mut String) {
        match e {
            Exp::Val(v) => out.push_str(&v.to_string()),
            Exp::Var(x) => out.push_str(
                names
                    .get(x.0 as usize)
                    .map(String::as_str)
                    .unwrap_or("?var"),
            ),
            Exp::VarA(x) => {
                out.push_str("acq(");
                out.push_str(
                    names
                        .get(x.0 as usize)
                        .map(String::as_str)
                        .unwrap_or("?var"),
                );
                out.push(')');
            }
            Exp::Reg(r) => out.push_str(&format!("r{}", r.0)),
            Exp::Un(UnOp::Not, inner) => {
                out.push('!');
                // unary binds tightest; parenthesise non-atoms
                match **inner {
                    Exp::Val(_) | Exp::Var(_) | Exp::VarA(_) | Exp::Reg(_) => {
                        go(inner, names, 6, out)
                    }
                    _ => {
                        out.push('(');
                        go(inner, names, 0, out);
                        out.push(')');
                    }
                }
            }
            Exp::Bin(a, op, b) => {
                let p = prec(*op);
                let need = p < parent_prec
                    // comparisons are non-associative in the grammar
                    || (p == 3 && parent_prec == 3);
                if need {
                    out.push('(');
                }
                go(a, names, p, out);
                out.push(' ');
                out.push_str(op_str(*op));
                out.push(' ');
                // right operand: require strictly higher precedence so
                // left-associative chains re-parse identically
                go(b, names, p + 1, out);
                if need {
                    out.push(')');
                }
            }
        }
    }
    let mut out = String::new();
    go(e, names, 0, &mut out);
    out
}

/// Renders a command at the given indentation.
pub fn com_to_string(c: &Com, names: &[String], indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match c {
        Com::Skip => format!("{pad}skip;\n"),
        Com::Assign { var, rhs, release } => format!(
            "{pad}{} :={} {};\n",
            names
                .get(var.0 as usize)
                .map(String::as_str)
                .unwrap_or("?var"),
            if *release { "R" } else { "" },
            exp_to_string(rhs, names)
        ),
        Com::Swap { var, new, out } => {
            let target = names
                .get(var.0 as usize)
                .map(String::as_str)
                .unwrap_or("?var");
            match out {
                Some(r) => format!(
                    "{pad}r{} <- {target}.swap({});\n",
                    r.0,
                    exp_to_string(new, names)
                ),
                None => format!("{pad}{target}.swap({});\n", exp_to_string(new, names)),
            }
        }
        Com::AssignReg { reg, rhs } => {
            // `r <-A x` sugar only when the rhs is exactly an acquire var.
            if let Exp::VarA(x) = rhs {
                format!(
                    "{pad}r{} <-A {};\n",
                    reg.0,
                    names
                        .get(x.0 as usize)
                        .map(String::as_str)
                        .unwrap_or("?var")
                )
            } else {
                format!("{pad}r{} <- {};\n", reg.0, exp_to_string(rhs, names))
            }
        }
        Com::Seq(a, b) => format!(
            "{}{}",
            com_to_string(a, names, indent),
            com_to_string(b, names, indent)
        ),
        Com::If { cond, then_, else_ } => {
            let mut s = format!(
                "{pad}if ({}) {{\n{}{pad}}}",
                exp_to_string(cond, names),
                com_to_string(then_, names, indent + 1)
            );
            if !matches!(**else_, Com::Skip) {
                s.push_str(&format!(
                    " else {{\n{}{pad}}}",
                    com_to_string(else_, names, indent + 1)
                ));
            }
            s.push('\n');
            s
        }
        Com::While { cond, body } => format!(
            "{pad}while ({}) {{\n{}{pad}}}\n",
            exp_to_string(cond, names),
            com_to_string(body, names, indent + 1)
        ),
        Com::Labeled(n, inner) => {
            let inner_s = com_to_string(inner, names, indent);
            // splice the label after the indentation of the first line
            match inner_s.find(|ch: char| !ch.is_whitespace()) {
                Some(pos) => format!("{}{}: {}", &inner_s[..pos], n, &inner_s[pos..]),
                None => inner_s,
            }
        }
    }
}

/// Renders a whole program in parseable DSL form.
pub fn prog_to_string(p: &Prog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let decls: Vec<String> = p
        .var_names
        .iter()
        .zip(&p.inits)
        .map(|(n, &v)| {
            if v == 0 {
                n.clone()
            } else {
                format!("{n}={v}")
            }
        })
        .collect();
    let _ = writeln!(out, "vars {};", decls.join(" "));
    for (i, t) in p.threads.iter().enumerate() {
        let _ = writeln!(out, "thread t{} {{", i + 1);
        out.push_str(&com_to_string(t, &p.var_names, 1));
        let _ = writeln!(out, "}}");
    }
    out
}

impl std::fmt::Display for Prog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&prog_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = prog_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        assert_eq!(p1, p2, "round trip changed the program:\n{printed}");
    }

    #[test]
    fn round_trip_message_passing() {
        round_trip(
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        );
    }

    #[test]
    fn round_trip_peterson_shape() {
        round_trip(
            "vars flag1 flag2 turn=1;
             thread t1 {
               while (true) {
                 2: flag1 := true;
                 3: turn.swap(2);
                 4: while (acq(flag2) == 1 && turn == 2) { skip; }
                 5: skip;
                 6: flag1 :=R false;
               }
             }
             thread t2 { skip; }",
        );
    }

    #[test]
    fn round_trip_expressions() {
        round_trip(
            "vars x y;
             thread t {
               r0 <- 1 + 2 * 3 == 7 && !(x == 1) || y >= 2;
               r1 <- (1 + 2) * 3 - x;
               if (x == 1) { y := 1; } else { y := x + 1; }
             }",
        );
    }

    #[test]
    fn round_trip_nested_control() {
        round_trip(
            "vars x;
             thread t {
               while (x < 3) {
                 if (x == 0) { x := 1; }
                 x.swap(2);
               }
             }",
        );
    }

    #[test]
    fn exp_printer_parenthesises_correctly() {
        let names = vec!["x".to_string()];
        // (1 + 2) * 3 needs parens; 1 + 2 * 3 does not.
        let e1 = Exp::bin(
            Exp::bin(Exp::Val(1), BinOp::Add, Exp::Val(2)),
            BinOp::Mul,
            Exp::Val(3),
        );
        assert_eq!(exp_to_string(&e1, &names), "(1 + 2) * 3");
        let e2 = Exp::bin(
            Exp::Val(1),
            BinOp::Add,
            Exp::bin(Exp::Val(2), BinOp::Mul, Exp::Val(3)),
        );
        assert_eq!(exp_to_string(&e2, &names), "1 + 2 * 3");
    }
}
