//! The command language of Doherty et al. (PPoPP'19), Section 2, and its
//! *uninterpreted* operational semantics.
//!
//! The uninterpreted semantics generates the read / write / update *action*
//! for each step of a command without committing to the values that reads
//! return (Proposition 2.2: a read step exists for every value). A memory
//! model — plugged in by `c11-core` — then decides which of those actions
//! are actually enabled and what the reads may return.
//!
//! Extensions relative to the paper, documented in `DESIGN.md`:
//!
//! * **Registers** (`r0`, `r1`, ...) are thread-local and generate no memory
//!   events; they let litmus tests observe read outcomes, exactly as in the
//!   standard litmus-test literature. A paper-faithful program simply never
//!   uses them.
//! * **Per-occurrence reads**: each occurrence of a shared variable in an
//!   expression produces its own read action, evaluated left-to-right. This
//!   is the syntax-directed reading of Figure 1 (the alternative — one read
//!   substituting every occurrence — would make `x == x` always true, which
//!   no weak memory model guarantees).
//! * **Short-circuit guards**: after each read the expression is constant
//!   folded, so `flag == 1 && turn == 2` stops reading `turn` once the flag
//!   test is decided. This matches the two-test treatment of Algorithm 1's
//!   guard in the paper's Appendix D proof.
//! * **Statement labels** give the auxiliary program-counter function
//!   `P.pc_t` used by the Section 5 invariants.

pub mod action;
pub mod ast;
pub mod eval;
pub mod parser;
pub mod pretty;
pub mod step;

pub use action::{Action, ActionShape, StepLabel};
pub use ast::{BinOp, Com, Exp, Prog, RegId, ThreadId, UnOp, Val, VarId};
pub use parser::{parse_program, ParseError};
pub use pretty::{com_to_string, exp_to_string, prog_to_string};
pub use step::{apply_step, step_shape, RegFile, StepResult};
