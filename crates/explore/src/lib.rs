//! Exhaustive exploration (bounded model checking) of interpreted-semantics
//! configurations.
//!
//! The paper's verification method reasons inductively over the transitions
//! of the operational semantics; this crate provides the machinery to
//! *mechanically* quantify over those transitions: breadth-first
//! enumeration of every reachable configuration `(P, σ)` with
//! canonical-state deduplication, invariant checking with counterexample
//! traces, and loop bounding via the memory state's event count.
//!
//! Exploration is generic in the memory model (RA, pre-execution, SC), so
//! the same engine drives the litmus runner (E14), the soundness sweep
//! (E6), the completeness construction (E7), the Peterson verification
//! (E11) and the benchmark baselines (E13).
//!
//! Four engines implement the [`ExploreBackend`] contract, selected
//! along two orthogonal axes ([`Engine`] × [`Reduction`]): the
//! sequential BFS reference, the contention-free parallel engine
//! ([`par`]), the sleep-set dynamic-partial-order-reduction engine
//! ([`dpor`]) that visits the same states through fewer transitions,
//! and the source-set engine ([`source`]) that explores one execution
//! per Mazurkiewicz trace under the finals-only contract.

pub mod backend;
pub mod budget;
pub mod dpor;
pub mod engine;
pub mod par;
pub mod source;
pub mod stats;
pub mod sym;

pub use backend::{
    AnyBackend, DporBackend, Engine, ExploreBackend, ParallelBackend, Reduction, SequentialBackend,
    SourceSetBackend,
};
pub use budget::{Budget, Interrupt};
pub use c11_store::{StoreKind, StoreStats};
pub use dpor::{explore_dpor, explore_dpor_invariant};
pub use engine::{
    explore_invariant_with, render_trace, ExploreConfig, ExploreResult, Explorer, RegSnapshot,
    TraceStep,
};
pub use par::{parallel_explore, parallel_explore_invariant};
pub use source::{explore_source, explore_source_invariant};
pub use stats::Stats;
pub use sym::SymClasses;
