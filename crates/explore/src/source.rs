//! Source-set dynamic partial-order reduction — the finals-only engine.
//!
//! The sleep-set engine in [`crate::dpor`] deliberately visits the
//! sequential engine's exact state set and only prunes redundant
//! *transitions* (10–17 % of `generated` on the bench shapes). This
//! engine prunes *states*: it is a stateless depth-first search over
//! execution sequences in the style of source-set DPOR with wakeup
//! sequences (Abdulla, Aronis, Jonsson, Sagonas — "Source Sets: A
//! Foundation for Optimal Dynamic Partial Order Reduction" and its
//! parsimonious follow-up, see PAPERS.md), which explores one maximal
//! execution per Mazurkiewicz trace instead of one expansion per
//! reachable state.
//!
//! ## The finals-only contract
//!
//! Mazurkiewicz-equivalent executions end in the same configuration, so
//! exploring one representative per trace still reaches **every**
//! terminal configuration: the finals multiset (deduplicated by the same
//! 128-bit configuration fingerprint the sequential engine dedups on),
//! the litmus verdicts derived from it, and the truncation flag all
//! match the reference engine. What this engine gives up is the
//! *intermediate* states: `unique` and `generated` are intentionally
//! smaller, and an invariant over transient states may be checked on
//! fewer configurations than the exhaustive engines visit (the api crate
//! therefore routes `Mode::Invariant` requests to the sleep-set engine
//! instead — see `c11_api`). That trade is the `"finals-only"` reduction
//! contract surfaced in the `c11check/v1` schema.
//!
//! ## How the reduction works
//!
//! The search walks one execution at a time, keeping a stack of choice
//! frames:
//!
//! * **τ steps are scheduled eagerly** as singleton ample sets: a τ only
//!   rewrites its own thread's residual command and registers, so it is
//!   independent of every other-thread step and can always be executed
//!   first without branching. A τ whose successor re-creates a
//!   configuration already on the current path (a register-guarded spin
//!   that no other thread can unblock) is cut and the frame falls back
//!   to branching over action threads.
//! * **Action frames start with a single candidate thread.** Races are
//!   detected against the executed path through a vector-clock
//!   happens-before over the action events: when the new event is in a
//!   reversible race with an earlier event `e`, the reversal sequence
//!   `notdep(e, E).p` is inserted as a *wakeup sequence* at the frame
//!   that executed `e` — unless one of the sequence's initial threads is
//!   already scheduled there (the source-set condition). Wakeup
//!   sequences force their tail through descendant frames, which is what
//!   keeps reversed branches from being re-pruned by their sleep sets.
//! * **Sleep sets are inherited** down the stack, filtered through the
//!   same independence oracle and event-growth guard as the sleep-set
//!   engine ([`MemoryModel::actions_independent`]; τ never sleeps an
//!   action). A wakeup sequence whose head is asleep is dropped — the
//!   trace it would re-derive is covered by the branch that put the
//!   thread to sleep.
//!
//! Reads with several observable writes fan out below one thread choice:
//! the value branching is data nondeterminism *within* the event, every
//! branch is explored, and races propagate from each.
//!
//! ## Truncation
//!
//! The event and depth bounds cut a path exactly where the sequential
//! engine would cut the corresponding expansion, and when a cut lands
//! the path's frames are widened so no trace behind the bound is lost.
//! Widening can only repair frames still on the stack, which is enough
//! for thread choices (a slept thread is covered by a sibling subtree
//! that is widened at *its* cut, while it is on the stack) but not for
//! pruned write placements: the race-reversal branch that justified
//! dropping a placement can live in an already-popped subtree and may
//! itself have been cut. So the first time a bound cuts the search, the
//! whole exploration is rerun with placement pruning disabled — bounded
//! runs are small by construction, and untruncated runs (the ones the
//! reduction exists for) never pay the second pass.
//! `truncated` is one-sided, though: if this walk reports `false`,
//! every representative completed inside the bound, so the finals are
//! the complete set — but the sequential engine may still report `true`
//! on the same program, because it also explores τ-late linearisations
//! of completing traces, and one of those can touch the bound with a
//! pending τ even though the τ-eager representative of the same trace
//! terminates inside it. Source-set truncation therefore *implies*
//! sequential truncation, never the reverse. The `max_states` safety
//! cap keeps an exploration-order-dependent prefix, exactly as in the
//! other engines.
//!
//! Programs wider than the 64-bit thread masks fall back to the
//! sequential engine (sound, no reduction), and symmetry quotienting is
//! ignored here — the quotient's orbit merging invalidates the covering
//! argument, the same reason the sleep-set engine disables its masks
//! under symmetric keying.

use crate::engine::{
    config_fingerprint, explore_invariant_with, ExploreConfig, ExploreResult, TraceArena, TraceStep,
};
use c11_core::config::{Config, ConfigStep};
use c11_core::model::MemoryModel;
use c11_lang::step::StepShape;
use c11_lang::{ActionShape, Prog, ThreadId};
use c11_store::{AnyStore, StoreStats, VisitedStore};
use std::collections::VecDeque;
use std::collections::{HashMap, HashSet};

use crate::dpor::{bit, successor_sleep, SleepMask};

/// One executed action event on the current path, with its
/// happens-before clock (clock[t] = highest per-thread index of thread
/// `t`'s events that happen before this one, inclusive of itself).
struct PathEvent {
    /// 0-based thread index.
    thread: usize,
    shape: ActionShape,
    /// 1-based index of this event within its thread.
    tidx: u32,
    /// Stack position of the frame this event was executed from.
    frame_pos: usize,
    /// Memory-state event id, when the model tracks events (maps the
    /// placement oracle's overtaken ids back to path positions).
    event_id: Option<usize>,
    clock: Vec<u32>,
}

/// One choice point of the depth-first search.
struct Frame<M: MemoryModel> {
    config: Config<M>,
    node_idx: usize,
    depth: usize,
    /// Fingerprint (for removing from the on-path cycle set at pop).
    fp: u128,
    /// Pending step shape per thread at this configuration.
    shapes: Vec<Option<StepShape>>,
    /// Threads asleep here: their next step is covered by an already
    /// explored sibling branch.
    sleep: SleepMask,
    /// Wakeup sequences queued by race reversals below.
    wut: VecDeque<Vec<usize>>,
    /// First threads ever scheduled at this frame (the source set).
    heads: SleepMask,
    /// Forced continuation inherited from the parent's wakeup sequence.
    forced: Vec<usize>,
    /// Thread currently being explored (its remaining successor
    /// branches sit in `succs`).
    cur: Option<usize>,
    /// Forced tail carried into the children of `cur`.
    rest: Vec<usize>,
    /// Remaining successor branches of `cur`.
    succs: Vec<ConfigStep<M>>,
    /// At least one child frame was pushed for `cur` (distinguishes an
    /// explored τ from a cycle-cut one).
    cur_pushed: bool,
    /// τ threads already attempted here (including cycle-cut ones).
    tried_tau: SleepMask,
    /// A τ branch ran to completion: this frame is a singleton ample
    /// set and schedules nothing else.
    tau_ran: bool,
    /// The inherited forced tail has been scheduled.
    forced_done: bool,
    /// The initial action candidate has been scheduled.
    seeded: bool,
    /// Number of action events on the path when this frame was pushed.
    ev_len: usize,
    /// Any successor was generated from this frame (stuck accounting).
    generated_any: bool,
}

/// Explores `prog` under `model` with source-set partial-order
/// reduction, checking `inv` on every configuration the reduced search
/// visits. Finals (by fingerprint multiset) and litmus verdicts match
/// the sequential engine, and `truncated` here implies `truncated`
/// there (never the reverse); `unique` and `generated` are
/// intentionally smaller — see the module docs for the finals-only
/// contract.
pub fn explore_source_invariant<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    mut inv: F,
) -> ExploreResult<M>
where
    M: MemoryModel,
    F: FnMut(&Config<M>) -> bool,
{
    if Config::initial(model, prog).coms.len() > SleepMask::BITS as usize {
        // Masks are meaningless past 64 threads: fall back to the
        // sequential reference engine (sound, no reduction).
        return explore_invariant_with(model, prog, cfg, inv);
    }
    let first = explore_source_pass(model, prog, cfg, &mut inv, true);
    if !first.truncated || first.interrupted.is_some() {
        return first;
    }
    // A bound cut the search. Widening restores pruned *thread* choices
    // on the frames still on the stack at cut time, but a pruned write
    // *placement* is covered by a race-reversal branch that can live in
    // an already-popped subtree — and the bound may have cut that branch
    // before the reversal fired, silently losing a final. Placement
    // pruning is therefore only trusted on untruncated runs: rerun
    // without it (the invariant is re-checked; violations are reported
    // from this pass alone).
    explore_source_pass(model, prog, cfg, &mut inv, false)
}

/// One depth-first pass of the source-set walk. `prune` enables the
/// write-placement pruning of [`prune_placements`]; the public entry
/// point disables it on the retry pass after a bound truncation (see the
/// module docs on truncation).
fn explore_source_pass<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    mut inv: F,
    prune: bool,
) -> ExploreResult<M>
where
    M: MemoryModel,
    F: FnMut(&Config<M>) -> bool,
{
    let initial = Config::initial(model, prog);
    let mut result = ExploreResult {
        unique: 0,
        generated: 0,
        finals: Vec::new(),
        final_traces: Vec::new(),
        truncated: false,
        violations: Vec::new(),
        stuck: 0,
        interrupted: None,
        store_stats: None,
        sym_classes: None,
    };
    let track = cfg.record_traces || cfg.witness_traces;
    let mut nodes = TraceArena::new();
    let mut visited = AnyStore::new(cfg.store);
    let mut final_nodes: Vec<usize> = Vec::new();
    // Terminal configurations deduplicated by the same fingerprint the
    // sequential engine dedups all states on: equivalent executions end
    // in the same configuration, so this is what makes the finals
    // multiset line up.
    let mut finals_seen: HashSet<u128> = HashSet::new();
    // Configurations on the current path with multiplicity (cuts
    // register-guarded τ spins that no other thread can unblock; action
    // steps may legally re-create an on-path configuration, e.g. an SC
    // write of the value already stored).
    let mut on_path: HashMap<u128, u32> = HashMap::new();
    // Action events of the current path, with happens-before clocks.
    let mut events: Vec<PathEvent> = Vec::new();
    // Per-thread count of executed actions along the current path.
    let nthreads = initial.coms.len();
    let mut tcount: Vec<u32> = vec![0; nthreads];

    let budget = &cfg.budget;
    let unlimited = budget.is_unlimited();
    let mut tick: u64 = 0;

    let fp0 = config_fingerprint(model, &initial);
    visited.insert(fp0);
    result.unique = 1;
    if !unlimited {
        result.interrupted = budget.check_now(result.unique);
    }
    if !inv(&initial) {
        result.violations.push((initial.clone(), Vec::new()));
    }
    let mut stack: Vec<Frame<M>> = Vec::new();
    if initial.is_terminated() {
        finals_seen.insert(fp0);
        result.finals.push(initial);
        final_nodes.push(TraceArena::ROOT);
    } else if initial.coms.is_empty() {
        // No threads at all: nothing to do.
    } else if cfg.max_depth == 0 || model.state_size(&initial.mem) >= cfg.max_events {
        result.truncated = true;
    } else if result.interrupted.is_none() {
        on_path.insert(fp0, 1);
        stack.push(new_frame(
            initial,
            TraceArena::ROOT,
            0,
            fp0,
            0,
            Vec::new(),
            0,
        ));
    }

    'outer: while let Some(pos) = stack.len().checked_sub(1) {
        if result.interrupted.is_some() {
            break;
        }
        // ---- expand the next successor branch of the current thread --
        if let Some(step) = stack[pos].succs.pop() {
            if !unlimited {
                tick += 1;
                if let Some(why) = budget.check(tick, result.unique) {
                    result.interrupted = Some(why);
                    break;
                }
            }
            if result.unique >= cfg.max_states {
                result.truncated = true;
                break;
            }
            let ConfigStep {
                tid,
                label,
                event,
                next,
                ..
            } = step;
            let t = tid.0 as usize - 1;
            let fp = config_fingerprint(model, &next);
            if visited.insert(fp) {
                result.unique += 1;
            }
            let new_idx = if track {
                nodes.push(stack[pos].node_idx, TraceStep { tid, label })
            } else {
                TraceArena::ROOT // never dereferenced when tracking is off
            };
            if !inv(&next) {
                let trace = if cfg.record_traces {
                    nodes.trace_of(new_idx)
                } else {
                    Vec::new()
                };
                result.violations.push((next.clone(), trace));
            }
            let is_tau = matches!(stack[pos].shapes[t], Some(StepShape::Tau));
            if is_tau && on_path.contains_key(&fp) {
                // A τ spin back onto the current path: cut it; the frame
                // falls back to its next candidate (another τ, or the
                // action threads).
                continue;
            }
            // Race detection + clock for action events.
            let ev_push = if let Some(StepShape::Act(shape)) = &stack[pos].shapes[t] {
                let shape = *shape;
                let clock = clock_and_races(
                    model, &mut stack, pos, &events, &tcount, t, &shape, nthreads,
                );
                Some(PathEvent {
                    thread: t,
                    shape,
                    tidx: tcount[t] + 1,
                    frame_pos: pos,
                    event_id: event,
                    clock,
                })
            } else {
                None
            };
            if next.is_terminated() {
                if finals_seen.insert(fp) {
                    result.finals.push(next);
                    final_nodes.push(new_idx);
                }
                continue;
            }
            if stack[pos].depth + 1 >= cfg.max_depth
                || model.state_size(&next.mem) >= cfg.max_events
            {
                result.truncated = true;
                // The bound cut off the suffix whose races would have
                // scheduled the other threads: conservatively widen
                // every frame on the truncated path to all awake action
                // threads (τ frames stay singletons — a τ commutes with
                // everything and preserves execution length, so running
                // it first never changes what fits inside the bound).
                for f in stack.iter_mut() {
                    widen(f);
                }
                continue;
            }
            // Commit the event and push the child frame. The child
            // remembers the path length from *before* its in-event so
            // popping it rolls the event back off the path.
            let ev_len = events.len();
            if let Some(ev) = ev_push {
                tcount[t] += 1;
                events.push(ev);
            }
            let sleep = successor_sleep(
                model,
                &stack[pos].config.mem,
                &stack[pos].shapes,
                stack[pos].sleep,
                t,
            );
            let forced = stack[pos].rest.clone();
            let depth = stack[pos].depth + 1;
            stack[pos].cur_pushed = true;
            *on_path.entry(fp).or_insert(0) += 1;
            stack.push(new_frame(next, new_idx, depth, fp, sleep, forced, ev_len));
            continue;
        }
        // ---- the current thread's branches are exhausted --------------
        if let Some(t) = stack[pos].cur.take() {
            let frame = &mut stack[pos];
            if matches!(frame.shapes[t], Some(StepShape::Tau)) {
                // Only a τ that actually produced a subtree makes this
                // frame a singleton; a cycle-cut τ falls through to the
                // next candidate (another τ, or the action threads).
                frame.tau_ran = frame.cur_pushed;
            } else {
                frame.sleep |= bit(t);
            }
            continue;
        }
        // ---- pick the next candidate thread at this frame -------------
        match next_candidate(&mut stack[pos]) {
            Some((t, rest)) => {
                let frame = &mut stack[pos];
                let succs = frame.config.successors_of(model, ThreadId(t as u8 + 1));
                let shape = match &frame.shapes[t] {
                    Some(StepShape::Act(s)) => Some(s),
                    _ => None,
                };
                let succs = if prune {
                    prune_placements(model, &frame.config.mem, shape, &events, t, succs)
                } else {
                    succs
                };
                result.generated += succs.len();
                frame.generated_any |= !succs.is_empty();
                frame.cur = Some(t);
                frame.rest = rest;
                frame.succs = succs;
                frame.cur_pushed = false;
            }
            None => {
                // Frame complete: stuck accounting, then pop.
                let frame = &stack[pos];
                if !frame.generated_any && !frame.config.is_terminated() {
                    let any_steps = (0..nthreads).any(|t| {
                        frame.shapes[t].is_some()
                            && !frame
                                .config
                                .successors_of(model, ThreadId(t as u8 + 1))
                                .is_empty()
                    });
                    if !any_steps {
                        result.stuck += 1;
                    }
                }
                let frame = stack.pop().expect("frame on stack");
                match on_path.get_mut(&frame.fp) {
                    Some(n) if *n > 1 => *n -= 1,
                    _ => {
                        on_path.remove(&frame.fp);
                    }
                }
                while events.len() > frame.ev_len {
                    let ev = events.pop().expect("event on path");
                    tcount[ev.thread] -= 1;
                }
                if stack.is_empty() {
                    break 'outer;
                }
            }
        }
    }

    if cfg.witness_traces {
        result.final_traces = final_nodes
            .into_iter()
            .map(|idx| nodes.trace_of(idx))
            .collect();
    }
    result.store_stats = Some(StoreStats {
        sym: false,
        ..visited.stats()
    });
    result
}

/// [`explore_source_invariant`] without an invariant.
pub fn explore_source<M: MemoryModel>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
) -> ExploreResult<M> {
    explore_source_invariant(model, prog, cfg, |_| true)
}

fn new_frame<M: MemoryModel>(
    config: Config<M>,
    node_idx: usize,
    depth: usize,
    fp: u128,
    sleep: SleepMask,
    forced: Vec<usize>,
    ev_len: usize,
) -> Frame<M> {
    let shapes: Vec<Option<StepShape>> = config
        .thread_ids()
        .map(|t| config.step_shape_of(t))
        .collect();
    Frame {
        config,
        node_idx,
        depth,
        fp,
        shapes,
        sleep,
        wut: VecDeque::new(),
        heads: 0,
        forced,
        cur: None,
        rest: Vec::new(),
        succs: Vec::new(),
        cur_pushed: false,
        tried_tau: 0,
        tau_ran: false,
        forced_done: false,
        seeded: false,
        ev_len,
        generated_any: false,
    }
}

/// Schedules every awake, not-yet-scheduled action thread at `frame`
/// as a singleton wakeup sequence. Used when a bound truncates the
/// current path: the races that would have been detected on the cut
/// suffix can no longer schedule reversals, so the frame falls back to
/// bounded-exhaustive branching (threads already asleep stay covered by
/// the sibling subtree that put them to sleep, which is widened the
/// same way whenever it truncates).
fn widen<M: MemoryModel>(frame: &mut Frame<M>) {
    for t in 0..frame.shapes.len() {
        if matches!(frame.shapes[t], Some(StepShape::Act(_)))
            && frame.sleep & bit(t) == 0
            && frame.heads & bit(t) == 0
        {
            frame.heads |= bit(t);
            frame.wut.push_back(vec![t]);
        }
    }
}

/// The next thread to explore at `frame` (with the forced tail its
/// children inherit), or `None` when the frame is complete.
///
/// Priority: eager τs (each tried once; a successful one makes the
/// frame a singleton), then the forced tail inherited from the parent's
/// wakeup sequence, then a single seed action thread, then the wakeup
/// sequences inserted by race reversals.
fn next_candidate<M: MemoryModel>(frame: &mut Frame<M>) -> Option<(usize, Vec<usize>)> {
    if frame.tau_ran {
        return None;
    }
    for t in 0..frame.shapes.len() {
        if matches!(frame.shapes[t], Some(StepShape::Tau))
            && frame.tried_tau & bit(t) == 0
            && frame.sleep & bit(t) == 0
        {
            frame.tried_tau |= bit(t);
            frame.heads |= bit(t);
            // The τ is transparent: the forced continuation passes
            // through it to the child.
            return Some((t, frame.forced.clone()));
        }
    }
    if !frame.forced_done {
        frame.forced_done = true;
        if let Some((&h, rest)) = frame.forced.split_first() {
            if frame.shapes[h].is_some() && frame.sleep & bit(h) == 0 {
                frame.heads |= bit(h);
                return Some((h, rest.to_vec()));
            }
            // Head asleep or finished: the forced trace is covered by
            // the branch that put it to sleep.
        }
    }
    if !frame.seeded {
        frame.seeded = true;
        let pick = (0..frame.shapes.len()).find(|&t| {
            matches!(frame.shapes[t], Some(StepShape::Act(_)))
                && frame.sleep & bit(t) == 0
                && frame.heads & bit(t) == 0
        });
        if let Some(p) = pick {
            frame.heads |= bit(p);
            return Some((p, Vec::new()));
        }
    }
    while let Some(seq) = frame.wut.pop_front() {
        let Some((&h, rest)) = seq.split_first() else {
            continue;
        };
        if frame.sleep & bit(h) != 0 || frame.shapes[h].is_none() {
            // Covered by the sibling that put `h` to sleep (or the
            // thread terminated here): drop the sequence.
            continue;
        }
        return Some((h, rest.to_vec()));
    }
    None
}

/// Whether path event `e` is dependent with a pending event of thread
/// `t` with shape `shape` (same thread, or the model's oracle refuses
/// to commute them).
fn shape_dep<M: MemoryModel>(
    model: &M,
    mem: &M::State,
    e: &PathEvent,
    t: usize,
    shape: &ActionShape,
) -> bool {
    e.thread == t
        || !model.actions_independent(
            mem,
            (ThreadId(e.thread as u8 + 1), &e.shape),
            (ThreadId(t as u8 + 1), shape),
        )
}

/// Whether the race between `events[i]` and a new event of thread `t`
/// with shape `shape` is reversible: no intermediate dependent event
/// is already ordered after `events[i]` by happens-before.
fn race_reversible<M: MemoryModel>(
    model: &M,
    mem: &M::State,
    events: &[PathEvent],
    i: usize,
    t: usize,
    shape: &ActionShape,
) -> bool {
    let e = &events[i];
    !events[i + 1..]
        .iter()
        .any(|g| shape_dep(model, mem, g, t, shape) && g.clock[e.thread] >= e.tidx)
}

/// Placement pruning for the modification-order fan-out of write and
/// update steps.
///
/// An RA write has one successor per coherence placement: appended at
/// the end of `mo`, or *inserted* before other threads' later writes
/// (it "overtakes" them, [`MemoryModel::step_overtakes`]). A successor
/// that overtakes event `e` re-derives, step for step, the memory
/// state the reversed execution order reaches by letting `e` *append*
/// after the new write — so whenever the race with every overtaken
/// event is reversible under the current path's happens-before, the
/// race-reversal machinery already schedules that branch and the
/// inserting successor is pruned. Irreversible overtakes are kept:
/// those coherence orders (e.g. the po∪mo cycle of opposite-order
/// writer pairs) are *only* realizable by insertion. At least one
/// successor always survives, so the races that seed the reversals are
/// still detected.
fn prune_placements<M: MemoryModel>(
    model: &M,
    mem: &M::State,
    shape: Option<&ActionShape>,
    events: &[PathEvent],
    t: usize,
    mut succs: Vec<ConfigStep<M>>,
) -> Vec<ConfigStep<M>> {
    if succs.len() < 2 {
        return succs;
    }
    let Some(shape) = shape else { return succs };
    if matches!(shape, ActionShape::Read { .. }) {
        // Read fan-out is data nondeterminism (which write is
        // observed), not a placement choice: every branch stays.
        return succs;
    }
    let redundant: Vec<bool> = succs
        .iter()
        .map(|step| {
            let overtaken = model.step_overtakes(mem, &step.next.mem, step.event);
            if overtaken.is_empty() {
                return false;
            }
            // Map the overtaken ids back to path positions; an id the
            // path does not know (the init event) or a same-thread
            // event disables the pruning.
            let Some(positions) = overtaken
                .iter()
                .map(|&id| {
                    events
                        .iter()
                        .position(|pe| pe.event_id == Some(id))
                        .filter(|&i| events[i].thread != t)
                })
                .collect::<Option<Vec<usize>>>()
            else {
                return false;
            };
            // Criterion A — every overtaken event is in a reversible
            // race with the new write: each reversal branch realises
            // one of the overtaken placements by appending.
            if positions
                .iter()
                .all(|&i| race_reversible(model, mem, events, i, t, shape))
            {
                return true;
            }
            // Criterion B — sliding the new write back to the position
            // of the directly-overtaken event (coherence-least, first
            // in the oracle's order) yields a legal execution with the
            // same coherence order when everything executed after that
            // position is itself overtaken (it slides one slot down
            // unchanged) or independent of the new write. That shifted
            // execution appends instead of inserting, and the race
            // reversals explore it.
            let pos_e = positions[0];
            ((pos_e + 1)..events.len()).all(|i| {
                events[i].event_id.is_some_and(|id| overtaken.contains(&id))
                    || !shape_dep(model, mem, &events[i], t, shape)
            })
        })
        .collect();
    if redundant.iter().all(|&r| r) {
        // Every placement overtakes reversibly (the writer is fully
        // behind the contention): keep one canonical successor so the
        // races still fire; the reversal branches cover the rest.
        succs.truncate(1);
        return succs;
    }
    let mut it = redundant.iter();
    succs.retain(|_| !*it.next().expect("one flag per successor"));
    succs
}

/// Computes the happens-before clock of the new event (thread `t`,
/// shape `shape`) executed from the frame at `pos`, detects its
/// reversible races against the path events, and inserts the reversal
/// wakeup sequences at the raced frames (source-set check included).
/// Returns the new event's clock.
#[allow(clippy::too_many_arguments)]
fn clock_and_races<M: MemoryModel>(
    model: &M,
    stack: &mut [Frame<M>],
    pos: usize,
    events: &[PathEvent],
    tcount: &[u32],
    t: usize,
    shape: &ActionShape,
    nthreads: usize,
) -> Vec<u32> {
    let mem = &stack[pos].config.mem;
    // Clock: join of every dependent predecessor, plus the event itself.
    let mut clock = vec![0u32; nthreads];
    for e in events.iter() {
        if shape_dep(model, mem, e, t, shape) {
            for (c, ec) in clock.iter_mut().zip(&e.clock) {
                *c = (*c).max(*ec);
            }
        }
    }
    clock[t] = tcount[t] + 1;

    // Reversible races: dependent cross-thread events with no
    // intermediate dependent event between them and the new one.
    // Collected first (the dependence closure borrows the frame's
    // memory state), then inserted at the raced frames.
    let mut inserts: Vec<(usize, SleepMask, Vec<usize>)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.thread == t || !shape_dep(model, mem, e, t, shape) {
            continue;
        }
        if !race_reversible(model, mem, events, i, t, shape) {
            continue;
        }
        // The reversal sequence: every later event not ordered after
        // `e`, then the new event's thread.
        let v: Vec<&PathEvent> = events[i + 1..]
            .iter()
            .filter(|g| g.clock[e.thread] < e.tidx)
            .collect();
        // Initial threads of the sequence: threads whose first event
        // has no happens-before predecessor within it.
        let mut initials: SleepMask = 0;
        let mut seen: SleepMask = 0;
        for (j, g) in v.iter().enumerate() {
            if seen & bit(g.thread) != 0 {
                continue;
            }
            seen |= bit(g.thread);
            let has_pred = v[..j].iter().any(|h| g.clock[h.thread] >= h.tidx);
            if !has_pred {
                initials |= bit(g.thread);
            }
        }
        if seen & bit(t) == 0 {
            let has_pred = v.iter().any(|h| clock[h.thread] >= h.tidx);
            if !has_pred {
                initials |= bit(t);
            }
        }
        let mut seq: Vec<usize> = v.iter().map(|g| g.thread).collect();
        seq.push(t);
        inserts.push((e.frame_pos, initials, seq));
    }
    for (frame_pos, initials, seq) in inserts {
        let target = &mut stack[frame_pos];
        if initials & target.heads != 0 {
            // Source-set condition: an initial of the reversal is
            // already scheduled at the raced frame.
            continue;
        }
        target.heads |= bit(seq[0]);
        target.wut.push_back(seq);
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpor::explore_dpor;
    use crate::engine::{Explorer, RegSnapshot};
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::parse_program;
    use std::collections::HashMap;

    fn multiset(snaps: Vec<RegSnapshot>) -> HashMap<RegSnapshot, usize> {
        let mut m = HashMap::new();
        for s in snaps {
            *m.entry(s).or_insert(0) += 1;
        }
        m
    }

    fn assert_finals_match(prog: &Prog, cfg: &ExploreConfig, what: &str) {
        let seq = Explorer::new(RaModel).explore(prog, cfg.clone());
        let src = explore_source(&RaModel, prog, cfg);
        assert_eq!(
            multiset(src.final_snapshots()),
            multiset(seq.final_snapshots()),
            "{what}: finals multiset"
        );
        // One-sided by design: a τ-late linearisation can trip the
        // bound in the exhaustive walk even though the τ-eager
        // representative of the same trace completes inside it.
        assert!(
            !src.truncated || seq.truncated,
            "{what}: source truncation must imply sequential truncation"
        );
    }

    #[test]
    fn independent_writers_collapse_to_one_trace() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; y := 2; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        let res = explore_source(&RaModel, &prog, &cfg);
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        assert_eq!(
            multiset(res.final_snapshots()),
            multiset(seq.final_snapshots())
        );
        // Race-free: exactly one maximal trace, explored as one path.
        assert_eq!(res.finals.len(), 1);
        assert_eq!(
            res.generated,
            res.unique - 1,
            "a single explored path generates each state once"
        );
        assert!(res.unique < seq.unique, "source-set prunes states");
    }

    #[test]
    fn contended_writers_match_sequential_finals() {
        let src = "vars x;
             thread t1 { x := 1; x := 2; }
             thread t2 { x := 3; x := 4; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        assert_finals_match(&prog, &cfg, "contended");
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let dpor = explore_dpor(&RaModel, &prog, &cfg);
        let res = explore_source(&RaModel, &prog, &cfg);
        // All six write interleavings are inequivalent and must all be
        // found (C(4,2) orders of mo).
        assert_eq!(res.finals.len(), seq.finals.len());
        assert!(
            res.generated < dpor.generated,
            "source-set beats sleep-set on the contended shape ({} vs {})",
            res.generated,
            dpor.generated
        );
    }

    #[test]
    fn store_buffering_reaches_all_outcomes() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        assert_finals_match(&prog, &ExploreConfig::default(), "SB");
    }

    #[test]
    fn message_passing_variants_match() {
        for src in [
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
            "vars d f;
             thread t1 { d := 5; f := 1; }
             thread t2 { r0 <-A f; if (r0 == 1) { r1 <- d; } else { r1 <- 99; } }",
            "vars x y;
             thread t1 { x := 1; }
             thread t2 { r0 <- x; y :=R 1; }
             thread t3 { r0 <-A y; r1 <- x; }",
            "vars l d;
             thread t1 { r0 <- l.swap(1); d := 7; }
             thread t2 { r0 <- l.swap(1); r1 <- d; }",
        ] {
            let prog = parse_program(src).unwrap();
            assert_finals_match(&prog, &ExploreConfig::default(), src);
        }
    }

    #[test]
    fn truncating_bounds_agree_with_sequential() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        for bound in 3usize..8 {
            let cfg = ExploreConfig::default().max_events(bound);
            assert_finals_match(&prog, &cfg, &format!("event bound {bound}"));
        }
        for depth in 1usize..10 {
            let cfg = ExploreConfig::default().max_depth(depth);
            assert_finals_match(&prog, &cfg, &format!("depth bound {depth}"));
        }
    }

    #[test]
    fn spin_loop_truncates_like_sequential() {
        let prog = parse_program(
            "vars x;
             thread t1 { while (x == 0) { skip; } }
             thread t2 { x := 1; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default().max_events(8);
        assert_finals_match(&prog, &cfg, "spin");
    }

    #[test]
    fn register_spin_is_cycle_cut_not_divergent() {
        // `r0` is never written: the loop's τ re-creates the same
        // configuration forever and no other thread can unblock it. The
        // cycle cut must terminate the search with the writer's states
        // still explored.
        let prog = parse_program(
            "vars x;
             thread t1 { while (r0 == 0) { skip; } }
             thread t2 { x := 1; }",
        )
        .unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        let res = explore_source(&RaModel, &prog, &ExploreConfig::default());
        assert_eq!(res.finals.len(), seq.finals.len());
        assert!(res.generated > 0);
    }

    #[test]
    fn sc_model_matches_sequential_finals() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().max_depth(16);
        let seq = Explorer::new(ScModel).explore(&prog, cfg.clone());
        let res = explore_source(&ScModel, &prog, &cfg);
        assert_eq!(
            multiset(res.final_snapshots()),
            multiset(seq.final_snapshots())
        );
        assert!(res.generated <= seq.generated);
    }

    #[test]
    fn witness_traces_reach_every_final() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().witness_traces(true);
        let res = explore_source(&RaModel, &prog, &cfg);
        assert_eq!(res.final_traces.len(), res.finals.len());
        for t in &res.final_traces {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn max_states_cap_truncates() {
        let src = "vars x;
             thread t1 { x := 1; x := 2; x := 3; }
             thread t2 { x := 4; x := 5; x := 6; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().max_states(10);
        let res = explore_source(&RaModel, &prog, &cfg);
        assert!(res.truncated);
        assert!(res.unique <= 11);
    }

    #[test]
    fn wide_threads_fall_back_to_sequential() {
        let threads: String = (0..70)
            .map(|i| format!("thread t{i} {{ x := {}; }}\n", i % 2))
            .collect();
        let prog = parse_program(&format!("vars x;\n{threads}")).unwrap();
        let cfg = ExploreConfig::default()
            .max_states(200)
            .record_traces(false);
        let res = explore_source(&RaModel, &prog, &cfg);
        assert!(res.truncated, "70 writers blow the cap");
        assert!(res.unique > 0 && res.generated > 0);
    }
}
