//! The unified statistics vocabulary every checking surface reports in.
//!
//! `Stats` is the shared "how much work, how trustworthy" record carried
//! by every report the workspace produces — the api crate's `CheckReport`,
//! the litmus runner's `LitmusResult` and the verification case-study
//! reports all embed it instead of growing bespoke `states`/`truncated`
//! field pairs.

use crate::budget::Interrupt;
use crate::engine::ExploreResult;
use c11_core::model::MemoryModel;
use c11_store::{StoreKind, StoreStats};
use std::time::Duration;

/// Exploration statistics: size of the search, whether any bound cut it
/// short, and how long it took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct configurations visited (after dedup).
    pub unique: usize,
    /// Total successor configurations generated (before dedup).
    pub generated: usize,
    /// Terminated configurations reached.
    pub finals: usize,
    /// `true` iff a bound (events, states, depth) cut exploration short —
    /// "forbidden"/"holds" verdicts are then only valid up to the bound.
    pub truncated: bool,
    /// Non-terminated configurations with no successor (should stay 0
    /// under RA — deadlock freedom).
    pub stuck: usize,
    /// Wall-clock time of the run, in microseconds.
    pub wall_micros: u128,
    /// Set iff the run's [`Budget`](crate::Budget) tripped (deadline or
    /// cancellation) before the bounds did — distinct from `truncated`,
    /// which records the *question's* bounds cutting the search short.
    pub interrupt: Option<Interrupt>,
    /// Visited-store accounting, populated only for non-default storage
    /// (a non-flat `--store` or symmetry quotienting) so default runs
    /// keep their report shape byte-identical.
    pub store: Option<StoreStats>,
}

impl Stats {
    /// Builds the stats of an exploration result, stamping the wall time.
    pub fn of<M: MemoryModel>(result: &ExploreResult<M>, wall: Duration) -> Stats {
        Stats {
            unique: result.unique,
            generated: result.generated,
            finals: result.finals.len(),
            truncated: result.truncated,
            stuck: result.stuck,
            wall_micros: wall.as_micros(),
            interrupt: result.interrupted,
            store: result
                .store_stats
                .filter(|s| s.kind != StoreKind::Flat || s.sym),
        }
    }

    /// The wall time as a [`Duration`].
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.wall_micros as u64)
    }

    /// Merges two runs (used by reports that explore under two models):
    /// sizes add, truncation ors, and the first interrupt (if any) wins.
    pub fn merged(&self, other: &Stats) -> Stats {
        Stats {
            unique: self.unique + other.unique,
            generated: self.generated + other.generated,
            finals: self.finals + other.finals,
            truncated: self.truncated || other.truncated,
            stuck: self.stuck + other.stuck,
            wall_micros: self.wall_micros + other.wall_micros,
            interrupt: self.interrupt.or(other.interrupt),
            store: match (self.store, other.store) {
                // Two stored runs (e.g. the RA and SC halves of a litmus
                // report): sizes add like the other counters; the kind
                // and sym flags agree by construction (one request).
                (Some(a), Some(b)) => Some(StoreStats {
                    kind: a.kind,
                    sym: a.sym,
                    bytes_resident: a.bytes_resident + b.bytes_resident,
                    nodes: a.nodes + b.nodes,
                    dedup_hits: a.dedup_hits + b.dedup_hits,
                }),
                (a, b) => a.or(b),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_and_ors() {
        let a = Stats {
            unique: 3,
            generated: 5,
            finals: 1,
            truncated: false,
            stuck: 0,
            wall_micros: 10,
            interrupt: None,
            store: None,
        };
        let b = Stats {
            unique: 2,
            generated: 2,
            finals: 2,
            truncated: true,
            stuck: 1,
            wall_micros: 7,
            interrupt: None,
            store: None,
        };
        let m = a.merged(&b);
        assert_eq!(m.unique, 5);
        assert_eq!(m.generated, 7);
        assert_eq!(m.finals, 3);
        assert!(m.truncated);
        assert_eq!(m.stuck, 1);
        assert_eq!(m.wall_micros, 17);
        assert_eq!(m.wall(), Duration::from_micros(17));
        assert_eq!(m.interrupt, None);
    }

    #[test]
    fn merged_keeps_the_first_interrupt() {
        let clean = Stats::default();
        let timed = Stats {
            interrupt: Some(Interrupt::TimedOut),
            ..Stats::default()
        };
        let cancelled = Stats {
            interrupt: Some(Interrupt::Cancelled),
            ..Stats::default()
        };
        assert_eq!(clean.merged(&timed).interrupt, Some(Interrupt::TimedOut));
        assert_eq!(timed.merged(&clean).interrupt, Some(Interrupt::TimedOut));
        assert_eq!(
            timed.merged(&cancelled).interrupt,
            Some(Interrupt::TimedOut)
        );
        assert_eq!(clean.merged(&clean).interrupt, None);
    }
}
