//! The backend abstraction: one exploration contract, many engines.
//!
//! [`ExploreBackend`] is the seam the api crate's `CheckRequest` plugs
//! into: every engine that can enumerate the reachable configurations of a
//! program under a memory model implements it and returns the same
//! [`ExploreResult`]. Three implementations ship today — the sequential
//! BFS ([`SequentialBackend`]), the parallel engine
//! ([`ParallelBackend`]) and the sleep-set partial-order-reduction engine
//! ([`DporBackend`], see [`crate::dpor`]).

use crate::dpor::explore_dpor_invariant;
use crate::engine::{explore_invariant_with, ExploreConfig, ExploreResult};
use crate::par::parallel_explore_invariant;
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;

/// An exploration engine for a memory model `M`.
///
/// The invariant closure is `Fn + Sync` (not `FnMut`) so one contract
/// covers both sequential and parallel engines; accumulate findings
/// through interior mutability (or use [`ExploreResult::violations`],
/// which every backend fills).
pub trait ExploreBackend<M: MemoryModel> {
    /// A short human-readable name ("sequential", "parallel(4)").
    fn name(&self) -> String;

    /// Explores all reachable configurations within `cfg`'s bounds,
    /// checking `inv` on each.
    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M>;

    /// Explores without an invariant.
    fn run(&self, model: &M, prog: &Prog, cfg: &ExploreConfig) -> ExploreResult<M> {
        self.run_invariant(model, prog, cfg, &|_| true)
    }
}

/// The sequential BFS engine (deterministic; the reference).
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialBackend;

impl<M: MemoryModel> ExploreBackend<M> for SequentialBackend {
    fn name(&self) -> String {
        "sequential".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_invariant_with(model, prog, cfg, |c| inv(c))
    }
}

/// The parallel engine (see [`crate::par`]): worker-private queues with
/// chunk donation, a striped lock-free visited filter, and per-worker
/// arenas merged at the scope join. Requires the model and its states to
/// cross *and share across* threads; always deduplicates.
#[derive(Clone, Copy, Debug)]
pub struct ParallelBackend {
    /// Number of worker threads (clamped to ≥ 1).
    pub workers: usize,
}

impl ParallelBackend {
    /// A parallel backend with `workers` threads.
    pub fn new(workers: usize) -> ParallelBackend {
        ParallelBackend { workers }
    }
}

impl<M> ExploreBackend<M> for ParallelBackend
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
{
    fn name(&self) -> String {
        format!("parallel({})", self.workers.max(1))
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        parallel_explore_invariant(model, prog, cfg, self.workers, inv)
    }
}

/// The sleep-set DPOR engine (see [`crate::dpor`]): visits exactly the
/// sequential engine's states — identical finals, verdicts, violations,
/// truncation — while generating strictly fewer successor configurations
/// wherever the model's independence oracle lets siblings sleep. Always
/// deduplicates (the sleep sets live in the visited table).
#[derive(Clone, Copy, Debug, Default)]
pub struct DporBackend;

impl<M: MemoryModel> ExploreBackend<M> for DporBackend {
    fn name(&self) -> String {
        "dpor".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_dpor_invariant(model, prog, cfg, |c| inv(c))
    }
}

/// A pool-friendly engine handle: a `Copy`, `Send + Sync` *value* naming
/// one of the engines, usable for every memory model at once.
///
/// Schedulers that multiplex many checking jobs over shared worker
/// threads (the api crate's `Session`) cannot hold a `dyn
/// ExploreBackend<M>` — the model `M` differs per job (RA for one
/// request, SC for the next, both inside a litmus verdict). `AnyBackend`
/// is the monomorphisation-deferring form: ship the handle across the
/// pool, then let each job instantiate it at its own model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnyBackend {
    /// The sequential BFS reference engine.
    Sequential,
    /// The contention-free parallel engine with `workers` threads.
    Parallel {
        /// Worker threads (clamped to ≥ 1).
        workers: usize,
    },
    /// The sleep-set DPOR engine.
    Dpor,
}

impl<M> ExploreBackend<M> for AnyBackend
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
{
    fn name(&self) -> String {
        match self {
            AnyBackend::Sequential => ExploreBackend::<M>::name(&SequentialBackend),
            AnyBackend::Parallel { workers } => {
                ExploreBackend::<M>::name(&ParallelBackend::new(*workers))
            }
            AnyBackend::Dpor => ExploreBackend::<M>::name(&DporBackend),
        }
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        match self {
            AnyBackend::Sequential => SequentialBackend.run_invariant(model, prog, cfg, inv),
            AnyBackend::Parallel { workers } => {
                ParallelBackend::new(*workers).run_invariant(model, prog, cfg, inv)
            }
            AnyBackend::Dpor => DporBackend.run_invariant(model, prog, cfg, inv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::parse_program;

    /// Both backends through the trait object surface the api crate uses.
    #[test]
    fn backends_agree_through_the_trait() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let backends: Vec<Box<dyn ExploreBackend<RaModel>>> = vec![
            Box::new(SequentialBackend),
            Box::new(ParallelBackend::new(2)),
            Box::new(DporBackend),
        ];
        let reference = SequentialBackend.run(&RaModel, &prog, &cfg);
        for b in &backends {
            let res = b.run(&RaModel, &prog, &cfg);
            assert_eq!(res.unique, reference.unique, "{}", b.name());
            assert_eq!(res.finals.len(), reference.finals.len(), "{}", b.name());
        }
    }

    #[test]
    fn trait_covers_store_based_models_too() {
        let prog = parse_program("vars x; thread t { x := 1; r0 <- x; }").unwrap();
        let cfg = ExploreConfig::default();
        let seq = SequentialBackend.run(&ScModel, &prog, &cfg);
        let par = ParallelBackend::new(2).run(&ScModel, &prog, &cfg);
        assert_eq!(seq.unique, par.unique);
    }

    #[test]
    fn any_backend_dispatches_to_both_engines() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let reference = SequentialBackend.run(&RaModel, &prog, &cfg);
        for handle in [
            AnyBackend::Sequential,
            AnyBackend::Parallel { workers: 2 },
            AnyBackend::Dpor,
        ] {
            // One Copy handle serves RA and SC without re-construction —
            // the property the session scheduler relies on.
            let ra = handle.run(&RaModel, &prog, &cfg);
            assert_eq!(ra.unique, reference.unique, "{:?}", handle);
            let sc = handle.run(&ScModel, &prog, &cfg);
            assert!(sc.unique <= ra.unique, "{:?}", handle);
        }
        assert_eq!(
            ExploreBackend::<RaModel>::name(&AnyBackend::Parallel { workers: 3 }),
            "parallel(3)"
        );
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            ExploreBackend::<RaModel>::name(&SequentialBackend),
            "sequential"
        );
        assert_eq!(
            ExploreBackend::<RaModel>::name(&ParallelBackend::new(4)),
            "parallel(4)"
        );
        assert_eq!(ExploreBackend::<RaModel>::name(&DporBackend), "dpor");
    }
}
