//! The backend abstraction: one exploration contract, many engines.
//!
//! [`ExploreBackend`] is the seam the api crate's `CheckRequest` plugs
//! into: every engine that can enumerate the reachable configurations of a
//! program under a memory model implements it and returns the same
//! [`ExploreResult`]. Two implementations ship today — the sequential BFS
//! ([`SequentialBackend`]) and the work-stealing parallel engine
//! ([`ParallelBackend`]); DPOR-style reduced backends slot in behind the
//! same trait.

use crate::engine::{explore_invariant_with, ExploreConfig, ExploreResult};
use crate::par::parallel_explore_invariant;
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;

/// An exploration engine for a memory model `M`.
///
/// The invariant closure is `Fn + Sync` (not `FnMut`) so one contract
/// covers both sequential and parallel engines; accumulate findings
/// through interior mutability (or use [`ExploreResult::violations`],
/// which every backend fills).
pub trait ExploreBackend<M: MemoryModel> {
    /// A short human-readable name ("sequential", "parallel(4)").
    fn name(&self) -> String;

    /// Explores all reachable configurations within `cfg`'s bounds,
    /// checking `inv` on each.
    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M>;

    /// Explores without an invariant.
    fn run(&self, model: &M, prog: &Prog, cfg: &ExploreConfig) -> ExploreResult<M> {
        self.run_invariant(model, prog, cfg, &|_| true)
    }
}

/// The sequential BFS engine (deterministic; the reference).
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialBackend;

impl<M: MemoryModel> ExploreBackend<M> for SequentialBackend {
    fn name(&self) -> String {
        "sequential".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_invariant_with(model, prog, cfg, |c| inv(c))
    }
}

/// The work-stealing parallel engine (see [`crate::par`]). Requires the
/// model and its states to cross threads; always deduplicates.
#[derive(Clone, Copy, Debug)]
pub struct ParallelBackend {
    /// Number of worker threads (clamped to ≥ 1).
    pub workers: usize,
}

impl ParallelBackend {
    /// A parallel backend with `workers` threads.
    pub fn new(workers: usize) -> ParallelBackend {
        ParallelBackend { workers }
    }
}

impl<M> ExploreBackend<M> for ParallelBackend
where
    M: MemoryModel + Sync,
    M::State: Send,
{
    fn name(&self) -> String {
        format!("parallel({})", self.workers.max(1))
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        parallel_explore_invariant(model, prog, cfg, self.workers, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::parse_program;

    /// Both backends through the trait object surface the api crate uses.
    #[test]
    fn backends_agree_through_the_trait() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let backends: Vec<Box<dyn ExploreBackend<RaModel>>> = vec![
            Box::new(SequentialBackend),
            Box::new(ParallelBackend::new(2)),
        ];
        let reference = SequentialBackend.run(&RaModel, &prog, &cfg);
        for b in &backends {
            let res = b.run(&RaModel, &prog, &cfg);
            assert_eq!(res.unique, reference.unique, "{}", b.name());
            assert_eq!(res.finals.len(), reference.finals.len(), "{}", b.name());
        }
    }

    #[test]
    fn trait_covers_store_based_models_too() {
        let prog = parse_program("vars x; thread t { x := 1; r0 <- x; }").unwrap();
        let cfg = ExploreConfig::default();
        let seq = SequentialBackend.run(&ScModel, &prog, &cfg);
        let par = ParallelBackend::new(2).run(&ScModel, &prog, &cfg);
        assert_eq!(seq.unique, par.unique);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            ExploreBackend::<RaModel>::name(&SequentialBackend),
            "sequential"
        );
        assert_eq!(
            ExploreBackend::<RaModel>::name(&ParallelBackend::new(4)),
            "parallel(4)"
        );
    }
}
