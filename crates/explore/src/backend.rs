//! The backend abstraction: one exploration contract, many engines.
//!
//! [`ExploreBackend`] is the seam the api crate's `CheckRequest` plugs
//! into: every engine that can enumerate the reachable configurations of a
//! program under a memory model implements it and returns the same
//! [`ExploreResult`]. The request surface selects a backend along two
//! orthogonal axes — an [`Engine`] (who does the walking: the sequential
//! reference or the parallel engine) × a [`Reduction`] (how much of the
//! state space the walk may skip: none, sleep sets, or the finals-only
//! source sets) — combined into the pool-friendly [`AnyBackend`] handle.
//! The concrete implementations are [`SequentialBackend`],
//! [`ParallelBackend`], the sleep-set engine [`DporBackend`]
//! (see [`crate::dpor`]) and the source-set engine [`SourceSetBackend`]
//! (see [`crate::source`]).

use crate::dpor::explore_dpor_invariant;
use crate::engine::{explore_invariant_with, ExploreConfig, ExploreResult};
use crate::par::parallel_explore_invariant;
use crate::source::explore_source_invariant;
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;

/// An exploration engine for a memory model `M`.
///
/// The invariant closure is `Fn + Sync` (not `FnMut`) so one contract
/// covers both sequential and parallel engines; accumulate findings
/// through interior mutability (or use [`ExploreResult::violations`],
/// which every backend fills).
pub trait ExploreBackend<M: MemoryModel> {
    /// A short human-readable name ("sequential", "parallel(4)").
    fn name(&self) -> String;

    /// Explores all reachable configurations within `cfg`'s bounds,
    /// checking `inv` on each.
    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M>;

    /// Explores without an invariant.
    fn run(&self, model: &M, prog: &Prog, cfg: &ExploreConfig) -> ExploreResult<M> {
        self.run_invariant(model, prog, cfg, &|_| true)
    }
}

/// The sequential BFS engine (deterministic; the reference).
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialBackend;

impl<M: MemoryModel> ExploreBackend<M> for SequentialBackend {
    fn name(&self) -> String {
        "sequential".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_invariant_with(model, prog, cfg, |c| inv(c))
    }
}

/// The parallel engine (see [`crate::par`]): worker-private queues with
/// chunk donation, a striped lock-free visited filter, and per-worker
/// arenas merged at the scope join. Requires the model and its states to
/// cross *and share across* threads; always deduplicates.
#[derive(Clone, Copy, Debug)]
pub struct ParallelBackend {
    /// Number of worker threads (clamped to ≥ 1).
    pub workers: usize,
}

impl ParallelBackend {
    /// A parallel backend with `workers` threads.
    pub fn new(workers: usize) -> ParallelBackend {
        ParallelBackend { workers }
    }
}

impl<M> ExploreBackend<M> for ParallelBackend
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
{
    fn name(&self) -> String {
        format!("parallel({})", self.workers.max(1))
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        parallel_explore_invariant(model, prog, cfg, self.workers, inv)
    }
}

/// The sleep-set DPOR engine (see [`crate::dpor`]): visits exactly the
/// sequential engine's states — identical finals, verdicts, violations,
/// truncation — while generating strictly fewer successor configurations
/// wherever the model's independence oracle lets siblings sleep. Always
/// deduplicates (the sleep sets live in the visited table).
#[derive(Clone, Copy, Debug, Default)]
pub struct DporBackend;

impl<M: MemoryModel> ExploreBackend<M> for DporBackend {
    fn name(&self) -> String {
        "dpor".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_dpor_invariant(model, prog, cfg, |c| inv(c))
    }
}

/// The source-set DPOR engine (see [`crate::source`]): explores one
/// execution per Mazurkiewicz trace under the **finals-only contract** —
/// finals (by fingerprint multiset), litmus verdicts, violations on the
/// configurations it does visit, and the `truncated` flag match the
/// sequential engine, while `unique`/`generated` are intentionally
/// smaller and transient states may be skipped entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceSetBackend;

impl<M: MemoryModel> ExploreBackend<M> for SourceSetBackend {
    fn name(&self) -> String {
        "source-set".to_string()
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        explore_source_invariant(model, prog, cfg, |c| inv(c))
    }
}

/// Who does the walking: the two exploration engines proper, orthogonal
/// to the [`Reduction`] strategy layered on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The sequential reference engine (deterministic).
    #[default]
    Sequential,
    /// The contention-free parallel engine with `workers` threads.
    Parallel {
        /// Worker threads (clamped to ≥ 1).
        workers: usize,
    },
}

impl Engine {
    /// The canonical spelling (`"sequential"`, `"parallel"`).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Parallel { .. } => "parallel",
        }
    }
}

/// How much of the state space the walk may skip.
///
/// `None` and `SleepSet` preserve the full exhaustive contract (identical
/// states, finals, verdicts, violations); `SourceSet` trades the
/// intermediate states away under the finals-only contract (see
/// [`SourceSetBackend`]). The reductions run on the sequential engine —
/// combining them with [`Engine::Parallel`] is rejected at the request
/// layer (`c11_api`); this handle, which must stay total, runs the
/// reduction sequentially.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// No reduction: visit every reachable configuration.
    #[default]
    None,
    /// Sleep-set DPOR ([`DporBackend`]): same states, fewer generated
    /// transitions.
    SleepSet,
    /// Source-set DPOR ([`SourceSetBackend`]): one execution per trace,
    /// finals-only contract.
    SourceSet,
}

impl Reduction {
    /// The canonical spelling (`"none"`, `"sleep-set"`, `"source-set"`).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Reduction::None => "none",
            Reduction::SleepSet => "sleep-set",
            Reduction::SourceSet => "source-set",
        }
    }

    /// The report contract this reduction upholds: `"exhaustive"` for
    /// reductions whose reports are identical to the sequential
    /// engine's, `"finals-only"` for the source-set reduction.
    pub fn contract_str(&self) -> &'static str {
        match self {
            Reduction::None | Reduction::SleepSet => "exhaustive",
            Reduction::SourceSet => "finals-only",
        }
    }
}

/// A pool-friendly engine handle: a `Copy`, `Send + Sync` *value* naming
/// an [`Engine`] × [`Reduction`] selection, usable for every memory
/// model at once.
///
/// Schedulers that multiplex many checking jobs over shared worker
/// threads (the api crate's `Session`) cannot hold a `dyn
/// ExploreBackend<M>` — the model `M` differs per job (RA for one
/// request, SC for the next, both inside a litmus verdict). `AnyBackend`
/// is the monomorphisation-deferring form: ship the handle across the
/// pool, then let each job instantiate it at its own model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct AnyBackend {
    /// Who walks the state space.
    pub engine: Engine,
    /// How much of it the walk may skip.
    pub reduction: Reduction,
}

impl AnyBackend {
    /// The sequential engine, no reduction.
    pub fn sequential() -> AnyBackend {
        AnyBackend::default()
    }

    /// The parallel engine with `workers` threads, no reduction.
    pub fn parallel(workers: usize) -> AnyBackend {
        AnyBackend {
            engine: Engine::Parallel { workers },
            reduction: Reduction::None,
        }
    }

    /// The sleep-set DPOR engine (sequential).
    pub fn sleep_set() -> AnyBackend {
        AnyBackend {
            engine: Engine::Sequential,
            reduction: Reduction::SleepSet,
        }
    }

    /// The source-set DPOR engine (sequential, finals-only contract).
    pub fn source_set() -> AnyBackend {
        AnyBackend {
            engine: Engine::Sequential,
            reduction: Reduction::SourceSet,
        }
    }
}

impl<M> ExploreBackend<M> for AnyBackend
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
{
    fn name(&self) -> String {
        match (self.engine, self.reduction) {
            (Engine::Sequential, Reduction::None) => ExploreBackend::<M>::name(&SequentialBackend),
            (Engine::Parallel { workers }, Reduction::None) => {
                ExploreBackend::<M>::name(&ParallelBackend::new(workers))
            }
            (engine, reduction) => {
                format!("{}+{}", engine.kind_str(), reduction.kind_str())
            }
        }
    }

    fn run_invariant(
        &self,
        model: &M,
        prog: &Prog,
        cfg: &ExploreConfig,
        inv: &(dyn Fn(&Config<M>) -> bool + Sync),
    ) -> ExploreResult<M> {
        match (self.engine, self.reduction) {
            (Engine::Sequential, Reduction::None) => {
                SequentialBackend.run_invariant(model, prog, cfg, inv)
            }
            (Engine::Parallel { workers }, Reduction::None) => {
                ParallelBackend::new(workers).run_invariant(model, prog, cfg, inv)
            }
            // Reductions run on the sequential engine (the request
            // layer rejects Parallel × reduction before it gets here).
            (_, Reduction::SleepSet) => DporBackend.run_invariant(model, prog, cfg, inv),
            (_, Reduction::SourceSet) => SourceSetBackend.run_invariant(model, prog, cfg, inv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::parse_program;

    /// Both backends through the trait object surface the api crate uses.
    #[test]
    fn backends_agree_through_the_trait() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let backends: Vec<Box<dyn ExploreBackend<RaModel>>> = vec![
            Box::new(SequentialBackend),
            Box::new(ParallelBackend::new(2)),
            Box::new(DporBackend),
        ];
        // SourceSetBackend is exercised separately: it keeps finals and
        // verdicts but intentionally not `unique`.
        let reference = SequentialBackend.run(&RaModel, &prog, &cfg);
        for b in &backends {
            let res = b.run(&RaModel, &prog, &cfg);
            assert_eq!(res.unique, reference.unique, "{}", b.name());
            assert_eq!(res.finals.len(), reference.finals.len(), "{}", b.name());
        }
    }

    #[test]
    fn trait_covers_store_based_models_too() {
        let prog = parse_program("vars x; thread t { x := 1; r0 <- x; }").unwrap();
        let cfg = ExploreConfig::default();
        let seq = SequentialBackend.run(&ScModel, &prog, &cfg);
        let par = ParallelBackend::new(2).run(&ScModel, &prog, &cfg);
        assert_eq!(seq.unique, par.unique);
    }

    #[test]
    fn any_backend_dispatches_across_the_engine_reduction_grid() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }",
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let reference = SequentialBackend.run(&RaModel, &prog, &cfg);
        for handle in [
            AnyBackend::sequential(),
            AnyBackend::parallel(2),
            AnyBackend::sleep_set(),
        ] {
            // One Copy handle serves RA and SC without re-construction —
            // the property the session scheduler relies on.
            let ra = handle.run(&RaModel, &prog, &cfg);
            assert_eq!(ra.unique, reference.unique, "{:?}", handle);
            let sc = handle.run(&ScModel, &prog, &cfg);
            assert!(sc.unique <= ra.unique, "{:?}", handle);
        }
        // The source-set handle upholds the finals-only contract: same
        // finals, fewer (or equal) states.
        let src = AnyBackend::source_set().run(&RaModel, &prog, &cfg);
        assert_eq!(src.finals.len(), reference.finals.len());
        assert!(src.unique <= reference.unique);
        assert_eq!(
            ExploreBackend::<RaModel>::name(&AnyBackend::parallel(3)),
            "parallel(3)"
        );
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            ExploreBackend::<RaModel>::name(&SequentialBackend),
            "sequential"
        );
        assert_eq!(
            ExploreBackend::<RaModel>::name(&ParallelBackend::new(4)),
            "parallel(4)"
        );
        assert_eq!(ExploreBackend::<RaModel>::name(&DporBackend), "dpor");
        assert_eq!(
            ExploreBackend::<RaModel>::name(&SourceSetBackend),
            "source-set"
        );
        assert_eq!(
            ExploreBackend::<RaModel>::name(&AnyBackend::sleep_set()),
            "sequential+sleep-set"
        );
        assert_eq!(
            ExploreBackend::<RaModel>::name(&AnyBackend::source_set()),
            "sequential+source-set"
        );
    }
}
