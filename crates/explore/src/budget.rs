//! Cooperative deadline / cancellation budget shared by all engines.
//!
//! A [`Budget`] is a cheaply clonable token the service layer hands to an
//! exploration: a wall-clock deadline, a cancel flag another thread may
//! set at any time, and an optional soft state cap. Engines poll it at
//! the top of their expansion loops via [`Budget::check`] — the flag read
//! is a relaxed atomic load every call, while the clock is only consulted
//! every [`POLL_MASK`]+1 polls so a hot loop never pays a syscall per
//! state. A tripped budget terminates the run with an [`Interrupt`]
//! recorded on the result, *distinct* from bound truncation: bounds are
//! part of the question being asked, budgets are the service saying
//! "stop answering".
//!
//! The cancel flag lives behind its own `Arc`, shared by every clone —
//! including clones re-stamped with a different deadline via
//! [`Budget::with_deadline_at`]. That lets a session create the cancel
//! token at submission time (so `cancel(JobId)` reaches a job still in
//! the queue) and attach the per-job deadline only when compute starts,
//! so queue wait never eats the job's time budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why an exploration was interrupted before its bounds were reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The budget's deadline passed mid-exploration.
    TimedOut,
    /// Another thread called [`Budget::cancel`].
    Cancelled,
}

impl Interrupt {
    /// The status word reports carry (`"timed_out"` / `"cancelled"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Interrupt::TimedOut => "timed_out",
            Interrupt::Cancelled => "cancelled",
        }
    }
}

/// Shared deadline + cancel token. `Default` is unlimited (never trips);
/// cloning shares the cancel flag, so a `cancel()` through any clone is
/// seen by every engine polling any other clone.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Soft cap on unique states, independent of
    /// `ExploreConfig::max_states` (which is a bound, i.e. part of the
    /// question). Tripping it reports `TimedOut` — the service ran out of
    /// resource budget, not the caller.
    soft_max_states: Option<usize>,
    cancel: Arc<AtomicBool>,
}

/// Polls between clock reads: the cancel flag is checked on every call,
/// `Instant::now()` only every 64th.
const POLL_MASK: u64 = 63;

impl Budget {
    /// An unlimited budget (alias for `Default`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget that trips `TimedOut` once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }

    /// A budget with both an optional deadline and an optional soft state
    /// cap (the general constructor the service layer uses).
    pub fn new(deadline: Option<Instant>, soft_max_states: Option<usize>) -> Budget {
        Budget {
            deadline,
            soft_max_states,
            ..Budget::default()
        }
    }

    /// A clone of this budget with its deadline (re)stamped. The cancel
    /// flag stays shared: cancelling either token trips both.
    pub fn with_deadline_at(&self, deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            soft_max_states: self.soft_max_states,
            cancel: self.cancel.clone(),
        }
    }

    /// Requests cooperative cancellation: every engine polling this budget
    /// (through any clone) terminates at its next poll with
    /// [`Interrupt::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether `cancel()` has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// True if this budget can never trip — lets engines skip the poll
    /// counter entirely on the (common) unlimited default. A budget
    /// whose cancel flag has other live holders is *not* unlimited even
    /// without a deadline: any of those holders may `cancel()` it
    /// mid-exploration, so the engine must keep polling.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.soft_max_states.is_none()
            && !self.is_cancelled()
            && Arc::strong_count(&self.cancel) == 1
    }

    /// One cheap poll. `tick` is the caller's loop counter (any
    /// monotonically increasing value); `unique` is the current visited
    /// count for the soft cap. Returns `Some` the first time the budget
    /// trips. Cancellation wins over the deadline so an explicit
    /// `cancel()` is never masked as a timeout.
    #[inline]
    pub fn check(&self, tick: u64, unique: usize) -> Option<Interrupt> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(Interrupt::Cancelled);
        }
        if let Some(cap) = self.soft_max_states {
            if unique >= cap {
                return Some(Interrupt::TimedOut);
            }
        }
        if let Some(deadline) = self.deadline {
            if tick & POLL_MASK == 0 && Instant::now() >= deadline {
                return Some(Interrupt::TimedOut);
            }
        }
        None
    }

    /// Like [`check`](Budget::check) but always reads the clock —
    /// engines call this once before entering their loop so even a
    /// deadline already in the past trips on the very first poll.
    pub fn check_now(&self, unique: usize) -> Option<Interrupt> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(Interrupt::Cancelled);
        }
        if let Some(cap) = self.soft_max_states {
            if unique >= cap {
                return Some(Interrupt::TimedOut);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Interrupt::TimedOut);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        for tick in 0..1000 {
            assert_eq!(b.check(tick, usize::MAX), None);
        }
    }

    #[test]
    fn cancel_is_seen_through_clones_and_wins_over_deadline() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_secs(1));
        let clone = b.clone();
        clone.cancel();
        assert_eq!(b.check(0, 0), Some(Interrupt::Cancelled));
        assert_eq!(b.check_now(0), Some(Interrupt::Cancelled));
    }

    #[test]
    fn restamped_deadline_shares_the_cancel_flag() {
        let token = Budget::unlimited();
        let stamped = token.with_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert_eq!(stamped.check_now(0), None);
        token.cancel();
        assert_eq!(stamped.check_now(0), Some(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_timed_out_on_aligned_tick() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        // Unaligned ticks skip the clock read; tick 64 reads it.
        assert_eq!(b.check(1, 0), None);
        assert_eq!(b.check(64, 0), Some(Interrupt::TimedOut));
        assert_eq!(b.check_now(0), Some(Interrupt::TimedOut));
    }

    #[test]
    fn soft_state_cap_trips_without_clock() {
        let b = Budget::new(None, Some(10));
        assert_eq!(b.check(3, 9), None);
        assert_eq!(b.check(3, 10), Some(Interrupt::TimedOut));
    }

    #[test]
    fn a_shared_cancel_token_is_not_unlimited() {
        // Another holder of the flag may cancel at any time — engines
        // must not take the skip-all-polling fast path.
        let token = Budget::unlimited();
        let held_elsewhere = token.clone();
        assert!(!token.is_unlimited());
        held_elsewhere.cancel();
        assert_eq!(token.check(1, 0), Some(Interrupt::Cancelled));
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let b = Budget::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(b.check(0, 0), None);
        assert_eq!(b.check_now(0), None);
    }
}
