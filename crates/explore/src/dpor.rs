//! Sleep-set dynamic partial-order reduction — the third backend.
//!
//! The sequential BFS already collapses *states* reached by different
//! interleavings of the same execution (the canonical fingerprint of
//! `c11_core::state` is interleaving-insensitive), but it still pays for
//! every redundant *transition*: from each state it generates every
//! thread's successors, only to have dedup throw most of them away. This
//! engine prunes those transitions up front with sleep sets: after
//! exploring thread `t` from a state, every later sibling step
//! *independent* of `t` carries `t` asleep into its successor — the
//! commuted order would only re-derive a state the `t`-first order
//! already produces. Dedup stays keyed by the same 128-bit configuration
//! fingerprints as the sequential engine.
//!
//! ## The contract: every state, fewer transitions
//!
//! Sleep sets (without persistent/source sets) prune **transitions,
//! never states**: the reduced search still generates *exactly* the
//! sequential engine's state set, so `unique`, the finals multiset,
//! litmus verdicts, invariant violations and the truncation flag all
//! coincide with the reference engine — the property the api crate's
//! backend-agnostic result cache relies on (reports are cached without
//! the backend in the key). Only `generated` (and wall time) shrink.
//! This is deliberate: source-set DPOR prunes harder but loses
//! intermediate states, which would break the
//! all-backends-identical-reports contract for invariant checking; it is
//! recorded in the ROADMAP as the next lever behind a finals-only mode.
//!
//! The one bound outside the contract is the `max_states` safety cap:
//! it cuts the search after a fixed *number* of states, and since this
//! engine enqueues in a different order than the sequential BFS, a
//! cap-truncated run keeps a different prefix (the parallel engine has
//! the same caveat — worker scheduling decides its prefix). Both
//! engines still report `truncated = true`; the event and depth bounds
//! are per-state properties and stay exactly equal.
//!
//! ## One-level sleep sets, no wake-ups
//!
//! This is the *non-inherited* variant: a successor's sleep set contains
//! only threads explored before the stepping thread **at its own
//! parent** — an arriving sleep set is consulted at expansion and then
//! dropped, never merged into grandchildren. The classical stateful
//! variant (Godefroid) inherits sleep sets down the tree and must then
//! re-explore ("wake") threads whenever a visited state is re-reached
//! under a smaller sleep set; on racy programs where most states are
//! reachable from several interleavings, those wake-ups cancel nearly
//! all pruning. The one-level discipline needs no wake-ups at all: each
//! pruned transition `t` at `v(P)` is justified *directly* — `t` was
//! explored at `P` itself, and `v` is (inductively, along parents with
//! strictly earlier first-generation times) explored at `t(P)`, so the
//! commuted target `t(v(P)) = v(t(P))` is always generated. Second
//! arrivals at visited states are plain dedup rejects, exactly as in the
//! sequential engine.
//!
//! ## Independence and races
//!
//! Two cross-thread steps are independent when they commute exactly and
//! neither changes the other's enabled transitions:
//!
//! * a τ step is independent of every other-thread step (it touches only
//!   its own thread's residual command and registers);
//! * two action steps are delegated to
//!   [`MemoryModel::actions_independent`] — the shipped models use the
//!   variable-footprint race rule of `c11_core::model::shapes_race`
//!   (same variable and at least one write ⇒ dependent); models without
//!   an oracle default to "always dependent", degenerating to the plain
//!   BFS (sound, no reduction).
//!
//! One extra guard makes sleeping safe under the `max_events` bound: a
//! step may only be put to sleep by a step that grows the memory state
//! at least as much (τ never sleeps an action). Otherwise the covering
//! path through the action-first order could be cut by the event bound
//! while the τ-first state survives it, losing a state that the
//! sequential engine (which bound-checks at expansion, not generation)
//! still reports.

use crate::engine::{config_fingerprint, ExploreConfig, ExploreResult, TraceArena, TraceStep};
use crate::sym::{sym_fingerprint, SymClasses};
use c11_core::config::{Config, ConfigStep};
use c11_core::model::MemoryModel;
use c11_lang::step::StepShape;
use c11_lang::{Prog, ThreadId};
use c11_store::{AnyStore, StoreStats, VisitedStore};
use std::collections::VecDeque;

/// Sleep sets are thread-id bitmasks (bit `i` = thread `i + 1`). Programs
/// wider than 64 threads get an always-empty mask: no reduction, still
/// sound.
pub(crate) type SleepMask = u64;

/// The mask bit of thread index `t`; 0 past the mask width (so the
/// >64-thread fallback never evaluates an overflowing shift).
pub(crate) fn bit(t: usize) -> SleepMask {
    if t < SleepMask::BITS as usize {
        1 << t
    } else {
        0
    }
}

/// How much a step grows the memory state: 0 for τ, 1 for actions. The
/// event-bound guard compares these (see the module docs).
fn growth(shape: &StepShape) -> u8 {
    match shape {
        StepShape::Tau => 0,
        StepShape::Act(_) => 1,
    }
}

/// May thread `u`'s enabled step be put to sleep across thread `t`'s
/// step? — the per-state race check: independence (τ is free; actions go
/// to the model's oracle) plus the event-growth guard.
fn can_sleep<M: MemoryModel>(
    model: &M,
    mem: &M::State,
    shapes: &[Option<StepShape>],
    u: usize,
    t: usize,
) -> bool {
    let (Some(su), Some(st)) = (&shapes[u], &shapes[t]) else {
        return false;
    };
    if growth(su) > growth(st) {
        return false;
    }
    match (su, st) {
        (StepShape::Tau, _) | (_, StepShape::Tau) => true,
        (StepShape::Act(a), StepShape::Act(b)) => {
            model.actions_independent(mem, (ThreadId(u as u8 + 1), a), (ThreadId(t as u8 + 1), b))
        }
    }
}

/// The sleep set carried to the successor reached by thread `t`: every
/// sibling already explored at this state that may sleep across `t`.
pub(crate) fn successor_sleep<M: MemoryModel>(
    model: &M,
    mem: &M::State,
    shapes: &[Option<StepShape>],
    explored: SleepMask,
    t: usize,
) -> SleepMask {
    let mut out = 0;
    let mut rest = explored;
    while rest != 0 {
        let u = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        if can_sleep(model, mem, shapes, u, t) {
            out |= 1 << u;
        }
    }
    out
}

/// Explores all reachable configurations of `prog` under `model` with
/// sleep-set partial-order reduction, checking `inv` on each. Returns the
/// same [`ExploreResult`] as the sequential engine — identical `unique`,
/// finals multiset, violations and truncation — with a smaller
/// `generated` count wherever independent steps let siblings sleep.
/// Deduplication is always on ([`ExploreConfig::dedup`] is ignored):
/// sleep-set soundness leans on the fingerprint-keyed visited set.
pub fn explore_dpor_invariant<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    mut inv: F,
) -> ExploreResult<M>
where
    M: MemoryModel,
    F: FnMut(&Config<M>) -> bool,
{
    let mut result = ExploreResult {
        unique: 0,
        generated: 0,
        finals: Vec::new(),
        final_traces: Vec::new(),
        truncated: false,
        violations: Vec::new(),
        stuck: 0,
        interrupted: None,
        store_stats: None,
        sym_classes: None,
    };
    let track = cfg.record_traces || cfg.witness_traces;
    let mut nodes = TraceArena::new();
    let classes = SymClasses::of(prog);
    let sym_on = cfg.sym_effective(model, &classes);
    let mut visited = AnyStore::new(cfg.store);
    let mut final_nodes: Vec<usize> = Vec::new();
    let key = |c: &Config<M>| {
        if sym_on {
            sym_fingerprint(model, &classes, c)
        } else {
            config_fingerprint(model, c)
        }
    };

    // (config, trace node, depth, threads asleep at expansion).
    type Item<M> = (Config<M>, usize, usize, SleepMask);
    let mut queue: VecDeque<Item<M>> = VecDeque::new();

    let initial = Config::initial(model, prog);
    visited.insert(key(&initial));
    if !inv(&initial) {
        result.violations.push((initial.clone(), Vec::new()));
    }
    if initial.is_terminated() {
        result.finals.push(initial);
        final_nodes.push(TraceArena::ROOT);
    } else {
        queue.push_back((initial, TraceArena::ROOT, 0, 0));
    }
    result.unique = 1;

    // Mirrors the sequential engine's budget discipline: one clock read
    // up front, then a cheap poll per popped state.
    let budget = &cfg.budget;
    let unlimited = budget.is_unlimited();
    if !unlimited {
        result.interrupted = budget.check_now(result.unique);
    }
    let mut tick: u64 = 0;
    while result.interrupted.is_none() {
        let Some((config, node_idx, depth, sleep)) = queue.pop_front() else {
            break;
        };
        if !unlimited {
            tick += 1;
            if let Some(why) = budget.check(tick, result.unique) {
                result.interrupted = Some(why);
                break;
            }
        }
        if result.unique >= cfg.max_states {
            result.truncated = true;
            break;
        }
        if depth >= cfg.max_depth || model.state_size(&config.mem) >= cfg.max_events {
            result.truncated = true;
            continue;
        }
        let nthreads = config.coms.len();
        // Masks are meaningless past 64 threads: fall back to exploring
        // everything with empty sleep sets. The same fallback applies
        // under symmetry quotienting — a sleeping thread's covering path
        // can be cut by the quotient merging its target into an orbit
        // representative reached some other way, so sleep sets and
        // symmetric keying do not compose yet (the quotient itself
        // already prunes far more on the programs that have symmetry).
        let masks_ok = nthreads <= 64 && !sym_on;
        let shapes: Vec<Option<StepShape>> = config
            .thread_ids()
            .map(|t| config.step_shape_of(t))
            .collect();
        // Expansion order: τ steps first, then actions (both in thread
        // order). τ steps may sleep across actions but not vice versa
        // (the event-growth guard), so exploring them first maximises
        // pruning. Any fixed order is sound.
        let order = {
            let mut order: Vec<usize> = Vec::with_capacity(nthreads);
            order.extend((0..nthreads).filter(|&i| matches!(shapes[i], Some(StepShape::Tau))));
            order.extend((0..nthreads).filter(|&i| matches!(shapes[i], Some(StepShape::Act(_)))));
            order
        };
        let sleep = if masks_ok { sleep } else { 0 };
        let mut explored: SleepMask = 0;
        let mut generated_any = false;
        for t in order.iter().copied() {
            if sleep & bit(t) != 0 {
                continue;
            }
            let succ_sleep = if masks_ok {
                successor_sleep(model, &config.mem, &shapes, explored, t)
            } else {
                0
            };
            for ConfigStep {
                tid, label, next, ..
            } in config.successors_of(model, ThreadId(t as u8 + 1))
            {
                generated_any = true;
                result.generated += 1;
                if !visited.insert(key(&next)) {
                    continue;
                }
                let new_idx = if track {
                    nodes.push(node_idx, TraceStep { tid, label })
                } else {
                    TraceArena::ROOT // never dereferenced when tracking is off
                };
                result.unique += 1;
                if !inv(&next) {
                    let trace = if cfg.record_traces {
                        nodes.trace_of(new_idx)
                    } else {
                        Vec::new()
                    };
                    result.violations.push((next.clone(), trace));
                }
                if next.is_terminated() {
                    result.finals.push(next);
                    final_nodes.push(new_idx);
                } else {
                    queue.push_back((next, new_idx, depth + 1, succ_sleep));
                }
            }
            explored |= bit(t);
        }
        // Stuck accounting must see the *full* successor set: if the
        // awake threads produced nothing, probe the sleeping ones too —
        // their steps are discarded (they are covered elsewhere), so
        // `generated` is unaffected. Under RA this never fires.
        if !generated_any && !order.is_empty() && !config.is_terminated() {
            let slept_has_steps = order.iter().any(|&t| {
                sleep & bit(t) != 0
                    && !config
                        .successors_of(model, ThreadId(t as u8 + 1))
                        .is_empty()
            });
            if !slept_has_steps {
                result.stuck += 1;
            }
        }
    }
    if cfg.witness_traces {
        result.final_traces = final_nodes
            .into_iter()
            .map(|idx| nodes.trace_of(idx))
            .collect();
    }
    result.store_stats = Some(StoreStats {
        sym: sym_on,
        ..visited.stats()
    });
    if sym_on {
        result.sym_classes = Some(classes);
    }
    result
}

/// [`explore_dpor_invariant`] without an invariant.
pub fn explore_dpor<M: MemoryModel>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
) -> ExploreResult<M> {
    explore_dpor_invariant(model, prog, cfg, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Explorer;
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::{parse_program, ActionShape, VarId};

    /// Race detection on a hand-built two-thread state: t1 about to write
    /// x, t2 about to read y — independent; same variable — dependent.
    #[test]
    fn race_detection_on_hand_built_state() {
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; }
             thread t2 { r0 <- y; }",
        )
        .unwrap();
        let cfg = Config::initial(&RaModel, &prog);
        let shapes: Vec<Option<StepShape>> =
            cfg.thread_ids().map(|t| cfg.step_shape_of(t)).collect();
        assert!(matches!(
            shapes[0],
            Some(StepShape::Act(ActionShape::Write { var: VarId(0), .. }))
        ));
        assert!(matches!(
            shapes[1],
            Some(StepShape::Act(ActionShape::Read { var: VarId(1), .. }))
        ));
        // Disjoint variables: each may sleep across the other.
        assert!(can_sleep(&RaModel, &cfg.mem, &shapes, 0, 1));
        assert!(can_sleep(&RaModel, &cfg.mem, &shapes, 1, 0));

        let contended = parse_program(
            "vars x;
             thread t1 { x := 1; }
             thread t2 { r0 <- x; }",
        )
        .unwrap();
        let cfg = Config::initial(&RaModel, &contended);
        let shapes: Vec<Option<StepShape>> =
            cfg.thread_ids().map(|t| cfg.step_shape_of(t)).collect();
        // Write/read of the same variable race: no sleeping either way.
        assert!(!can_sleep(&RaModel, &cfg.mem, &shapes, 0, 1));
        assert!(!can_sleep(&RaModel, &cfg.mem, &shapes, 1, 0));
    }

    /// The event-growth guard: a τ may sleep across an action, never the
    /// other way around (and τ/τ is fine).
    #[test]
    fn tau_sleeps_across_actions_but_not_conversely() {
        // After its write, t1's next step is the skip-consumption τ.
        let prog = parse_program(
            "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; }",
        )
        .unwrap();
        let cfg = Config::initial(&RaModel, &prog);
        let after_w1 = cfg
            .successors_of(&RaModel, ThreadId(1))
            .into_iter()
            .next()
            .unwrap()
            .next;
        let shapes: Vec<Option<StepShape>> = after_w1
            .thread_ids()
            .map(|t| after_w1.step_shape_of(t))
            .collect();
        assert!(matches!(shapes[0], Some(StepShape::Tau)));
        assert!(matches!(shapes[1], Some(StepShape::Act(_))));
        assert!(can_sleep(&RaModel, &after_w1.mem, &shapes, 0, 1), "τ ← act");
        assert!(
            !can_sleep(&RaModel, &after_w1.mem, &shapes, 1, 0),
            "act ← τ is forbidden by the growth guard"
        );
        assert!(can_sleep(&RaModel, &after_w1.mem, &shapes, 0, 0), "τ ← τ");
    }

    /// Sleep-set bookkeeping end to end on the two-thread disjoint-writer
    /// shape: all states are kept, generated transitions shrink.
    #[test]
    fn sleep_sets_prune_transitions_never_states() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; y := 2; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let dpor = explore_dpor(&RaModel, &prog, &cfg);
        assert_eq!(dpor.unique, seq.unique, "every state is still visited");
        assert_eq!(dpor.truncated, seq.truncated);
        assert_eq!(dpor.stuck, seq.stuck);
        let mut a = seq.final_snapshots();
        let mut b = dpor.final_snapshots();
        a.sort();
        b.sort();
        assert_eq!(a, b, "finals multiset identical");
        assert!(
            dpor.generated < seq.generated,
            "independent writers must let siblings sleep ({} vs {})",
            dpor.generated,
            seq.generated
        );
    }

    /// Fully contended programs still shed the τ/action commutations.
    #[test]
    fn contended_writers_still_reduce_via_tau_sleeping() {
        let src = "vars x;
             thread t1 { x := 1; x := 2; }
             thread t2 { x := 3; x := 4; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let dpor = explore_dpor(&RaModel, &prog, &cfg);
        assert_eq!(dpor.unique, seq.unique);
        let mut a = seq.final_snapshots();
        let mut b = dpor.final_snapshots();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            dpor.generated < seq.generated,
            "τ steps must sleep across the contended writes ({} vs {})",
            dpor.generated,
            seq.generated
        );
    }

    #[test]
    fn successor_sleep_filters_by_independence() {
        let prog = parse_program(
            "vars x y z;
             thread t1 { x := 1; }
             thread t2 { y := 1; }
             thread t3 { z := 1; r0 <- y; }",
        )
        .unwrap();
        let cfg = Config::initial(&RaModel, &prog);
        let shapes: Vec<Option<StepShape>> =
            cfg.thread_ids().map(|t| cfg.step_shape_of(t)).collect();
        // t1 and t2 both explored; stepping t3 (write z) sleeps both.
        assert_eq!(
            successor_sleep(&RaModel, &cfg.mem, &shapes, 0b011, 2),
            0b011
        );
        // Advance t3 to its read of y: an explored t2 (write y) races it.
        let mut c = cfg
            .successors_of(&RaModel, ThreadId(3))
            .into_iter()
            .next()
            .unwrap()
            .next;
        while matches!(c.step_shape_of(ThreadId(3)), Some(StepShape::Tau)) {
            c = c.successors_of(&RaModel, ThreadId(3)).remove(0).next;
        }
        let shapes: Vec<Option<StepShape>> = c.thread_ids().map(|t| c.step_shape_of(t)).collect();
        assert!(matches!(
            shapes[2],
            Some(StepShape::Act(ActionShape::Read { var: VarId(1), .. }))
        ));
        assert_eq!(
            successor_sleep(&RaModel, &c.mem, &shapes, 0b011, 2),
            0b001,
            "t2 races the read of y and stays awake; t1 sleeps"
        );
    }

    /// Store-based models ride the same machinery.
    #[test]
    fn sc_model_agrees_with_sequential() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        let seq = Explorer::new(ScModel).explore(&prog, cfg.clone());
        let dpor = explore_dpor(&ScModel, &prog, &cfg);
        assert_eq!(dpor.unique, seq.unique);
        let mut a = seq.final_snapshots();
        let mut b = dpor.final_snapshots();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(dpor.generated <= seq.generated);
    }

    /// Truncation by the event bound: the reduced search must report the
    /// same truncation flag and the same surviving finals.
    #[test]
    fn truncation_matches_sequential() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; y := 2; }";
        let prog = parse_program(src).unwrap();
        for bound in [3usize, 4, 5, 6] {
            let cfg = ExploreConfig::default().max_events(bound);
            let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
            let dpor = explore_dpor(&RaModel, &prog, &cfg);
            assert_eq!(dpor.truncated, seq.truncated, "bound {bound}");
            assert_eq!(dpor.unique, seq.unique, "bound {bound}");
            let mut a = seq.final_snapshots();
            let mut b = dpor.final_snapshots();
            a.sort();
            b.sort();
            assert_eq!(a, b, "bound {bound}");
        }
    }

    #[test]
    fn witness_traces_reach_every_final() {
        let src = "vars x y;
             thread t1 { x := 1; }
             thread t2 { y := 1; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().witness_traces(true);
        let res = explore_dpor(&RaModel, &prog, &cfg);
        assert_eq!(res.final_traces.len(), res.finals.len());
        for t in &res.final_traces {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn invariant_violations_match_sequential() {
        let prog = parse_program("vars x; thread t { x := 1; x := 2; }").unwrap();
        let cfg = ExploreConfig::default();
        let seq =
            Explorer::new(RaModel)
                .explore_invariant(&prog, cfg.clone(), |c: &Config<RaModel>| c.mem.len() < 3);
        let dpor = explore_dpor_invariant(&RaModel, &prog, &cfg, |c| c.mem.len() < 3);
        assert_eq!(dpor.violations.len(), seq.violations.len());
        assert_eq!(dpor.violations[0].1.len(), seq.violations[0].1.len());
    }
}
