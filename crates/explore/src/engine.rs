//! The sequential exploration engine.

use crate::budget::{Budget, Interrupt};
use crate::sym::{sym_fingerprint, SymClasses};
use c11_core::config::{Config, ConfigStep};
use c11_core::fingerprint::{combine128, hash128_of};
use c11_core::model::MemoryModel;
use c11_lang::step::RegFile;
use c11_lang::{Prog, RegId, StepLabel, ThreadId, Val};
use c11_store::{AnyStore, StoreKind, StoreStats, VisitedStore};
use std::collections::VecDeque;

/// The 128-bit visited key of a configuration: fixed-seed fingerprints of
/// the residual commands, the register files and the memory state's
/// canonical form, mixed together. Replaces the old cloned
/// `(Vec<Com>, Vec<RegFile>, CanonKey)` tuples — no per-successor
/// allocation, and the same key works across worker threads (see
/// `c11_core::fingerprint` for the collision stance).
pub(crate) fn config_fingerprint<M: MemoryModel>(model: &M, c: &Config<M>) -> u128 {
    combine128(&[
        hash128_of(&c.coms),
        hash128_of(&c.regs),
        model.state_fingerprint(&c.mem),
    ])
}

/// Exploration bounds and switches.
///
/// Built by chaining: `ExploreConfig::default().max_events(16).dedup(false)`.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Stop expanding a configuration whose memory state has more events
    /// than this (bounds unrolling of spin loops). `usize::MAX` = no bound.
    pub max_events: usize,
    /// Hard cap on distinct configurations visited (safety net).
    pub max_states: usize,
    /// Cap on BFS depth (mainly for store-based models whose states do not
    /// grow). `usize::MAX` = no bound.
    pub max_depth: usize,
    /// Deduplicate configurations by canonical key (ablation switch E16;
    /// keep on for anything but measurements).
    pub dedup: bool,
    /// Record parent pointers so invariant violations come with traces.
    pub record_traces: bool,
    /// Additionally materialise a witness trace for every *terminated*
    /// configuration (see [`ExploreResult::final_traces`]). Off by
    /// default: witnesses cost memory proportional to `finals × depth`.
    pub witness_traces: bool,
    /// Cooperative deadline/cancellation token polled by every engine.
    /// Unlimited by default; a tripped budget terminates the run with
    /// [`ExploreResult::interrupted`] set (distinct from `truncated`).
    pub budget: Budget,
    /// Which visited-store implementation backs deduplication (see
    /// `c11_store`). [`StoreKind::Sym`] also turns on symmetric keying.
    pub store: StoreKind,
    /// Quotient the visited set by thread symmetry: configurations that
    /// are thread-relabellings of each other (threads with identical
    /// bodies) share one stored representative. Opt-in — `unique` and
    /// `generated` legitimately shrink, so symmetric runs join the
    /// finals-only side of the backend contract: verdicts and
    /// (class-sorted) final snapshots stay identical, counts may not.
    /// Silently inert for models without exact relabelling support
    /// (`MemoryModel::symmetry_exact`).
    pub symmetry: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_events: 24,
            max_states: 1_000_000,
            max_depth: usize::MAX,
            dedup: true,
            record_traces: true,
            witness_traces: false,
            budget: Budget::default(),
            store: StoreKind::Flat,
            symmetry: false,
        }
    }
}

impl ExploreConfig {
    /// Sets the event bound (chainable).
    pub fn max_events(mut self, n: usize) -> Self {
        self.max_events = n;
        self
    }

    /// Sets the distinct-configuration cap (chainable).
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Sets the BFS depth bound (chainable).
    pub fn max_depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Switches canonical-key deduplication (chainable).
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Switches violation-trace recording (chainable).
    pub fn record_traces(mut self, on: bool) -> Self {
        self.record_traces = on;
        self
    }

    /// Switches witness traces for terminated configurations (chainable).
    pub fn witness_traces(mut self, on: bool) -> Self {
        self.witness_traces = on;
        self
    }

    /// Attaches a deadline/cancellation budget (chainable).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Selects the visited-store implementation (chainable).
    pub fn store(mut self, kind: StoreKind) -> Self {
        self.store = kind;
        self
    }

    /// Switches thread-symmetry quotienting of the visited set
    /// (chainable).
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// `true` iff this run should canonicalise keys by thread symmetry
    /// for `model` on `classes` — requested (explicitly or via
    /// [`StoreKind::Sym`]), exactly supported by the model, and with
    /// something to quotient.
    pub(crate) fn sym_effective<M: MemoryModel>(&self, model: &M, classes: &SymClasses) -> bool {
        (self.symmetry || self.store == StoreKind::Sym)
            && model.symmetry_exact()
            && !classes.is_trivial()
    }
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The thread that moved.
    pub tid: ThreadId,
    /// The label of the move.
    pub label: StepLabel,
}

impl TraceStep {
    /// Renders the step with variable names resolved (`t2: Rd(f, 1)`).
    pub fn render(&self, prog: &Prog) -> String {
        let what = match &self.label {
            StepLabel::Tau => "τ".to_string(),
            StepLabel::Act(a) => {
                let v = prog
                    .var_names
                    .get(a.var().0 as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("{a:?}").replace(&format!("{:?}", a.var()), v)
            }
        };
        format!("t{}: {what}", self.tid.0)
    }
}

/// Renders a counterexample trace with variable names, one step per line.
pub fn render_trace(trace: &[TraceStep], prog: &Prog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, step) in trace.iter().enumerate() {
        let _ = writeln!(out, "  {i:>3}. {}", step.render(prog));
    }
    out
}

/// Parent-pointer arena for violation/witness trace reconstruction,
/// shared by the sequential and DPOR engines (the parallel engine keeps
/// its own cross-worker variant in [`crate::par`]). Starts with the root
/// node ([`TraceArena::ROOT`]) already in place.
pub(crate) struct TraceArena {
    nodes: Vec<TraceNode>,
}

struct TraceNode {
    parent: usize,
    step: Option<TraceStep>,
}

impl TraceArena {
    /// The initial configuration's node.
    pub(crate) const ROOT: usize = 0;

    pub(crate) fn new() -> TraceArena {
        TraceArena {
            nodes: vec![TraceNode {
                parent: usize::MAX,
                step: None,
            }],
        }
    }

    /// Records a step under `parent` and returns the new node.
    pub(crate) fn push(&mut self, parent: usize, step: TraceStep) -> usize {
        self.nodes.push(TraceNode {
            parent,
            step: Some(step),
        });
        self.nodes.len() - 1
    }

    /// The root-to-`idx` schedule.
    pub(crate) fn trace_of(&self, mut idx: usize) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        while idx != usize::MAX {
            if let Some(s) = &self.nodes[idx].step {
                steps.push(s.clone());
            }
            idx = self.nodes[idx].parent;
        }
        steps.reverse();
        steps
    }
}

/// Final register values of all threads of a terminated configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegSnapshot {
    regs: Vec<RegFile>,
}

impl RegSnapshot {
    /// The snapshot of a configuration's register files.
    pub fn of<M: MemoryModel>(cfg: &Config<M>) -> RegSnapshot {
        RegSnapshot {
            regs: cfg.regs.clone(),
        }
    }

    /// The value of register `r` of thread `t`; `None` if the thread does
    /// not exist. Unwritten registers read 0.
    pub fn get(&self, t: ThreadId, r: RegId) -> Option<Val> {
        self.regs.get(t.0 as usize - 1).map(|f| f.get(r))
    }

    /// Number of threads in the snapshot.
    pub fn num_threads(&self) -> usize {
        self.regs.len()
    }

    /// The written registers of thread `t` as `(register, value)` pairs.
    pub fn thread_regs(&self, t: ThreadId) -> Vec<(RegId, Val)> {
        self.regs
            .get(t.0 as usize - 1)
            .map(|f| f.iter().collect())
            .unwrap_or_default()
    }

    /// Canonicalises the snapshot by sorting same-class register files
    /// (see [`SymClasses::class_sort_regs`]): two orbit-equivalent
    /// snapshots become byte-identical. Lets callers compare finals of a
    /// plain run against a symmetry-quotiented one.
    pub fn class_sort(&mut self, classes: &SymClasses) {
        classes.class_sort_regs(&mut self.regs);
    }
}

/// The result of an exploration.
pub struct ExploreResult<M: MemoryModel> {
    /// Distinct configurations visited (after dedup).
    pub unique: usize,
    /// Total successor configurations generated (before dedup).
    pub generated: usize,
    /// Terminated configurations (all threads `skip`).
    pub finals: Vec<Config<M>>,
    /// When [`ExploreConfig::witness_traces`] is on, `final_traces[i]` is
    /// a trace from the initial configuration to `finals[i]`; empty
    /// otherwise.
    pub final_traces: Vec<Vec<TraceStep>>,
    /// `true` iff some configuration was not expanded due to a bound —
    /// verdicts on "forbidden" outcomes are then only valid up to the
    /// bound.
    pub truncated: bool,
    /// Configurations violating the supplied invariant, with traces (if
    /// recording was on).
    pub violations: Vec<(Config<M>, Vec<TraceStep>)>,
    /// Non-terminated configurations with no successor. The RA semantics
    /// is deadlock-free (every variable retains at least one observable
    /// write), so this should stay 0 — it is asserted as a property.
    pub stuck: usize,
    /// Set iff the run's [`Budget`] tripped (deadline passed or
    /// cancellation requested) before the bounds did. All counts are then
    /// a sane partial prefix of the search; `truncated` stays the bound
    /// verdict only.
    pub interrupted: Option<Interrupt>,
    /// Accounting of the visited store that backed this run (`None` only
    /// when deduplication was off — there was no store).
    pub store_stats: Option<StoreStats>,
    /// Set iff the run keyed the visited set by thread symmetry; carries
    /// the symmetry classes so downstream consumers (final snapshots,
    /// the litmus runner) can canonicalise or re-expand stored orbit
    /// representatives.
    pub sym_classes: Option<SymClasses>,
}

impl<M: MemoryModel> ExploreResult<M> {
    /// Register snapshots of all terminated configurations (deduplicated).
    pub fn final_register_states(&self) -> Vec<RegSnapshot> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for snap in self.final_snapshots() {
            if seen.insert(snap.clone()) {
                out.push(snap);
            }
        }
        out
    }

    /// Register snapshots of all terminated configurations, one per final
    /// (a *multiset*: distinct final configurations may share register
    /// values). Index-aligned with `finals` and `final_traces`.
    ///
    /// Under symmetry quotienting each stored final is an arbitrary
    /// orbit representative (the parallel engine keeps whichever member
    /// won the race), so the snapshots are canonicalised by sorting
    /// same-class register files — orbit-equivalent finals then yield
    /// byte-identical snapshots across all backends.
    pub fn final_snapshots(&self) -> Vec<RegSnapshot> {
        let mut snaps: Vec<RegSnapshot> = self.finals.iter().map(RegSnapshot::of).collect();
        if let Some(classes) = &self.sym_classes {
            for snap in &mut snaps {
                classes.class_sort_regs(&mut snap.regs);
            }
        }
        snaps
    }

    /// The stats of this result, stamped with a wall time.
    pub fn stats(&self, wall: std::time::Duration) -> crate::stats::Stats {
        crate::stats::Stats::of(self, wall)
    }

    /// `true` iff no invariant violation was found.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explores all reachable configurations of `prog` under `model`, checking
/// `inv` on each. The free-function form the [`crate::ExploreBackend`]
/// trait and the [`Explorer`] wrapper both delegate to.
pub fn explore_invariant_with<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    mut inv: F,
) -> ExploreResult<M>
where
    M: MemoryModel,
    F: FnMut(&Config<M>) -> bool,
{
    let mut result = ExploreResult {
        unique: 0,
        generated: 0,
        finals: Vec::new(),
        final_traces: Vec::new(),
        truncated: false,
        violations: Vec::new(),
        stuck: 0,
        interrupted: None,
        store_stats: None,
        sym_classes: None,
    };
    // Node store for trace reconstruction — only fed when someone will
    // read the parent pointers back (mirrors the parallel engine's
    // `track` guard; an untracked run does no per-state bookkeeping).
    let track = cfg.record_traces || cfg.witness_traces;
    let mut nodes = TraceArena::new();
    let classes = SymClasses::of(prog);
    let sym_on = cfg.sym_effective(model, &classes);
    let mut visited = AnyStore::new(cfg.store);
    // Node index of each final (for witness-trace materialisation).
    let mut final_nodes: Vec<usize> = Vec::new();

    let initial = Config::initial(model, prog);
    let key = |c: &Config<M>| {
        if sym_on {
            sym_fingerprint(model, &classes, c)
        } else {
            config_fingerprint(model, c)
        }
    };
    let mut queue: VecDeque<(Config<M>, usize, usize)> = VecDeque::new(); // (cfg, node, depth)
    if cfg.dedup {
        visited.insert(key(&initial));
    }
    // Check the initial configuration.
    if !inv(&initial) {
        result.violations.push((initial.clone(), Vec::new()));
    }
    if initial.is_terminated() {
        // Terminated configurations have no successors: move them
        // straight to `finals` instead of cycling them through the
        // queue.
        result.finals.push(initial);
        final_nodes.push(TraceArena::ROOT);
    } else {
        queue.push_back((initial, TraceArena::ROOT, 0));
    }
    result.unique = 1;

    // One unconditional clock read up front: a deadline already in the
    // past (e.g. a 0 ms budget) interrupts before any expansion. The
    // in-loop poll then only reads the clock every 64th iteration.
    let budget = &cfg.budget;
    let unlimited = budget.is_unlimited();
    if !unlimited {
        result.interrupted = budget.check_now(result.unique);
    }
    let mut tick: u64 = 0;
    while result.interrupted.is_none() {
        let Some((config, node_idx, depth)) = queue.pop_front() else {
            break;
        };
        if !unlimited {
            tick += 1;
            if let Some(why) = budget.check(tick, result.unique) {
                result.interrupted = Some(why);
                break;
            }
        }
        if result.unique >= cfg.max_states {
            result.truncated = true;
            break;
        }
        if depth >= cfg.max_depth || model.state_size(&config.mem) >= cfg.max_events {
            result.truncated = true;
            continue;
        }
        let successors = config.successors(model);
        if successors.is_empty() && !config.is_terminated() {
            result.stuck += 1;
        }
        for ConfigStep {
            tid, label, next, ..
        } in successors
        {
            result.generated += 1;
            if cfg.dedup && !visited.insert(key(&next)) {
                continue;
            }
            let new_idx = if track {
                nodes.push(node_idx, TraceStep { tid, label })
            } else {
                TraceArena::ROOT // never dereferenced when tracking is off
            };
            result.unique += 1;
            if !inv(&next) {
                let trace = if cfg.record_traces {
                    nodes.trace_of(new_idx)
                } else {
                    Vec::new()
                };
                result.violations.push((next.clone(), trace));
            }
            if next.is_terminated() {
                // Move — terminated configurations have no successors,
                // so only `finals` needs this value.
                result.finals.push(next);
                final_nodes.push(new_idx);
            } else {
                queue.push_back((next, new_idx, depth + 1));
            }
        }
    }
    if cfg.witness_traces {
        result.final_traces = final_nodes
            .into_iter()
            .map(|idx| nodes.trace_of(idx))
            .collect();
    }
    if cfg.dedup {
        result.store_stats = Some(StoreStats {
            sym: sym_on,
            ..visited.stats()
        });
    }
    if sym_on {
        result.sym_classes = Some(classes);
    }
    result
}

/// The exploration engine, parameterised by a memory model.
pub struct Explorer<M> {
    model: M,
}

impl<M: MemoryModel> Explorer<M> {
    /// Creates an explorer for a model.
    pub fn new(model: M) -> Explorer<M> {
        Explorer { model }
    }

    /// The model (for reuse by callers).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Explores all reachable configurations of `prog` within `cfg`.
    pub fn explore(&self, prog: &Prog, cfg: ExploreConfig) -> ExploreResult<M> {
        self.explore_invariant(prog, cfg, |_| true)
    }

    /// Explores and checks `inv` on every reachable configuration.
    pub fn explore_invariant<F>(&self, prog: &Prog, cfg: ExploreConfig, inv: F) -> ExploreResult<M>
    where
        F: FnMut(&Config<M>) -> bool,
    {
        explore_invariant_with(&self.model, prog, &cfg, inv)
    }

    /// Calls `f` on every reachable configuration (within bounds). Returns
    /// the number of distinct configurations visited. Convenience wrapper
    /// used by the verification crate to quantify over transitions.
    pub fn for_each_reachable<F>(&self, prog: &Prog, cfg: ExploreConfig, mut f: F) -> usize
    where
        F: FnMut(&Config<M>),
    {
        let result = self.explore_invariant(prog, cfg, |c| {
            f(c);
            true
        });
        result.unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::model::{RaModel, ScModel};
    use c11_lang::parse_program;

    #[test]
    fn straight_line_program_terminates() {
        let prog = parse_program("vars x; thread t { x := 1; x := 2; }").unwrap();
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        assert!(!res.truncated);
        assert!(!res.finals.is_empty());
        assert!(res.holds());
        // Final state: mo is init → w1 → w2.
        for f in &res.finals {
            assert_eq!(f.mem.len(), 3);
        }
    }

    #[test]
    fn store_buffering_under_ra_allows_both_zero() {
        // SB: t1: x:=1; r0<-y. t2: y:=1; r0<-x. RA (relaxed) allows
        // r0 = r0 = 0; SC forbids it.
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let ra = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        assert!(!ra.truncated);
        let both_zero = |snaps: &[RegSnapshot]| {
            snaps.iter().any(|s| {
                s.get(ThreadId(1), RegId(0)) == Some(0) && s.get(ThreadId(2), RegId(0)) == Some(0)
            })
        };
        assert!(both_zero(&ra.final_register_states()), "RA allows 0/0");
        let sc = Explorer::new(ScModel).explore(&prog, ExploreConfig::default());
        assert!(!sc.truncated);
        assert!(!both_zero(&sc.final_register_states()), "SC forbids 0/0");
    }

    #[test]
    fn invariant_violation_comes_with_trace() {
        let prog = parse_program("vars x; thread t { x := 1; x := 2; }").unwrap();
        // "x never written twice" fails; the trace must have ≥ 2 steps.
        let res = Explorer::new(RaModel).explore_invariant(
            &prog,
            ExploreConfig::default(),
            |c: &Config<RaModel>| c.mem.len() < 3,
        );
        assert!(!res.holds());
        // Trace: wr(x,1), τ (skip-consumption), wr(x,2).
        let (_, trace) = &res.violations[0];
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace[0].label, StepLabel::Act(_)));
        assert!(matches!(trace[1].label, StepLabel::Tau));
        assert!(matches!(trace[2].label, StepLabel::Act(_)));
    }

    #[test]
    fn spin_loop_truncates_at_event_bound() {
        let prog = parse_program(
            "vars x;
             thread t { while (x == 0) { skip; } }",
        )
        .unwrap();
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default().max_events(8));
        assert!(res.truncated, "spinning forever must hit the event bound");
        assert!(res.finals.is_empty(), "x never becomes non-zero");
    }

    #[test]
    fn dedup_reduces_state_count() {
        // Two independent writers: interleavings collapse under dedup.
        let src = "vars x y;
             thread t1 { x := 1; x := 2; }
             thread t2 { y := 1; y := 2; }";
        let prog = parse_program(src).unwrap();
        let with = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        let without = Explorer::new(RaModel).explore(
            &prog,
            ExploreConfig::default().dedup(false).max_states(100_000),
        );
        assert!(with.unique < without.unique);
        // Same final outcomes either way.
        assert_eq!(
            with.final_register_states().len(),
            without.final_register_states().len()
        );
    }

    #[test]
    fn message_passing_release_acquire_is_safe() {
        let src = "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; if (r0 == 1) { r1 <- d; } else { r1 <- 99; } }";
        let prog = parse_program(src).unwrap();
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        assert!(!res.truncated);
        for snap in res.final_register_states() {
            if snap.get(ThreadId(2), RegId(0)) == Some(1) {
                assert_eq!(
                    snap.get(ThreadId(2), RegId(1)),
                    Some(5),
                    "acquire of the release flag must publish d = 5"
                );
            }
        }
    }

    #[test]
    fn message_passing_relaxed_is_unsafe() {
        // Without the release annotation the stale read is allowed.
        let src = "vars d f;
             thread t1 { d := 5; f := 1; }
             thread t2 { r0 <-A f; if (r0 == 1) { r1 <- d; } else { r1 <- 99; } }";
        let prog = parse_program(src).unwrap();
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        let stale = res.final_register_states().into_iter().any(|s| {
            s.get(ThreadId(2), RegId(0)) == Some(1) && s.get(ThreadId(2), RegId(1)) == Some(0)
        });
        assert!(stale, "relaxed flag write must not publish d");
    }

    #[test]
    fn max_states_cap_truncates() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; x := 3; }
             thread t2 { y := 1; y := 2; y := 3; }";
        let prog = parse_program(src).unwrap();
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default().max_states(10));
        assert!(res.truncated);
        assert!(res.unique <= 11);
    }

    #[test]
    fn witness_traces_replay_to_the_final() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let res =
            Explorer::new(RaModel).explore(&prog, ExploreConfig::default().witness_traces(true));
        assert_eq!(res.final_traces.len(), res.finals.len());
        for trace in &res.final_traces {
            // Each final is reached by a non-empty schedule whose action
            // steps cover both threads.
            assert!(!trace.is_empty());
            let tids: std::collections::HashSet<u8> = trace.iter().map(|s| s.tid.0).collect();
            assert_eq!(tids.len(), 2);
        }
        // Off by default.
        let res = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        assert!(res.final_traces.is_empty());
    }
}
