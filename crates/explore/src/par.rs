//! Parallel exploration with crossbeam scoped workers — a full backend.
//!
//! Historically this module only *counted* states; it now returns the same
//! [`ExploreResult`] as the sequential engine: final configurations are
//! collected per worker and merged, invariants can be checked (with
//! violation traces), and witness traces for terminated configurations are
//! reconstructed from cross-worker parent pointers. This closes the
//! ROADMAP item "extend the parallel engine to full trace reconstruction".
//!
//! Layout: each worker owns a deque and pushes the successors it generates
//! there; an idle worker steals from the *back* of a victim's deque. The
//! visited set holds the same 128-bit configuration fingerprints as the
//! sequential engine, sharded across `SHARDS` mutexes by a fixed-seed
//! FNV-1a of the key, so dedup contention is spread instead of funnelled
//! through one lock. Parent pointers live in per-worker arenas; a trace
//! step is addressed by `(worker, index)`, so chains may hop arenas when
//! work is stolen.
//!
//! One deliberate divergence from the sequential engine: deduplication is
//! always on (`ExploreConfig::dedup` is ignored) — cross-worker
//! termination detection relies on the visited set, and the dedup-off
//! ablation (E16) is a sequential measurement.

use crate::engine::{config_fingerprint, ExploreConfig, ExploreResult, TraceStep};
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const SHARDS: usize = 16;

/// Shard selector: one fixed-seed FNV-1a pass over the 16 key bytes. The
/// key is already a fingerprint, but its low bits feed the hash-set's
/// bucketing — folding all 128 bits keeps shard choice independent of it.
fn shard_of(key: u128) -> usize {
    let mut fnv: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes() {
        fnv ^= b as u64;
        fnv = fnv.wrapping_mul(0x100000001b3);
    }
    (fnv as usize) % SHARDS
}

/// A cross-arena parent pointer: `(worker, index into that worker's
/// arena)`. `NodeRef::NONE` marks the root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct NodeRef {
    worker: u32,
    idx: u32,
}

impl NodeRef {
    const NONE: NodeRef = NodeRef {
        worker: u32::MAX,
        idx: u32::MAX,
    };
}

/// One parent-pointer node in a worker's arena.
struct Node {
    parent: NodeRef,
    step: Option<TraceStep>,
}

/// A queued unit of work: the configuration, its trace node and its BFS
/// depth.
type Item<M> = (Config<M>, NodeRef, usize);

/// One worker's collected terminated configurations with their trace
/// nodes.
type Finals<M> = Vec<(Config<M>, NodeRef)>;

struct Shared<M: MemoryModel> {
    /// One work deque per worker (owner pushes/pops the front, thieves
    /// take from the back).
    queues: Vec<Mutex<VecDeque<Item<M>>>>,
    visited: Vec<Mutex<HashSet<u128>>>,
    /// Per-worker parent-pointer arenas (only the owner pushes; everyone
    /// reads after the scope joins).
    arenas: Vec<Mutex<Vec<Node>>>,
    /// Per-worker terminated configurations (merged after the join).
    finals: Vec<Mutex<Finals<M>>>,
    /// Invariant violations (rare; one shared vector is fine).
    violations: Mutex<Finals<M>>,
    /// Configurations queued but not yet fully expanded; 0 ⇒ done.
    in_flight: AtomicUsize,
    truncated: AtomicBool,
    unique: AtomicUsize,
    generated: AtomicUsize,
    stuck: AtomicUsize,
}

impl<M: MemoryModel> Shared<M> {
    /// Inserts the fingerprint into its shard; `true` iff it was fresh.
    fn mark_visited(&self, key: u128) -> bool {
        self.visited[shard_of(key)].lock().insert(key)
    }

    /// Pops local work, or steals from the back of another worker's deque.
    fn find_work(&self, me: usize) -> Option<Item<M>> {
        if let Some(c) = self.queues[me].lock().pop_front() {
            return Some(c);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(c) = self.queues[(me + off) % n].lock().pop_back() {
                return Some(c);
            }
        }
        None
    }

    /// Appends a node to `me`'s arena and returns its reference.
    fn push_node(&self, me: usize, parent: NodeRef, step: Option<TraceStep>) -> NodeRef {
        let mut arena = self.arenas[me].lock();
        arena.push(Node { parent, step });
        NodeRef {
            worker: me as u32,
            idx: (arena.len() - 1) as u32,
        }
    }
}

/// Explores all reachable configurations of `prog` under `model` with
/// `workers` threads, honouring every [`ExploreConfig`] bound
/// (`max_events`, `max_states`, `max_depth`) — the old count-only engine
/// had no state cap. Returns the same [`ExploreResult`] as the sequential
/// engine; `finals` order is nondeterministic across runs (compare as a
/// multiset, or sort).
pub fn parallel_explore<M>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    workers: usize,
) -> ExploreResult<M>
where
    M: MemoryModel + Sync,
    M::State: Send,
{
    parallel_explore_invariant(model, prog, cfg, workers, &|_| true)
}

/// [`parallel_explore`] with an invariant checked on every visited
/// configuration. The invariant must be `Sync` (it is called from all
/// workers); violation traces are reconstructed when
/// `cfg.record_traces` is on.
pub fn parallel_explore_invariant<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    workers: usize,
    inv: &F,
) -> ExploreResult<M>
where
    M: MemoryModel + Sync,
    M::State: Send,
    F: Fn(&Config<M>) -> bool + Sync + ?Sized,
{
    let workers = workers.max(1);
    // Arenas are only fed when someone will read the parent pointers back.
    let track = cfg.record_traces || cfg.witness_traces;
    let shared: Shared<M> = Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        visited: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        arenas: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        finals: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        violations: Mutex::new(Vec::new()),
        in_flight: AtomicUsize::new(0),
        truncated: AtomicBool::new(false),
        unique: AtomicUsize::new(0),
        generated: AtomicUsize::new(0),
        stuck: AtomicUsize::new(0),
    };
    let initial = Config::initial(model, prog);
    shared.mark_visited(config_fingerprint(model, &initial));
    shared.unique.fetch_add(1, Ordering::Relaxed);
    let root = if track {
        shared.push_node(0, NodeRef::NONE, None)
    } else {
        NodeRef::NONE
    };
    if !inv(&initial) {
        shared.violations.lock().push((initial.clone(), root));
    }
    if initial.is_terminated() {
        shared.finals[0].lock().push((initial, root));
    } else {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        shared.queues[0].lock().push_back((initial, root, 0));
    }

    crossbeam::scope(|scope| {
        for me in 0..workers {
            let shared = &shared;
            scope.spawn(move |_| loop {
                match shared.find_work(me) {
                    Some((config, node, depth)) => {
                        if shared.unique.load(Ordering::Relaxed) >= cfg.max_states {
                            // State cap reached: stop expanding (mirrors
                            // the sequential engine's pop-time check).
                            shared.truncated.store(true, Ordering::Relaxed);
                        } else if depth >= cfg.max_depth
                            || model.state_size(&config.mem) >= cfg.max_events
                        {
                            shared.truncated.store(true, Ordering::Relaxed);
                        } else {
                            let successors = config.successors(model);
                            if successors.is_empty() && !config.is_terminated() {
                                shared.stuck.fetch_add(1, Ordering::Relaxed);
                            }
                            for step in successors {
                                shared.generated.fetch_add(1, Ordering::Relaxed);
                                let next = step.next;
                                if !shared.mark_visited(config_fingerprint(model, &next)) {
                                    continue;
                                }
                                shared.unique.fetch_add(1, Ordering::Relaxed);
                                let child = if track {
                                    shared.push_node(
                                        me,
                                        node,
                                        Some(TraceStep {
                                            tid: step.tid,
                                            label: step.label,
                                        }),
                                    )
                                } else {
                                    NodeRef::NONE
                                };
                                if !inv(&next) {
                                    shared.violations.lock().push((next.clone(), child));
                                }
                                if next.is_terminated() {
                                    // Terminated configurations have no
                                    // successors — collect them, skip the
                                    // queue (mirrors the sequential
                                    // engine).
                                    shared.finals[me].lock().push((next, child));
                                } else {
                                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                                    shared.queues[me].lock().push_back((next, child, depth + 1));
                                }
                            }
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        if shared.in_flight.load(Ordering::SeqCst) == 0 {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    // Workers are joined: unwrap the arenas and resolve parent chains.
    let arenas: Vec<Vec<Node>> = shared.arenas.into_iter().map(|m| m.into_inner()).collect();
    let trace_of = |mut r: NodeRef| {
        let mut steps = Vec::new();
        while r != NodeRef::NONE {
            let node = &arenas[r.worker as usize][r.idx as usize];
            if let Some(s) = &node.step {
                steps.push(s.clone());
            }
            r = node.parent;
        }
        steps.reverse();
        steps
    };

    let mut finals = Vec::new();
    let mut final_traces = Vec::new();
    for per_worker in shared.finals {
        for (cfg_final, node) in per_worker.into_inner() {
            if cfg.witness_traces {
                final_traces.push(trace_of(node));
            }
            finals.push(cfg_final);
        }
    }
    let violations = shared
        .violations
        .into_inner()
        .into_iter()
        .map(|(c, node)| {
            let trace = if cfg.record_traces {
                trace_of(node)
            } else {
                Vec::new()
            };
            (c, trace)
        })
        .collect();

    ExploreResult {
        unique: shared.unique.load(Ordering::Relaxed),
        generated: shared.generated.load(Ordering::Relaxed),
        finals,
        final_traces,
        truncated: shared.truncated.load(Ordering::Relaxed),
        violations,
        stuck: shared.stuck.load(Ordering::Relaxed),
    }
}

/// Counts distinct reachable configurations of `prog` under `model` with
/// `workers` threads, bounding memory states at `max_events` events.
/// Returns `(unique_states, truncated)`. Thin shim over
/// [`parallel_explore`] kept for the benches and counting sweeps; agrees
/// with the sequential engine's `unique` count for any worker count
/// (asserted corpus-wide by `tests/fingerprint_dedup.rs`).
pub fn parallel_count_states<M>(
    model: &M,
    prog: &Prog,
    max_events: usize,
    workers: usize,
) -> (usize, bool)
where
    M: MemoryModel + Sync,
    M::State: Send,
{
    let cfg = ExploreConfig::default()
        .max_events(max_events)
        .record_traces(false);
    let res = parallel_explore(model, prog, &cfg, workers);
    (res.unique, res.truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExploreConfig, Explorer};
    use c11_core::model::RaModel;
    use c11_lang::parse_program;

    #[test]
    fn parallel_matches_sequential_counts() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4] {
            let (par, truncated) = parallel_count_states(&RaModel, &prog, 24, workers);
            assert_eq!(par, seq.unique, "workers={workers}");
            assert_eq!(truncated, seq.truncated);
        }
    }

    #[test]
    fn parallel_collects_final_configurations() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4] {
            let par = parallel_explore(&RaModel, &prog, &ExploreConfig::default(), workers);
            assert_eq!(par.finals.len(), seq.finals.len(), "workers={workers}");
            let mut seq_snaps = seq.final_snapshots();
            let mut par_snaps = par.final_snapshots();
            seq_snaps.sort();
            par_snaps.sort();
            assert_eq!(seq_snaps, par_snaps, "workers={workers}");
        }
    }

    #[test]
    fn parallel_witness_traces_cover_finals() {
        let src = "vars x y;
             thread t1 { x := 1; }
             thread t2 { y := 1; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().witness_traces(true);
        let res = parallel_explore(&RaModel, &prog, &cfg, 2);
        assert_eq!(res.final_traces.len(), res.finals.len());
        for t in &res.final_traces {
            assert!(!t.is_empty(), "every final needs a witness schedule");
        }
    }

    #[test]
    fn parallel_invariant_violation_comes_with_trace() {
        let prog = parse_program("vars x; thread t { x := 1; x := 2; }").unwrap();
        let cfg = ExploreConfig::default();
        let res = parallel_explore_invariant(&RaModel, &prog, &cfg, 2, &|c: &Config<RaModel>| {
            c.mem.len() < 3
        });
        assert!(!res.holds());
        let (_, trace) = &res.violations[0];
        // Same shape as the sequential engine's counterexample.
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn parallel_respects_max_states() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; x := 3; }
             thread t2 { y := 1; y := 2; y := 3; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().max_states(10);
        let res = parallel_explore(&RaModel, &prog, &cfg, 2);
        assert!(res.truncated, "state cap must truncate");
        // Racy overshoot is bounded by one batch of successors per worker.
        assert!(res.unique < 100);
    }

    #[test]
    fn parallel_reports_truncation() {
        let prog = parse_program("vars x; thread t { while (x == 0) { skip; } }").unwrap();
        let (_, truncated) = parallel_count_states(&RaModel, &prog, 6, 2);
        assert!(truncated);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for k in [0u128, 1, u128::MAX, 0xdead_beef] {
            let s = shard_of(k);
            assert!(s < SHARDS);
            assert_eq!(s, shard_of(k));
        }
    }
}
