//! Parallel breadth-style exploration with crossbeam scoped workers.
//!
//! Used by the ablation experiment E16 (sequential vs parallel state-space
//! counting) and available for large sweeps. The parallel engine counts
//! and deduplicates states; it does not reconstruct traces (use the
//! sequential engine for verification runs, which need determinism and
//! counterexamples).
//!
//! Layout: each worker owns a deque and pushes the successors it generates
//! there; an idle worker steals from the *back* of a victim's deque. The
//! visited set holds the same 128-bit configuration fingerprints as the
//! sequential engine, sharded across `SHARDS` mutexes by a fixed-seed
//! FNV-1a of the key, so dedup contention is spread instead of funnelled
//! through one lock.

use crate::engine::config_fingerprint;
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const SHARDS: usize = 16;

/// Shard selector: one fixed-seed FNV-1a pass over the 16 key bytes. The
/// key is already a fingerprint, but its low bits feed the hash-set's
/// bucketing — folding all 128 bits keeps shard choice independent of it.
fn shard_of(key: u128) -> usize {
    let mut fnv: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes() {
        fnv ^= b as u64;
        fnv = fnv.wrapping_mul(0x100000001b3);
    }
    (fnv as usize) % SHARDS
}

struct Shared<M: MemoryModel> {
    /// One work deque per worker (owner pushes/pops the front, thieves
    /// take from the back).
    queues: Vec<Mutex<VecDeque<Config<M>>>>,
    visited: Vec<Mutex<HashSet<u128>>>,
    /// Configurations queued but not yet fully expanded; 0 ⇒ done.
    in_flight: AtomicUsize,
    truncated: AtomicBool,
    unique: AtomicUsize,
}

impl<M: MemoryModel> Shared<M> {
    /// Inserts the fingerprint into its shard; `true` iff it was fresh.
    fn mark_visited(&self, key: u128) -> bool {
        self.visited[shard_of(key)].lock().insert(key)
    }

    /// Pops local work, or steals from the back of another worker's deque.
    fn find_work(&self, me: usize) -> Option<Config<M>> {
        if let Some(c) = self.queues[me].lock().pop_front() {
            return Some(c);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(c) = self.queues[(me + off) % n].lock().pop_back() {
                return Some(c);
            }
        }
        None
    }
}

/// Counts distinct reachable configurations of `prog` under `model` with
/// `workers` threads, bounding memory states at `max_events` events.
/// Returns `(unique_states, truncated)`. Agrees with the sequential
/// engine's `unique` count for any worker count (asserted corpus-wide by
/// `tests/fingerprint_dedup.rs`).
pub fn parallel_count_states<M>(
    model: &M,
    prog: &Prog,
    max_events: usize,
    workers: usize,
) -> (usize, bool)
where
    M: MemoryModel + Sync,
    M::State: Send,
{
    let workers = workers.max(1);
    let shared: Shared<M> = Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        visited: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        in_flight: AtomicUsize::new(0),
        truncated: AtomicBool::new(false),
        unique: AtomicUsize::new(0),
    };
    let initial = Config::initial(model, prog);
    shared.mark_visited(config_fingerprint(model, &initial));
    shared.unique.fetch_add(1, Ordering::Relaxed);
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    shared.queues[0].lock().push_back(initial);

    crossbeam::scope(|scope| {
        for me in 0..workers {
            let shared = &shared;
            scope.spawn(move |_| loop {
                match shared.find_work(me) {
                    Some(config) => {
                        if model.state_size(&config.mem) >= max_events {
                            shared.truncated.store(true, Ordering::Relaxed);
                        } else {
                            for step in config.successors(model) {
                                let next = step.next;
                                if shared.mark_visited(config_fingerprint(model, &next)) {
                                    shared.unique.fetch_add(1, Ordering::Relaxed);
                                    // Terminated configurations have no
                                    // successors — count them, skip the
                                    // queue (mirrors the sequential
                                    // engine).
                                    if !next.is_terminated() {
                                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                                        shared.queues[me].lock().push_back(next);
                                    }
                                }
                            }
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        if shared.in_flight.load(Ordering::SeqCst) == 0 {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    (
        shared.unique.load(Ordering::Relaxed),
        shared.truncated.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExploreConfig, Explorer};
    use c11_core::model::RaModel;
    use c11_lang::parse_program;

    #[test]
    fn parallel_matches_sequential_counts() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4] {
            let (par, truncated) = parallel_count_states(&RaModel, &prog, 24, workers);
            assert_eq!(par, seq.unique, "workers={workers}");
            assert_eq!(truncated, seq.truncated);
        }
    }

    #[test]
    fn parallel_reports_truncation() {
        let prog = parse_program("vars x; thread t { while (x == 0) { skip; } }").unwrap();
        let (_, truncated) = parallel_count_states(&RaModel, &prog, 6, 2);
        assert!(truncated);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for k in [0u128, 1, u128::MAX, 0xdead_beef] {
            let s = shard_of(k);
            assert!(s < SHARDS);
            assert_eq!(s, shard_of(k));
        }
    }
}
