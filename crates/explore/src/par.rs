//! Parallel breadth-style exploration with crossbeam scoped workers.
//!
//! Used by the ablation experiment E16 (sequential vs parallel state-space
//! counting) and available for large sweeps. The parallel engine counts
//! and deduplicates states; it does not reconstruct traces (use the
//! sequential engine for verification runs, which need determinism and
//! counterexamples).

use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::{Com, Prog};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Shared exploration state: a work queue and a visited set, both sharded
/// behind mutexes (contention is modest at litmus scale; correctness and
/// simplicity first, cf. the Rust atomics guidance on starting with locks).
/// Dedup key: commands, register-file hash, canonical memory key.
type ParKey<M> = (Vec<Com>, u64, <M as MemoryModel>::CanonKey);

struct Shared<M: MemoryModel> {
    queue: Mutex<VecDeque<Config<M>>>,
    visited: Vec<Mutex<HashSet<ParKey<M>>>>,
    in_flight: AtomicUsize,
    truncated: AtomicBool,
    unique: AtomicUsize,
}

const SHARDS: usize = 16;

fn shard_of<K: std::hash::Hash>(k: &K) -> usize {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    // RandomState would differ per call; use a fixed-seed FNV instead.
    let _ = &mut h;
    let mut fnv: u64 = 0xcbf29ce484222325;
    let mut buf = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut buf);
    let bytes = buf.finish().to_le_bytes();
    for b in bytes {
        fnv ^= b as u64;
        fnv = fnv.wrapping_mul(0x100000001b3);
    }
    (fnv as usize) % SHARDS
}

/// Counts distinct reachable configurations of `prog` under `model` with
/// `workers` threads, bounding memory states at `max_events` events.
/// Returns `(unique_states, truncated)`.
pub fn parallel_count_states<M>(
    model: &M,
    prog: &Prog,
    max_events: usize,
    workers: usize,
) -> (usize, bool)
where
    M: MemoryModel + Sync,
    M::State: Send,
    M::CanonKey: Send,
{
    let shared: Shared<M> = Shared {
        queue: Mutex::new(VecDeque::new()),
        visited: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        in_flight: AtomicUsize::new(0),
        truncated: AtomicBool::new(false),
        unique: AtomicUsize::new(0),
    };
    let initial = Config::initial(model, prog);
    let regs_hash = |c: &Config<M>| {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        c.regs.hash(&mut h);
        h.finish()
    };
    let key0 = (
        initial.coms.clone(),
        regs_hash(&initial),
        model.canonical_key(&initial.mem),
    );
    shared.visited[shard_of(&key0)].lock().insert(key0);
    shared.unique.fetch_add(1, Ordering::Relaxed);
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    shared.queue.lock().push_back(initial);

    crossbeam::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|_| loop {
                let item = shared.queue.lock().pop_front();
                match item {
                    Some(config) => {
                        if model.state_size(&config.mem) >= max_events {
                            shared.truncated.store(true, Ordering::Relaxed);
                        } else {
                            for step in config.successors(model) {
                                let next = step.next;
                                let k = (
                                    next.coms.clone(),
                                    regs_hash(&next),
                                    model.canonical_key(&next.mem),
                                );
                                let fresh = shared.visited[shard_of(&k)].lock().insert(k);
                                if fresh {
                                    shared.unique.fetch_add(1, Ordering::Relaxed);
                                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                                    shared.queue.lock().push_back(next);
                                }
                            }
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        if shared.in_flight.load(Ordering::SeqCst) == 0 {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    (
        shared.unique.load(Ordering::Relaxed),
        shared.truncated.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExploreConfig, Explorer};
    use c11_core::model::RaModel;
    use c11_lang::parse_program;

    #[test]
    fn parallel_matches_sequential_counts() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4] {
            let (par, truncated) = parallel_count_states(&RaModel, &prog, 24, workers);
            assert_eq!(par, seq.unique, "workers={workers}");
            assert_eq!(truncated, seq.truncated);
        }
    }

    #[test]
    fn parallel_reports_truncation() {
        let prog = parse_program("vars x; thread t { while (x == 0) { skip; } }").unwrap();
        let (_, truncated) = parallel_count_states(&RaModel, &prog, 6, 2);
        assert!(truncated);
    }
}
