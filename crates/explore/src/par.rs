//! Parallel exploration with contention-free hot paths — a full backend.
//!
//! The engine returns the same [`ExploreResult`] as the sequential BFS:
//! identical `unique`/`generated` counts, finals multiset, violations and
//! truncation flags for any worker count (pinned corpus-wide by
//! `tests/par_scaling.rs`). What changed relative to the first parallel
//! engine is *where state lives*:
//!
//! - **Work queues are worker-private.** Each worker pushes and pops its
//!   own `VecDeque` with no lock at all. Load balancing goes through a
//!   single chunk injector: when the `hungry` counter says someone is
//!   starving, a busy worker splits off the back half of its queue and
//!   publishes it as one chunk — one lock acquisition amortised over half
//!   a queue, instead of a lock per push/pop/steal.
//! - **Trace arenas, finals and counters are worker-local** and travel
//!   back through the scoped-thread join handles; nothing merges until
//!   the workers are done (the epoch boundary is the scope join).
//! - **The visited set is split in two.** A worker-private `HashSet`
//!   answers "did *I* already generate this fingerprint" without any
//!   sharing; only on a local miss does the worker consult the global
//!   [`ConcurrentStore`] (from `c11-store`) — for the flat and symmetry
//!   store kinds that is the striped open-addressed table whose inserts
//!   are lock-free CAS claims (the per-stripe `RwLock` is only taken
//!   exclusively to grow the table), for the hash-consed kind a striped
//!   mutex over paged stores. The store is the linearizable authority:
//!   exactly one worker wins each fingerprint, so the
//!   all-backends-identical-reports contract survives arbitrary
//!   interleavings.
//!
//! Memory states are shared, not copied: `Config::mem` is an
//! `Arc<M::State>`, so τ-successors alias their parent's state and the
//! per-state canonical fingerprint is computed once and cached (see
//! `c11_core::state`). That is what `M::State: Sync` buys.
//!
//! One deliberate divergence from the sequential engine: deduplication is
//! always on (`ExploreConfig::dedup` is ignored) — cross-worker
//! termination detection relies on the visited filter, and the dedup-off
//! ablation (E16) is a sequential measurement.

use crate::budget::Interrupt;
use crate::engine::{config_fingerprint, ExploreConfig, ExploreResult, TraceStep};
use crate::sym::{sym_fingerprint, SymClasses};
use c11_core::config::Config;
use c11_core::model::MemoryModel;
use c11_lang::Prog;
use c11_store::concurrent::ConcurrentStore;
use c11_store::StoreStats;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

// ---- the exploration engine --------------------------------------------

/// A cross-arena parent pointer: `(worker, index into that worker's
/// arena)`. `NodeRef::NONE` marks the root configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct NodeRef {
    worker: u32,
    idx: u32,
}

impl NodeRef {
    const NONE: NodeRef = NodeRef {
        worker: u32::MAX,
        idx: u32::MAX,
    };
}

/// One parent-pointer node in a worker's arena. Only the owning worker
/// pushes; everyone reads after the scope joins.
struct Node {
    parent: NodeRef,
    step: TraceStep,
}

/// A queued unit of work: the configuration, its trace node and its BFS
/// depth.
type Item<M> = (Config<M>, NodeRef, usize);

/// Terminated configurations with their trace nodes.
type Finals<M> = Vec<(Config<M>, NodeRef)>;

/// Everything a worker accumulated privately, returned through its join
/// handle and merged once — the "epoch publication" of the per-worker
/// arenas.
struct WorkerOut<M: MemoryModel> {
    arena: Vec<Node>,
    finals: Finals<M>,
    generated: usize,
    stuck: usize,
}

/// The (deliberately small) shared core: the dedup filter, the chunk
/// injector for load balancing, and the counters that must be global —
/// `unique` feeds the racy-bounded `max_states` check, `in_flight` drives
/// termination detection.
struct Shared<M: MemoryModel> {
    filter: ConcurrentStore,
    /// Donated work, one `Vec` per donation. Locked once per chunk, not
    /// per item.
    injector: Mutex<VecDeque<Vec<Item<M>>>>,
    /// Length mirror of `injector` so donors and takers can poll without
    /// the lock.
    injector_len: AtomicUsize,
    /// Number of workers currently starving; a busy worker donates while
    /// this exceeds the chunks already available.
    hungry: AtomicUsize,
    /// Configurations queued but not yet fully expanded; 0 ⇒ done.
    in_flight: AtomicUsize,
    unique: AtomicUsize,
    truncated: AtomicBool,
    /// Invariant violations (rare; one shared vector is fine).
    violations: Mutex<Finals<M>>,
    /// Set when any worker wants every worker to stop now — a tripped
    /// budget or a panic. Polled in the pop loop *and* the starvation
    /// loop: `in_flight` never reaches zero after an early exit, so the
    /// flag is what drains starving siblings.
    abort: AtomicBool,
    /// Why the run was interrupted: 0 = not, 1 = timed out, 2 = cancelled.
    /// First trip wins (CAS from 0).
    interrupt: AtomicUsize,
    /// The first panic payload caught at a worker boundary; re-raised on
    /// the calling thread after the scope joins, so a panicking user
    /// invariant surfaces as exactly one panic instead of stranding
    /// sibling workers (they observe `abort` and drain).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Records a budget trip and tells every worker to stop.
fn flag_interrupt<M: MemoryModel>(shared: &Shared<M>, why: Interrupt) {
    let code = match why {
        Interrupt::TimedOut => 1,
        Interrupt::Cancelled => 2,
    };
    let _ = shared
        .interrupt
        .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    shared.abort.store(true, Ordering::Relaxed);
}

/// Publishes the back half of `local` as one injector chunk when someone
/// is starving and the injector can't already feed them.
fn donate_if_hungry<M: MemoryModel>(shared: &Shared<M>, local: &mut VecDeque<Item<M>>) {
    if local.len() < 2 {
        return;
    }
    if shared.hungry.load(Ordering::Relaxed) <= shared.injector_len.load(Ordering::Relaxed) {
        return;
    }
    let chunk: Vec<Item<M>> = local.split_off(local.len() / 2).into();
    shared.injector_len.fetch_add(1, Ordering::Relaxed);
    shared.injector.lock().push_back(chunk);
}

/// Takes one donated chunk, if any (lock skipped while the mirror reads
/// zero).
fn take_chunk<M: MemoryModel>(shared: &Shared<M>) -> Option<Vec<Item<M>>> {
    if shared.injector_len.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let chunk = shared.injector.lock().pop_front();
    if chunk.is_some() {
        shared.injector_len.fetch_sub(1, Ordering::Relaxed);
    }
    chunk
}

/// Explores all reachable configurations of `prog` under `model` with
/// `workers` threads, honouring every [`ExploreConfig`] bound
/// (`max_events`, `max_states`, `max_depth`). Returns the same
/// [`ExploreResult`] as the sequential engine; `finals` order is
/// nondeterministic across runs (compare as a multiset, or sort).
pub fn parallel_explore<M>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    workers: usize,
) -> ExploreResult<M>
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
{
    parallel_explore_invariant(model, prog, cfg, workers, &|_| true)
}

/// [`parallel_explore`] with an invariant checked on every visited
/// configuration. The invariant must be `Sync` (it is called from all
/// workers); violation traces are reconstructed when `cfg.record_traces`
/// is on.
pub fn parallel_explore_invariant<M, F>(
    model: &M,
    prog: &Prog,
    cfg: &ExploreConfig,
    workers: usize,
    inv: &F,
) -> ExploreResult<M>
where
    M: MemoryModel + Sync,
    M::State: Send + Sync,
    F: Fn(&Config<M>) -> bool + Sync + ?Sized,
{
    let workers = workers.max(1);
    // Arenas are only fed when someone will read the parent pointers back.
    let track = cfg.record_traces || cfg.witness_traces;
    let classes = SymClasses::of(prog);
    let sym_on = cfg.sym_effective(model, &classes);
    let initial = Config::initial(model, prog);
    let initial_bad = !inv(&initial);
    if initial.is_terminated() {
        // Nothing to explore; match the sequential result shape exactly.
        return ExploreResult {
            unique: 1,
            generated: 0,
            final_traces: if cfg.witness_traces {
                vec![Vec::new()]
            } else {
                Vec::new()
            },
            violations: if initial_bad {
                vec![(initial.clone(), Vec::new())]
            } else {
                Vec::new()
            },
            finals: vec![initial],
            truncated: false,
            stuck: 0,
            interrupted: None,
            store_stats: Some(StoreStats {
                sym: sym_on,
                ..ConcurrentStore::new(cfg.store, sym_on).stats()
            }),
            sym_classes: sym_on.then_some(classes),
        };
    }
    // A deadline already in the past (or a pre-cancelled budget) trips
    // before any thread is spawned — same discipline as the sequential
    // engine's up-front `check_now`.
    let unlimited = cfg.budget.is_unlimited();
    if !unlimited {
        if let Some(why) = cfg.budget.check_now(1) {
            return ExploreResult {
                unique: 1,
                generated: 0,
                finals: Vec::new(),
                final_traces: Vec::new(),
                truncated: false,
                violations: if initial_bad {
                    vec![(initial, Vec::new())]
                } else {
                    Vec::new()
                },
                stuck: 0,
                interrupted: Some(why),
                store_stats: Some(StoreStats {
                    sym: sym_on,
                    ..ConcurrentStore::new(cfg.store, sym_on).stats()
                }),
                sym_classes: sym_on.then_some(classes),
            };
        }
    }

    // The dedup key every worker computes: symmetry-canonical when the
    // quotient is on, the plain configuration fingerprint otherwise.
    let key = |c: &Config<M>| {
        if sym_on {
            sym_fingerprint(model, &classes, c)
        } else {
            config_fingerprint(model, c)
        }
    };

    let shared: Shared<M> = Shared {
        filter: ConcurrentStore::new(cfg.store, sym_on),
        injector: Mutex::new(VecDeque::new()),
        injector_len: AtomicUsize::new(0),
        hungry: AtomicUsize::new(0),
        in_flight: AtomicUsize::new(1),
        unique: AtomicUsize::new(1),
        truncated: AtomicBool::new(false),
        violations: Mutex::new(Vec::new()),
        abort: AtomicBool::new(false),
        interrupt: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };
    shared.filter.insert(key(&initial));
    if initial_bad {
        shared
            .violations
            .lock()
            .push((initial.clone(), NodeRef::NONE));
    }
    let mut seeds: Vec<VecDeque<Item<M>>> = (0..workers).map(|_| VecDeque::new()).collect();
    seeds[0].push_back((initial, NodeRef::NONE, 0));

    let outs: Vec<WorkerOut<M>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = seeds
            .into_iter()
            .enumerate()
            .map(|(me, seed)| {
                let shared = &shared;
                let key = &key;
                scope.spawn(move |_| {
                    // The worker body runs under `catch_unwind`: a
                    // panicking user invariant must not strand siblings
                    // spinning on `in_flight` (the panicked worker would
                    // never decrement it) or poison the scope join. The
                    // first payload is parked in `shared.panic` and
                    // re-raised once on the calling thread.
                    let work = AssertUnwindSafe(|| {
                        let mut local = seed;
                        let mut seen: HashSet<u128> = HashSet::new();
                        let mut arena: Vec<Node> = Vec::new();
                        let mut finals: Finals<M> = Vec::new();
                        let mut generated = 0usize;
                        let mut stuck = 0usize;
                        let mut tick = 0u64;
                        'work: loop {
                            let (config, node, depth) = match local.pop_front() {
                                Some(item) => item,
                                None => {
                                    // Starving: advertise it, then poll the
                                    // injector until fed or everything drains.
                                    shared.hungry.fetch_add(1, Ordering::SeqCst);
                                    let got = loop {
                                        if shared.abort.load(Ordering::Relaxed) {
                                            break None;
                                        }
                                        if !unlimited {
                                            tick += 1;
                                            if let Some(why) = cfg
                                                .budget
                                                .check(tick, shared.unique.load(Ordering::Relaxed))
                                            {
                                                flag_interrupt(shared, why);
                                                break None;
                                            }
                                        }
                                        if let Some(chunk) = take_chunk(shared) {
                                            break Some(chunk);
                                        }
                                        if shared.in_flight.load(Ordering::SeqCst) == 0 {
                                            break None;
                                        }
                                        std::thread::yield_now();
                                    };
                                    shared.hungry.fetch_sub(1, Ordering::SeqCst);
                                    match got {
                                        Some(chunk) => {
                                            local.extend(chunk);
                                            continue 'work;
                                        }
                                        None => break 'work,
                                    }
                                }
                            };
                            if shared.abort.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            if !unlimited {
                                tick += 1;
                                if let Some(why) = cfg
                                    .budget
                                    .check(tick, shared.unique.load(Ordering::Relaxed))
                                {
                                    flag_interrupt(shared, why);
                                    break 'work;
                                }
                            }
                            donate_if_hungry(shared, &mut local);
                            if shared.unique.load(Ordering::Relaxed) >= cfg.max_states {
                                // State cap reached: stop expanding (mirrors
                                // the sequential engine's pop-time check).
                                shared.truncated.store(true, Ordering::Relaxed);
                            } else if depth >= cfg.max_depth
                                || model.state_size(&config.mem) >= cfg.max_events
                            {
                                shared.truncated.store(true, Ordering::Relaxed);
                            } else {
                                let successors = config.successors(model);
                                if successors.is_empty() && !config.is_terminated() {
                                    stuck += 1;
                                }
                                for step in successors {
                                    generated += 1;
                                    let next = step.next;
                                    let k = key(&next);
                                    // Private cache first — repeats this
                                    // worker generated never touch the filter.
                                    if !seen.insert(k) {
                                        continue;
                                    }
                                    if !shared.filter.insert(k) {
                                        continue;
                                    }
                                    shared.unique.fetch_add(1, Ordering::Relaxed);
                                    let child = if track {
                                        arena.push(Node {
                                            parent: node,
                                            step: TraceStep {
                                                tid: step.tid,
                                                label: step.label,
                                            },
                                        });
                                        NodeRef {
                                            worker: me as u32,
                                            idx: (arena.len() - 1) as u32,
                                        }
                                    } else {
                                        NodeRef::NONE
                                    };
                                    if !inv(&next) {
                                        shared.violations.lock().push((next.clone(), child));
                                    }
                                    if next.is_terminated() {
                                        // Terminated configurations have no
                                        // successors — collect them, skip the
                                        // queue (mirrors the sequential
                                        // engine).
                                        finals.push((next, child));
                                    } else {
                                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                                        local.push_back((next, child, depth + 1));
                                    }
                                }
                            }
                            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        WorkerOut {
                            arena,
                            finals,
                            generated,
                            stuck,
                        }
                    });
                    match std::panic::catch_unwind(work) {
                        Ok(out) => out,
                        Err(payload) => {
                            shared.abort.store(true, Ordering::Relaxed);
                            let mut slot = shared.panic.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            WorkerOut {
                                arena: Vec::new(),
                                finals: Vec::new(),
                                generated: 0,
                                stuck: 0,
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker panicked");

    // Re-raise the first caught worker panic as one panic on this thread
    // (the session layer's `catch_unwind` turns it into one job error).
    if let Some(payload) = shared.panic.into_inner() {
        std::panic::resume_unwind(payload);
    }

    // Workers are joined: merge the published arenas and resolve parent
    // chains.
    let mut arenas: Vec<Vec<Node>> = Vec::with_capacity(workers);
    let mut worker_finals: Vec<Finals<M>> = Vec::with_capacity(workers);
    let mut generated = 0usize;
    let mut stuck = 0usize;
    for out in outs {
        arenas.push(out.arena);
        worker_finals.push(out.finals);
        generated += out.generated;
        stuck += out.stuck;
    }
    let trace_of = |mut r: NodeRef| {
        let mut steps = Vec::new();
        while r != NodeRef::NONE {
            let node = &arenas[r.worker as usize][r.idx as usize];
            steps.push(node.step.clone());
            r = node.parent;
        }
        steps.reverse();
        steps
    };

    let mut finals = Vec::new();
    let mut final_traces = Vec::new();
    for per_worker in worker_finals {
        for (cfg_final, node) in per_worker {
            if cfg.witness_traces {
                final_traces.push(trace_of(node));
            }
            finals.push(cfg_final);
        }
    }
    let violations = shared
        .violations
        .into_inner()
        .into_iter()
        .map(|(c, node)| {
            let trace = if cfg.record_traces {
                trace_of(node)
            } else {
                Vec::new()
            };
            (c, trace)
        })
        .collect();

    ExploreResult {
        unique: shared.unique.load(Ordering::Relaxed),
        generated,
        finals,
        final_traces,
        truncated: shared.truncated.load(Ordering::Relaxed),
        violations,
        stuck,
        interrupted: match shared.interrupt.load(Ordering::Relaxed) {
            1 => Some(Interrupt::TimedOut),
            2 => Some(Interrupt::Cancelled),
            _ => None,
        },
        store_stats: Some(StoreStats {
            sym: sym_on,
            ..shared.filter.stats()
        }),
        sym_classes: sym_on.then_some(classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExploreConfig, Explorer};
    use c11_core::model::RaModel;
    use c11_lang::parse_program;

    #[test]
    fn parallel_matches_sequential_counts() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4, 8] {
            let par = parallel_explore(&RaModel, &prog, &ExploreConfig::default(), workers);
            assert_eq!(par.unique, seq.unique, "workers={workers}");
            assert_eq!(par.generated, seq.generated, "workers={workers}");
            assert_eq!(par.truncated, seq.truncated);
        }
    }

    #[test]
    fn parallel_collects_final_configurations() {
        let src = "vars x y;
             thread t1 { x := 1; r0 <- y; }
             thread t2 { y := 1; r0 <- x; }";
        let prog = parse_program(src).unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        for workers in [1, 2, 4] {
            let par = parallel_explore(&RaModel, &prog, &ExploreConfig::default(), workers);
            assert_eq!(par.finals.len(), seq.finals.len(), "workers={workers}");
            let mut seq_snaps = seq.final_snapshots();
            let mut par_snaps = par.final_snapshots();
            seq_snaps.sort();
            par_snaps.sort();
            assert_eq!(seq_snaps, par_snaps, "workers={workers}");
        }
    }

    #[test]
    fn parallel_witness_traces_cover_finals() {
        let src = "vars x y;
             thread t1 { x := 1; }
             thread t2 { y := 1; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().witness_traces(true);
        let res = parallel_explore(&RaModel, &prog, &cfg, 2);
        assert_eq!(res.final_traces.len(), res.finals.len());
        for t in &res.final_traces {
            assert!(!t.is_empty(), "every final needs a witness schedule");
        }
    }

    #[test]
    fn parallel_invariant_violation_comes_with_trace() {
        let prog = parse_program("vars x; thread t { x := 1; x := 2; }").unwrap();
        let cfg = ExploreConfig::default();
        let res = parallel_explore_invariant(&RaModel, &prog, &cfg, 2, &|c: &Config<RaModel>| {
            c.mem.len() < 3
        });
        assert!(!res.holds());
        let (_, trace) = &res.violations[0];
        // Same shape as the sequential engine's counterexample.
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn parallel_respects_max_states() {
        let src = "vars x y;
             thread t1 { x := 1; x := 2; x := 3; }
             thread t2 { y := 1; y := 2; y := 3; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default().max_states(10);
        let res = parallel_explore(&RaModel, &prog, &cfg, 2);
        assert!(res.truncated, "state cap must truncate");
        // Racy overshoot is bounded by one batch of successors per worker.
        assert!(res.unique < 100);
    }

    #[test]
    fn parallel_reports_truncation() {
        let prog = parse_program("vars x; thread t { while (x == 0) { skip; } }").unwrap();
        let cfg = ExploreConfig::default().max_events(6).record_traces(false);
        let res = parallel_explore(&RaModel, &prog, &cfg, 2);
        assert!(res.truncated);
    }

    #[test]
    fn terminated_initial_configuration_short_circuits() {
        let prog = parse_program("vars x; thread t { skip; }").unwrap();
        let seq = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        // "skip" is one τ step, so force a truly terminated initial.
        let res = parallel_explore(&RaModel, &prog, &ExploreConfig::default(), 4);
        assert_eq!(res.unique, seq.unique);
        assert_eq!(res.finals.len(), seq.finals.len());
    }

    /// Satellite regression: a panicking user invariant inside a worker
    /// must surface as exactly one panic on the calling thread — never a
    /// hang with siblings spinning on `in_flight`, never a double panic
    /// at the scope join. (Runs under the dev profile, which unwinds.)
    #[test]
    fn worker_panic_is_contained_and_reraised_once() {
        let src = "vars x;
             thread t1 { x := 1; x := 2; }
             thread t2 { x := 3; x := 4; }";
        let prog = parse_program(src).unwrap();
        let cfg = ExploreConfig::default();
        for workers in [1usize, 2, 4] {
            let caught = std::panic::catch_unwind(|| {
                parallel_explore_invariant(&RaModel, &prog, &cfg, workers, &|c: &Config<
                    RaModel,
                >| {
                    if c.mem.len() >= 3 {
                        panic!("invariant exploded");
                    }
                    true
                })
            });
            let payload = match caught {
                Err(payload) => payload,
                Ok(_) => panic!("the user panic must propagate (workers={workers})"),
            };
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("(non-str payload)");
            assert_eq!(msg, "invariant exploded", "workers={workers}");
        }
    }

    /// A pre-cancelled budget interrupts before any worker spawns; a
    /// passed deadline interrupts promptly mid-run. Neither sets the
    /// bound-truncation flag.
    #[test]
    fn budget_interrupts_parallel_exploration() {
        use crate::budget::Budget;
        let src = "vars x y;
             thread t1 { x := 1; x := 2; x := 3; }
             thread t2 { y := 1; y := 2; y := 3; }";
        let prog = parse_program(src).unwrap();
        let budget = Budget::default();
        budget.cancel();
        let cfg = ExploreConfig::default().budget(budget);
        let res = parallel_explore(&RaModel, &prog, &cfg, 4);
        assert_eq!(res.interrupted, Some(Interrupt::Cancelled));
        assert!(!res.truncated);

        let past = Budget::with_deadline(std::time::Instant::now());
        let cfg = ExploreConfig::default().budget(past);
        let res = parallel_explore(&RaModel, &prog, &cfg, 4);
        assert_eq!(res.interrupted, Some(Interrupt::TimedOut));
        assert!(!res.truncated);
        assert!(res.unique >= 1, "partial stats stay sane");
    }

    // The CAS-filter unit tests moved to `c11_store::concurrent` with
    // the filter itself (exact-once insertion, reserved low words,
    // concurrent-insert safety, shard stability).
}
