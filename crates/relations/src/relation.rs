//! Finite binary relations over `0..n` with dense bitset rows.
//!
//! A [`Relation`] is an adjacency structure: `rows[a]` is the set of `b`
//! with `(a, b) ∈ R`. All of the relational vocabulary of the paper —
//! composition `R ; S`, inverse `R⁻¹`, transitive closure `R⁺`, reflexive
//! closure `R?`, restriction, relational image — is provided here, together
//! with the order-theoretic predicates the axioms need (irreflexivity,
//! acyclicity, strict totality over a subset).

use crate::bitset::BitSet;

/// A binary relation over the carrier `{0, 1, .., n-1}`.
///
/// Like [`BitSet`], equality and hashing are *semantic*: two relations with
/// the same edges compare equal regardless of declared carrier size, so
/// relations that grew along different execution paths can be compared and
/// deduplicated safely.
#[derive(Clone, Default)]
pub struct Relation {
    n: usize,
    rows: Vec<BitSet>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        let common = self.rows.len().min(other.rows.len());
        self.rows[..common] == other.rows[..common]
            && self.rows[common..].iter().all(BitSet::is_empty)
            && other.rows[common..].iter().all(BitSet::is_empty)
    }
}

impl Eq for Relation {}

impl std::hash::Hash for Relation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let last = self
            .rows
            .iter()
            .rposition(|r| !r.is_empty())
            .map_or(0, |i| i + 1);
        for row in &self.rows[..last] {
            row.hash(state);
        }
        last.hash(state);
    }
}

impl Relation {
    /// The empty relation over a carrier of size `n`.
    pub fn new(n: usize) -> Self {
        Relation {
            n,
            rows: vec![BitSet::new(); n],
        }
    }

    /// Builds a relation from edge pairs; the carrier must accommodate the
    /// largest endpoint.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(n: usize, pairs: I) -> Self {
        let mut r = Relation::new(n);
        for (a, b) in pairs {
            r.add(a, b);
        }
        r
    }

    /// The identity relation over `{0, .., n-1}`.
    pub fn identity(n: usize) -> Self {
        let mut r = Relation::new(n);
        for i in 0..n {
            r.add(i, i);
        }
        r
    }

    /// Carrier size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the carrier is empty.
    pub fn is_empty_carrier(&self) -> bool {
        self.n == 0
    }

    /// `true` iff the relation has no edges.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(BitSet::is_empty)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// Extends the carrier to size `n` (no-op if already large enough).
    pub fn grow(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            self.rows.resize(n, BitSet::new());
        }
    }

    /// Adds the edge `(a, b)`.
    pub fn add(&mut self, a: usize, b: usize) {
        let needed = a.max(b) + 1;
        self.grow(needed);
        self.rows[a].insert(b);
    }

    /// Removes the edge `(a, b)` if present.
    pub fn remove(&mut self, a: usize, b: usize) {
        if a < self.rows.len() {
            self.rows[a].remove(b);
        }
    }

    /// Edge membership.
    #[inline]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.rows.len() && self.rows[a].contains(b)
    }

    /// The successor row of `a` — the relational image `R[{a}]`.
    pub fn row(&self, a: usize) -> &BitSet {
        &self.rows[a]
    }

    /// The relational image `R[a]` as an iterator.
    pub fn image(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.rows.get(a).into_iter().flat_map(|row| row.iter())
    }

    /// The pre-image `R⁻¹[b]` (computed by scanning rows).
    pub fn preimage(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&a| self.contains(a, b))
    }

    /// Iterates all edges `(a, b)`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(a, row)| row.iter().map(move |b| (a, b)))
    }

    /// In-place row union: `R[a] ∪= set`, growing the carrier as needed.
    pub fn union_into_row(&mut self, a: usize, set: &BitSet) {
        self.grow(a + 1);
        self.rows[a].union_with(set);
    }

    /// The relational image `R[sources]` of a whole set, as a bitset.
    pub fn image_set(&self, sources: &BitSet) -> BitSet {
        let mut out = BitSet::with_capacity(self.n);
        for a in sources.iter() {
            if let Some(row) = self.rows.get(a) {
                out.union_with(row);
            }
        }
        out
    }

    /// The pre-image `R⁻¹[targets]` of a whole set — every element whose
    /// row intersects `targets` — computed word-parallel per row.
    pub fn preimage_set(&self, targets: &BitSet) -> BitSet {
        let mut out = BitSet::with_capacity(self.rows.len());
        for (a, row) in self.rows.iter().enumerate() {
            if !row.is_disjoint(targets) {
                out.insert(a);
            }
        }
        out
    }

    /// The set of elements with at least one outgoing edge.
    pub fn domain(&self) -> BitSet {
        BitSet::from_iter(
            self.rows
                .iter()
                .enumerate()
                .filter(|(_, row)| !row.is_empty())
                .map(|(a, _)| a),
        )
    }

    /// The set of elements with at least one incoming edge.
    pub fn range(&self) -> BitSet {
        let mut out = BitSet::with_capacity(self.n);
        for row in &self.rows {
            out.union_with(row);
        }
        out
    }

    /// Returns the inverse relation `R⁻¹`.
    pub fn inverse(&self) -> Relation {
        let mut r = Relation::new(self.n);
        for (a, b) in self.pairs() {
            r.add(b, a);
        }
        r
    }

    /// In-place union: `self ∪= other`. Carriers are merged.
    pub fn union_with(&mut self, other: &Relation) {
        self.grow(other.n);
        for (a, row) in other.rows.iter().enumerate() {
            self.rows[a].union_with(row);
        }
    }

    /// Returns `self ∪ other`.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other`.
    pub fn intersection(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        for (a, row) in out.rows.iter_mut().enumerate() {
            match other.rows.get(a) {
                Some(orow) => row.intersect_with(orow),
                None => row.clear(),
            }
        }
        out
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        for (a, row) in out.rows.iter_mut().enumerate() {
            if let Some(orow) = other.rows.get(a) {
                row.difference_with(orow);
            }
        }
        out
    }

    /// Relational composition `self ; other` (paper notation `R;S`):
    /// `(a, c)` iff there is `b` with `(a, b) ∈ self` and `(b, c) ∈ other`.
    pub fn compose(&self, other: &Relation) -> Relation {
        let n = self.n.max(other.n);
        let mut out = Relation::new(n);
        for (a, row) in self.rows.iter().enumerate() {
            let target = &mut out.rows[a];
            for b in row.iter() {
                if let Some(obrow) = other.rows.get(b) {
                    target.union_with(obrow);
                }
            }
        }
        out
    }

    /// Reflexive closure `R?` over the carrier.
    pub fn reflexive_closure(&self) -> Relation {
        let mut out = self.clone();
        for i in 0..out.n {
            out.rows[i].insert(i);
        }
        out
    }

    /// Transitive closure `R⁺` via iterated row propagation
    /// (bitset-accelerated Warshall).
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        // Warshall: for each intermediate k, every row containing k absorbs
        // row(k). Row unions are word-parallel over the bitsets.
        for k in 0..out.n {
            let row_k = out.rows[k].clone();
            if row_k.is_empty() {
                continue;
            }
            for a in 0..out.n {
                if out.rows[a].contains(k) {
                    out.rows[a].union_with(&row_k);
                }
            }
        }
        out
    }

    /// Reflexive-transitive closure `R*`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().reflexive_closure()
    }

    /// Absorbs the edge `(a, b)` into an *already transitively closed*
    /// relation, restoring closure without a full Warshall pass. When
    /// `R = R⁺`, the closure of `R ∪ {(a, b)}` is
    /// `R ∪ (({a} ∪ R⁻¹[a]) × ({b} ∪ R[b]))`: one column scan plus one row
    /// union per predecessor, O(n²/64) instead of O(n³/64). Returns `true`
    /// iff the relation changed (if `(a, b)` was already present, closure
    /// guarantees the whole rectangle was too).
    pub fn add_edge_transitive(&mut self, a: usize, b: usize) -> bool {
        self.grow(a.max(b) + 1);
        if self.rows[a].contains(b) {
            return false;
        }
        let mut succs = self.rows[b].clone();
        succs.insert(b);
        for p in 0..self.rows.len() {
            if p == a || self.rows[p].contains(a) {
                self.rows[p].union_with(&succs);
            }
        }
        true
    }

    /// Batched [`Relation::add_edge_transitive`]: absorbs a whole star of
    /// new edges incident to one vertex `v` — `preds × {v}` and
    /// `{v} × succs` — into an already-closed relation, restoring closure
    /// in O(n²/64) regardless of how many edges the star contains. Returns
    /// the full predecessor and successor sets of `v` afterwards
    /// (`R'⁻¹[v]`, `R'[v]`), which callers use to propagate the delta
    /// rectangle `(preds' ∪ {v}) × (succs' ∪ {v})` into downstream
    /// compositions (every new pair lies inside it).
    pub fn absorb_star(&mut self, v: usize, preds: &BitSet, succs: &BitSet) -> (BitSet, BitSet) {
        self.grow(v + 1);
        // Direct successors: the old row plus the new edges, closed one
        // level through the (already transitive) old relation.
        let direct_s = self.rows[v].union(succs);
        let mut all_s = self.image_set(&direct_s);
        all_s.union_with(&direct_s);
        // Direct predecessors: the old column plus the new edges, closed
        // one level backwards.
        let mut direct_p = preds.clone();
        for (x, row) in self.rows.iter().enumerate() {
            if row.contains(v) {
                direct_p.insert(x);
            }
        }
        let mut all_p = self.preimage_set(&direct_p);
        all_p.union_with(&direct_p);
        // If the star closes a cycle through `v`, `v` reaches itself.
        if !all_p.is_disjoint(&all_s) || preds.contains(v) || succs.contains(v) {
            all_p.insert(v);
            all_s.insert(v);
        }
        self.rows[v].union_with(&all_s);
        for p in all_p.iter() {
            self.grow(p + 1);
            self.rows[p].insert(v);
            self.rows[p].union_with(&all_s);
        }
        (all_p, all_s)
    }

    /// `true` iff no `(a, a)` edge exists.
    pub fn is_irreflexive(&self) -> bool {
        self.rows
            .iter()
            .enumerate()
            .all(|(a, row)| !row.contains(a))
    }

    /// `true` iff the relation contains no cycle (equivalently, its
    /// transitive closure is irreflexive).
    pub fn is_acyclic(&self) -> bool {
        self.topo_sort().is_some()
    }

    /// `true` iff `R` is transitive.
    pub fn is_transitive(&self) -> bool {
        let closed = self.compose(self);
        for (a, b) in closed.pairs() {
            if !self.contains(a, b) {
                return false;
            }
        }
        true
    }

    /// `true` iff `R` restricted to `set` is a strict total order on `set`:
    /// irreflexive, transitive, and any two distinct elements are related
    /// one way or the other.
    pub fn is_strict_total_order_on(&self, set: &BitSet) -> bool {
        let empty = BitSet::new();
        for a in set.iter() {
            if self.contains(a, a) {
                return false;
            }
            let row_a = self.rows.get(a).unwrap_or(&empty);
            for b in set.iter() {
                if a == b {
                    continue;
                }
                let fwd = self.contains(a, b);
                if fwd == self.contains(b, a) {
                    // either unrelated or related both ways
                    return false;
                }
                // Transitivity: everything `b` reaches inside `set` must
                // already be in `a`'s row — one word-parallel subset test
                // instead of the inner c-loop.
                let row_b = self.rows.get(b).unwrap_or(&empty);
                if fwd && !row_b.is_subset_within(set, row_a) {
                    return false;
                }
            }
        }
        true
    }

    /// Restricts the relation to edges with both endpoints in `set`
    /// (paper notation `R|_E` / `R ∩ (E × E)`).
    pub fn restrict(&self, set: &BitSet) -> Relation {
        let mut out = Relation::new(self.n);
        for a in set.iter() {
            if a < self.rows.len() {
                let mut row = self.rows[a].clone();
                row.intersect_with(set);
                out.rows[a] = row;
            }
        }
        out
    }

    /// A topological order of the carrier consistent with the relation,
    /// or `None` if the relation is cyclic. Elements not touched by any
    /// edge appear in index order.
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; self.n];
        for (_, b) in self.pairs() {
            indegree[b] += 1;
        }
        // Kahn's algorithm with a stable (index-ordered) ready list.
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        ready.reverse(); // pop from the back → smallest index first
        let mut order = Vec::with_capacity(self.n);
        while let Some(next) = ready.pop() {
            order.push(next);
            for b in self.rows[next].iter() {
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    // keep the ready list sorted descending for stability
                    let pos = ready
                        .iter()
                        .rposition(|&x| x > b)
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    ready.insert(pos, b);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Applies a permutation to the carrier: the returned relation contains
    /// `(perm[a], perm[b])` for every `(a, b)` in `self`. Used for state
    /// canonicalisation during exploration.
    pub fn permute(&self, perm: &[usize]) -> Relation {
        let mut out = Relation::new(self.n);
        for (a, b) in self.pairs() {
            out.add(perm[a], perm[b]);
        }
        out
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.pairs()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: usize, pairs: &[(usize, usize)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn add_contains_remove() {
        let mut r = Relation::new(3);
        r.add(0, 1);
        assert!(r.contains(0, 1));
        assert!(!r.contains(1, 0));
        r.remove(0, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn grows_on_add() {
        let mut r = Relation::new(0);
        r.add(5, 2);
        assert_eq!(r.len(), 6);
        assert!(r.contains(5, 2));
    }

    #[test]
    fn compose_matches_definition() {
        let r = rel(4, &[(0, 1), (1, 2)]);
        let s = rel(4, &[(1, 3), (2, 0)]);
        let c = r.compose(&s);
        assert_eq!(c.pairs().collect::<Vec<_>>(), vec![(0, 3), (1, 0)]);
    }

    #[test]
    fn inverse_roundtrip() {
        let r = rel(5, &[(0, 1), (2, 4), (3, 3)]);
        assert_eq!(r.inverse().inverse(), r);
    }

    #[test]
    fn transitive_closure_chain() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = r.transitive_closure();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(c.contains(a, b), a < b, "({a},{b})");
            }
        }
    }

    #[test]
    fn closure_idempotent() {
        let r = rel(5, &[(0, 1), (1, 2), (3, 1), (2, 4)]);
        let c = r.transitive_closure();
        assert_eq!(c.transitive_closure(), c);
        assert!(c.is_transitive());
    }

    #[test]
    fn closure_detects_cycle() {
        let r = rel(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!r.is_acyclic());
        assert!(!r.transitive_closure().is_irreflexive());
        let acyclic = rel(3, &[(0, 1), (1, 2)]);
        assert!(acyclic.is_acyclic());
        assert!(acyclic.transitive_closure().is_irreflexive());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let r = rel(2, &[(1, 1)]);
        assert!(!r.is_acyclic());
        assert!(!r.is_irreflexive());
    }

    #[test]
    fn strict_total_order_detection() {
        let carrier = BitSet::from_iter([0, 1, 2]);
        let total = rel(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(total.is_strict_total_order_on(&carrier));
        let missing = rel(3, &[(0, 1), (1, 2)]); // not transitive-closed
        assert!(!missing.is_strict_total_order_on(&carrier));
        let partial = rel(3, &[(0, 1)]);
        assert!(!partial.is_strict_total_order_on(&carrier));
        // Total order on a subset ignores outside elements.
        let sub = BitSet::from_iter([0, 2]);
        assert!(rel(3, &[(0, 2)]).is_strict_total_order_on(&sub));
    }

    #[test]
    fn restrict_drops_outside_edges() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = BitSet::from_iter([1, 2]);
        let restricted = r.restrict(&s);
        assert_eq!(restricted.pairs().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn topo_sort_respects_edges() {
        let r = rel(5, &[(3, 1), (1, 4), (0, 4)]);
        let order = r.topo_sort().unwrap();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        for (a, b) in r.pairs() {
            assert!(pos(a) < pos(b));
        }
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn topo_sort_cyclic_returns_none() {
        assert!(rel(2, &[(0, 1), (1, 0)]).topo_sort().is_none());
    }

    #[test]
    fn union_intersection_difference() {
        let r = rel(3, &[(0, 1), (1, 2)]);
        let s = rel(3, &[(1, 2), (2, 0)]);
        assert_eq!(
            r.union(&s).pairs().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 0)]
        );
        assert_eq!(r.intersection(&s).pairs().collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!(r.difference(&s).pairs().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn reflexive_closure_adds_diagonal() {
        let r = rel(2, &[(0, 1)]);
        let rc = r.reflexive_closure();
        assert!(rc.contains(0, 0) && rc.contains(1, 1) && rc.contains(0, 1));
    }

    #[test]
    fn domain_and_range() {
        let r = rel(4, &[(0, 2), (1, 2), (2, 3)]);
        assert_eq!(r.domain().iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.range().iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn permute_relabels() {
        let r = rel(3, &[(0, 1), (1, 2)]);
        let p = r.permute(&[2, 0, 1]);
        assert_eq!(p.pairs().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn add_edge_transitive_keeps_closure() {
        let r = rel(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut closed = r.transitive_closure();
        assert!(closed.add_edge_transitive(2, 3));
        let mut full = r.clone();
        full.add(2, 3);
        assert_eq!(closed, full.transitive_closure());
        // Re-adding a present edge is a no-op.
        assert!(!closed.add_edge_transitive(0, 2));
    }

    #[test]
    fn add_edge_transitive_closes_cycles() {
        let r = rel(3, &[(0, 1), (1, 2)]);
        let mut closed = r.transitive_closure();
        closed.add_edge_transitive(2, 0);
        let mut full = r.clone();
        full.add(2, 0);
        assert_eq!(closed, full.transitive_closure());
        assert!(closed.contains(0, 0) && closed.contains(2, 2));
    }

    #[test]
    fn absorb_star_matches_full_closure() {
        let r = rel(6, &[(0, 1), (2, 3), (4, 5)]);
        let mut closed = r.transitive_closure();
        let preds = BitSet::from_iter([1, 5]);
        let succs = BitSet::from_iter([2]);
        let (all_p, all_s) = closed.absorb_star(4, &preds, &succs);
        let mut full = r.clone();
        for p in preds.iter() {
            full.add(p, 4);
        }
        for s in succs.iter() {
            full.add(4, s);
        }
        let full = full.transitive_closure();
        assert_eq!(closed, full);
        assert_eq!(all_p, BitSet::from_iter(full.preimage(4)));
        assert_eq!(all_s, full.row(4).clone());
    }

    #[test]
    fn image_and_preimage_sets() {
        let r = rel(5, &[(0, 2), (1, 3), (3, 4)]);
        assert_eq!(
            r.image_set(&BitSet::from_iter([0, 3])),
            BitSet::from_iter([2, 4])
        );
        assert_eq!(
            r.preimage_set(&BitSet::from_iter([3, 4])),
            BitSet::from_iter([1, 3])
        );
    }

    #[test]
    fn identity_and_difference_for_fr() {
        // fr = (rf⁻¹ ; mo) \ Id — the identity subtraction used by the paper
        // to cope with update events.
        let rf = rel(3, &[(0, 1)]); // w0 → r1 (r1 is an update reading w0)
        let mo = rel(3, &[(0, 1), (0, 2), (1, 2)]);
        let fr = rf.inverse().compose(&mo).difference(&Relation::identity(3));
        assert_eq!(fr.pairs().collect::<Vec<_>>(), vec![(1, 2)]);
    }
}
