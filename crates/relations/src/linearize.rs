//! Linearizations (linear extensions) of strict partial orders.
//!
//! The completeness theorem of the paper (Theorem 4.8) turns a valid
//! axiomatic execution into an operational run by picking a *linearization*
//! of `sb ∪ rf` and replaying events in that order. This module enumerates
//! linearizations of an acyclic relation: one, all, or a count.

use crate::bitset::BitSet;
use crate::relation::Relation;

/// Returns one linearization of `order` restricted to `carrier`, or `None`
/// if `order` is cyclic on `carrier`.
///
/// A linearization of a strict order `≺` over elements `E` is a sequence
/// `e₁ .. eₖ` covering `E` with `eᵢ ≺ eⱼ ⟹ i < j`.
pub fn some_linearization(order: &Relation, carrier: &BitSet) -> Option<Vec<usize>> {
    let restricted = order.restrict(carrier);
    let topo = restricted.topo_sort()?;
    Some(topo.into_iter().filter(|e| carrier.contains(*e)).collect())
}

/// Calls `f` with every linearization of `order` restricted to `carrier`.
/// Returns the number of linearizations visited. If `f` returns `false`
/// enumeration stops early.
///
/// The enumeration is the textbook recursive "remove a minimal element"
/// scheme; carriers in this workspace are small (≤ ~12 events), so the
/// factorial worst case is acceptable and bounded by callers.
pub fn all_linearizations<F: FnMut(&[usize]) -> bool>(
    order: &Relation,
    carrier: &BitSet,
    mut f: F,
) -> usize {
    let elems: Vec<usize> = carrier.iter().collect();
    let restricted = order.restrict(carrier);
    let mut remaining: Vec<usize> = elems;
    let mut prefix: Vec<usize> = Vec::new();
    let mut count = 0usize;
    let mut stop = false;
    rec(
        &restricted,
        &mut remaining,
        &mut prefix,
        &mut f,
        &mut count,
        &mut stop,
    );
    count
}

fn rec<F: FnMut(&[usize]) -> bool>(
    order: &Relation,
    remaining: &mut Vec<usize>,
    prefix: &mut Vec<usize>,
    f: &mut F,
    count: &mut usize,
    stop: &mut bool,
) {
    if *stop {
        return;
    }
    if remaining.is_empty() {
        *count += 1;
        if !f(prefix) {
            *stop = true;
        }
        return;
    }
    for i in 0..remaining.len() {
        let cand = remaining[i];
        // `cand` is minimal iff no remaining element precedes it.
        if remaining.iter().any(|&other| order.contains(other, cand)) {
            continue;
        }
        remaining.remove(i);
        prefix.push(cand);
        rec(order, remaining, prefix, f, count, stop);
        prefix.pop();
        remaining.insert(i, cand);
        if *stop {
            return;
        }
    }
}

/// Counts the linearizations of `order` restricted to `carrier`.
pub fn count_linearizations(order: &Relation, carrier: &BitSet) -> usize {
    all_linearizations(order, carrier, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_linearization_of_chain() {
        let order = Relation::from_pairs(3, [(0, 1), (1, 2)]);
        let carrier = BitSet::from_iter([0, 1, 2]);
        assert_eq!(count_linearizations(&order, &carrier), 1);
        assert_eq!(some_linearization(&order, &carrier), Some(vec![0, 1, 2]));
    }

    #[test]
    fn antichain_has_factorial_linearizations() {
        let order = Relation::new(4);
        let carrier = BitSet::from_iter([0, 1, 2, 3]);
        assert_eq!(count_linearizations(&order, &carrier), 24);
    }

    #[test]
    fn v_shape() {
        // 0 → 2 ← 1 : linearizations are 012 and 102.
        let order = Relation::from_pairs(3, [(0, 2), (1, 2)]);
        let carrier = BitSet::from_iter([0, 1, 2]);
        let mut seen = Vec::new();
        all_linearizations(&order, &carrier, |lin| {
            seen.push(lin.to_vec());
            true
        });
        assert_eq!(seen, vec![vec![0, 1, 2], vec![1, 0, 2]]);
    }

    #[test]
    fn every_linearization_respects_order() {
        let order = Relation::from_pairs(5, [(0, 3), (1, 3), (3, 4), (2, 4)]);
        let carrier = BitSet::from_iter([0, 1, 2, 3, 4]);
        let n = all_linearizations(&order, &carrier, |lin| {
            let pos = |x: usize| lin.iter().position(|&y| y == x).unwrap();
            for (a, b) in order.pairs() {
                assert!(pos(a) < pos(b));
            }
            true
        });
        assert!(n > 0);
    }

    #[test]
    fn early_stop() {
        let order = Relation::new(4);
        let carrier = BitSet::from_iter([0, 1, 2, 3]);
        let mut visited = 0;
        all_linearizations(&order, &carrier, |_| {
            visited += 1;
            visited < 5
        });
        assert_eq!(visited, 5);
    }

    #[test]
    fn cyclic_order_has_no_linearization() {
        let order = Relation::from_pairs(2, [(0, 1), (1, 0)]);
        let carrier = BitSet::from_iter([0, 1]);
        assert_eq!(some_linearization(&order, &carrier), None);
        assert_eq!(count_linearizations(&order, &carrier), 0);
    }

    #[test]
    fn carrier_subset_ignores_outside() {
        let order = Relation::from_pairs(4, [(0, 1), (2, 3)]);
        let carrier = BitSet::from_iter([2, 3]);
        assert_eq!(some_linearization(&order, &carrier), Some(vec![2, 3]));
        assert_eq!(count_linearizations(&order, &carrier), 1);
    }
}
