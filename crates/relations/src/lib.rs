//! Finite binary relations and dense bitsets.
//!
//! Everything in the operational C11 semantics of Doherty et al. (PPoPP'19)
//! is phrased in terms of binary relations over a finite set of events:
//! sequenced-before `sb`, reads-from `rf`, modification order `mo`, and the
//! relations derived from them (`sw`, `hb`, `fr`, `eco`). Executions in this
//! domain are small (tens of events), so relations are represented densely:
//! a [`Relation`] is a vector of [`BitSet`] rows, one per element of the
//! carrier, and the algebra (composition, closures, acyclicity checks) runs
//! over whole 64-bit blocks at a time.
//!
//! The crate is deliberately independent of the C11 vocabulary so it can be
//! tested in isolation and reused by every other crate in the workspace.

pub mod bitset;
pub mod linearize;
pub mod relation;

pub use bitset::BitSet;
pub use linearize::{all_linearizations, count_linearizations, some_linearization};
pub use relation::Relation;
