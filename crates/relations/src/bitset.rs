//! A small dense bitset over `usize` indices.
//!
//! The C11 executions manipulated by this workspace contain tens of events,
//! so word-at-a-time set operations over contiguous storage are both the
//! simplest and the fastest representation (see the perf-book guidance on
//! preferring contiguous storage). The first word lives *inline*: the
//! explorer clones relation rows millions of times, and executions with
//! up to 64 events (every litmus bound in the corpus) then never touch the
//! heap for a row. Words beyond the first spill into a `Vec`. The bitset
//! grows on demand; all binary operations accept operands of different
//! capacities.

const BITS: usize = 64;

/// A growable set of small non-negative integers backed by 64-bit words,
/// the first of which is stored inline (allocation-free for elements
/// `< 64`).
///
/// Equality and hashing are *semantic*: two sets with the same elements are
/// equal and hash identically regardless of internal capacity. This matters
/// because exploration deduplicates states by hashing relations built from
/// bitsets that grew along different paths.
#[derive(Clone, Default)]
pub struct BitSet {
    head: u64,
    tail: Vec<u64>,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let common = self.tail.len().min(other.tail.len());
        self.head == other.head
            && self.tail[..common] == other.tail[..common]
            && self.tail[common..].iter().all(|&w| w == 0)
            && other.tail[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word so that capacity is
        // invisible to hashing, mirroring `PartialEq`.
        let last = self.tail.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        self.head.hash(state);
        self.tail[..last].hash(state);
    }
}

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / BITS, 1u64 << (bit % BITS))
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Creates an empty set with capacity for elements `< n` without
    /// reallocating.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            head: 0,
            tail: vec![0; n.div_ceil(BITS).saturating_sub(1)],
        }
    }

    /// Creates the set `{0, 1, .., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::with_capacity(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of elements (also available through
    /// the `FromIterator` impl; the inherent method reads better at call
    /// sites that would otherwise need a type annotation).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Number of 64-bit words in use (inline head included).
    #[inline]
    fn num_words(&self) -> usize {
        1 + self.tail.len()
    }

    /// The `i`-th word, 0 when past the capacity.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        if i == 0 {
            self.head
        } else {
            self.tail.get(i - 1).copied().unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, i: usize) -> &mut u64 {
        if i == 0 {
            &mut self.head
        } else {
            &mut self.tail[i - 1]
        }
    }

    fn grow_to_hold(&mut self, bit: usize) {
        let needed = bit / BITS + 1;
        if self.num_words() < needed {
            self.tail.resize(needed - 1, 0);
        }
    }

    /// Inserts `bit`; returns `true` if it was not already present.
    pub fn insert(&mut self, bit: usize) -> bool {
        self.grow_to_hold(bit);
        let (w, m) = word_index(bit);
        let word = self.word_mut(w);
        let was = *word & m != 0;
        *word |= m;
        !was
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = word_index(bit);
        if w >= self.num_words() {
            return false;
        }
        let word = self.word_mut(w);
        let was = *word & m != 0;
        *word &= !m;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = word_index(bit);
        self.word(w) & m != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.head.count_ones() as usize
            + self
                .tail
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// `true` iff the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.head == 0 && self.tail.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.head = 0;
        for w in &mut self.tail {
            *w = 0;
        }
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.head |= other.head;
        if self.tail.len() < other.tail.len() {
            self.tail.resize(other.tail.len(), 0);
        }
        for (a, b) in self.tail.iter_mut().zip(other.tail.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.head &= other.head;
        for (i, a) in self.tail.iter_mut().enumerate() {
            *a &= other.tail.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.head &= !other.head;
        for (a, b) in self.tail.iter_mut().zip(other.tail.iter()) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `true` iff `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.head & other.head == 0
            && self
                .tail
                .iter()
                .zip(other.tail.iter())
                .all(|(a, b)| a & b == 0)
    }

    /// `true` iff every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.head & !other.head == 0
            && self
                .tail
                .iter()
                .enumerate()
                .all(|(i, a)| a & !other.tail.get(i).copied().unwrap_or(0) == 0)
    }

    /// `true` iff every element of `self ∩ mask` is in `other` — a
    /// word-parallel subset test restricted to a carrier subset, without
    /// materialising the intersection.
    pub fn is_subset_within(&self, mask: &BitSet, other: &BitSet) -> bool {
        self.head & mask.head & !other.head == 0
            && self.tail.iter().enumerate().all(|(i, a)| {
                let m = mask.tail.get(i).copied().unwrap_or(0);
                let o = other.tail.get(i).copied().unwrap_or(0);
                a & m & !o == 0
            })
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.head,
        }
    }

    /// The smallest element, if any.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// An arbitrary (first) element, if any.
    pub fn first(&self) -> Option<usize> {
        self.min()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.num_words() {
                return None;
            }
            self.current = self.set.word(self.word_idx);
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * BITS + tz)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        BitSet::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(191);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 191]);
    }

    #[test]
    fn inline_head_stays_heap_free() {
        let mut s = BitSet::new();
        for i in 0..64 {
            s.insert(i);
        }
        assert_eq!(s.tail.capacity(), 0, "elements < 64 must not allocate");
        s.insert(64);
        assert!(!s.tail.is_empty());
        assert_eq!(s.len(), 65);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter([1, 2, 3, 70]);
        let b = BitSet::from_iter([2, 3, 4]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&BitSet::from_iter([9, 100])));
    }

    #[test]
    fn algebra_across_word_boundary_capacities() {
        // Mixed-capacity operands: the shorter one behaves as zero-padded.
        let small = BitSet::from_iter([1, 63]);
        let large = BitSet::from_iter([1, 64, 130]);
        assert_eq!(
            small.union(&large).iter().collect::<Vec<_>>(),
            vec![1, 63, 64, 130]
        );
        assert_eq!(
            large.union(&small).iter().collect::<Vec<_>>(),
            vec![1, 63, 64, 130]
        );
        assert_eq!(
            small.intersection(&large).iter().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            large.intersection(&small).iter().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            large.difference(&small).iter().collect::<Vec<_>>(),
            vec![64, 130]
        );
        assert!(small.is_subset_within(&BitSet::from_iter([63]), &BitSet::from_iter([63, 64])));
        assert!(!large.is_subset_within(&BitSet::from_iter([130]), &small));
    }

    #[test]
    fn subset_with_mixed_capacity() {
        let small = BitSet::from_iter([1, 2]);
        let large = BitSet::from_iter([1, 2, 300]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        // Equal sets of different capacity are subsets of each other.
        let mut padded = BitSet::with_capacity(500);
        padded.insert(1);
        padded.insert(2);
        assert!(padded.is_subset(&small));
        assert!(small.is_subset(&padded));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(130);
        assert_eq!(s.len(), 130);
        assert!(s.contains(129));
        assert!(!s.contains(130));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn eq_ignores_trailing_zero_words() {
        // Two sets with identical content but different internal capacity
        // should hash/compare identically only if we never leave garbage;
        // we compare through iterators to sidestep capacity differences.
        let a = BitSet::from_iter([5]);
        let mut b = BitSet::with_capacity(1000);
        b.insert(5);
        assert_eq!(a, b);
        fn hash_of(s: &BitSet) -> u64 {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }
        assert_eq!(hash_of(&a), hash_of(&b));
        b.remove(5);
        assert_ne!(a, b);
        assert_eq!(b, BitSet::new());
    }

    #[test]
    fn min_first() {
        assert_eq!(BitSet::new().min(), None);
        assert_eq!(BitSet::from_iter([77, 3, 200]).min(), Some(3));
    }
}
