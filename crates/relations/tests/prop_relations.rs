//! Property-based tests of the relation algebra: the laws every consumer
//! of this crate silently relies on.

use c11_relations::{all_linearizations, count_linearizations, BitSet, Relation};
use proptest::prelude::*;

const N: usize = 7;

fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..N, 0..N), 0..14).prop_map(|pairs| Relation::from_pairs(N, pairs))
}

fn arb_dag() -> impl Strategy<Value = Relation> {
    // Edges only from smaller to larger indices: acyclic by construction.
    prop::collection::vec((0..N, 0..N), 0..14).prop_map(|pairs| {
        Relation::from_pairs(
            N,
            pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b))),
        )
    })
}

proptest! {
    #[test]
    fn closure_is_idempotent_and_transitive(r in arb_relation()) {
        let c = r.transitive_closure();
        prop_assert!(c.is_transitive());
        prop_assert_eq!(c.transitive_closure(), c.clone());
        // The closure contains the original.
        prop_assert!(r.difference(&c).is_empty());
    }

    #[test]
    fn closure_is_minimal(r in arb_relation()) {
        // Every pair in the closure is witnessed by a path in r: check by
        // iterated composition (bounded by carrier size).
        let c = r.transitive_closure();
        let mut paths = r.clone();
        let mut acc = r.clone();
        for _ in 0..N {
            paths = paths.compose(&r);
            acc.union_with(&paths);
        }
        prop_assert_eq!(acc, c);
    }

    #[test]
    fn compose_is_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn inverse_laws(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.inverse().inverse(), a.clone());
        // (a ; b)⁻¹ = b⁻¹ ; a⁻¹
        prop_assert_eq!(a.compose(&b).inverse(), b.inverse().compose(&a.inverse()));
        // (a ∪ b)⁻¹ = a⁻¹ ∪ b⁻¹
        prop_assert_eq!(a.union(&b).inverse(), a.inverse().union(&b.inverse()));
    }

    #[test]
    fn union_intersection_lattice(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersection(&a), a.clone());
        // Absorption.
        prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
        prop_assert_eq!(a.intersection(&a.union(&b)), a.clone());
        // Difference disjointness.
        prop_assert!(a.difference(&b).intersection(&b).is_empty());
    }

    #[test]
    fn acyclicity_closure_agreement(r in arb_relation()) {
        // r is acyclic iff its transitive closure is irreflexive.
        prop_assert_eq!(r.is_acyclic(), r.transitive_closure().is_irreflexive());
    }

    #[test]
    fn dags_topo_sort(r in arb_dag()) {
        let order = r.topo_sort().expect("DAGs sort");
        let pos: Vec<usize> = {
            let mut p = vec![0; N];
            for (i, &x) in order.iter().enumerate() {
                p[x] = i;
            }
            p
        };
        for (a, b) in r.pairs() {
            prop_assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn linearizations_respect_order_and_count(r in arb_dag()) {
        let carrier = BitSet::full(N);
        let mut count = 0usize;
        all_linearizations(&r, &carrier, |lin| {
            let pos = |x: usize| lin.iter().position(|&y| y == x).unwrap();
            for (a, b) in r.pairs() {
                assert!(pos(a) < pos(b));
            }
            count += 1;
            count < 2000 // cap the walk for dense antichains
        });
        if count < 2000 {
            prop_assert_eq!(count, count_linearizations(&r, &carrier).min(2000));
        }
        // At least one linearization exists for a DAG.
        prop_assert!(count >= 1);
    }

    #[test]
    fn restrict_is_monotone(r in arb_relation(), keep in prop::collection::vec(0..N, 0..N)) {
        let set = BitSet::from_iter(keep);
        let restricted = r.restrict(&set);
        // Restriction only removes edges…
        prop_assert!(restricted.difference(&r).is_empty());
        // …and keeps exactly those inside the set.
        for (a, b) in r.pairs() {
            prop_assert_eq!(
                restricted.contains(a, b),
                set.contains(a) && set.contains(b)
            );
        }
    }

    #[test]
    fn permutation_preserves_structure(r in arb_relation(), seed in any::<u64>()) {
        // Build a permutation from the seed.
        let mut perm: Vec<usize> = (0..N).collect();
        let mut s = seed;
        for i in (1..N).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let p = r.permute(&perm);
        prop_assert_eq!(p.edge_count(), r.edge_count());
        prop_assert_eq!(p.is_acyclic(), r.is_acyclic());
        prop_assert_eq!(p.is_irreflexive(), r.is_irreflexive());
        // Closure commutes with permutation.
        prop_assert_eq!(
            r.transitive_closure().permute(&perm),
            p.transitive_closure()
        );
    }

    #[test]
    fn add_edge_transitive_equals_recomputed_closure(
        r in arb_relation(),
        a in 0..N,
        b in 0..N,
    ) {
        let mut incremental = r.transitive_closure();
        incremental.add_edge_transitive(a, b);
        let mut direct = r.clone();
        direct.add(a, b);
        prop_assert_eq!(incremental, direct.transitive_closure());
    }

    #[test]
    fn absorb_star_equals_recomputed_closure(
        r in arb_relation(),
        v in 0..N,
        preds in prop::collection::vec(0..N, 0..4),
        succs in prop::collection::vec(0..N, 0..4),
    ) {
        let mut incremental = r.transitive_closure();
        let (all_p, all_s) = incremental.absorb_star(
            v,
            &BitSet::from_iter(preds.iter().copied()),
            &BitSet::from_iter(succs.iter().copied()),
        );
        let mut direct = r.clone();
        for &p in &preds {
            direct.add(p, v);
        }
        for &s in &succs {
            direct.add(v, s);
        }
        let full = direct.transitive_closure();
        prop_assert_eq!(&incremental, &full);
        // The returned delta rectangle is exactly v's closed neighbourhood.
        prop_assert_eq!(all_p, BitSet::from_iter(full.preimage(v)));
        prop_assert_eq!(all_s, full.row(v).clone());
    }

    #[test]
    fn strict_total_order_agrees_with_naive(r in arb_relation(), keep in prop::collection::vec(0..N, 0..N)) {
        let set = BitSet::from_iter(keep);
        let naive = {
            let elems: Vec<usize> = set.iter().collect();
            let irrefl = elems.iter().all(|&a| !r.contains(a, a));
            let total = elems.iter().all(|&a| {
                elems
                    .iter()
                    .all(|&b| a == b || (r.contains(a, b) != r.contains(b, a)))
            });
            let trans = elems.iter().all(|&a| {
                elems.iter().all(|&b| {
                    elems.iter().all(|&c| {
                        !(r.contains(a, b) && r.contains(b, c)) || r.contains(a, c)
                    })
                })
            });
            irrefl && total && trans
        };
        prop_assert_eq!(r.is_strict_total_order_on(&set), naive);
    }

    #[test]
    fn reflexive_closure_adds_exactly_diagonal(r in arb_relation()) {
        let rc = r.reflexive_closure();
        for i in 0..N {
            prop_assert!(rc.contains(i, i));
        }
        prop_assert_eq!(rc.difference(&Relation::identity(N)), r.difference(&Relation::identity(N)));
    }
}
