//! E2 — derived-relation computation: `eco`, `hb` and the observability
//! sets over single-variable histories of growing length (the shape of
//! Example 3.3).
//!
//! `C11State` caches derived relations per state, so each measurement
//! rebuilds the state (cheap: vector/bitset copies) to measure the actual
//! closure computation; the `cached` benchmarks show the hit path the
//! explorer enjoys when revisiting a state's relations.

use c11_bench::chain_state;
use c11_core::obs::{encountered_writes, observable_writes};
use c11_core::state::C11State;
use c11_lang::ThreadId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Rebuilds the state (clearing the derived-relation cache).
fn uncached(s: &C11State) -> C11State {
    C11State::from_parts(
        s.events().to_vec(),
        s.sb().clone(),
        s.rf().clone(),
        s.mo().clone(),
    )
}

fn bench_eco(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2/eco");
    for len in [4usize, 8, 16, 32] {
        let s = chain_state(len);
        g.bench_with_input(BenchmarkId::new("compute", len), &s, |b, s| {
            b.iter(|| {
                let fresh = uncached(s);
                black_box(fresh.eco().edge_count())
            })
        });
        g.bench_with_input(BenchmarkId::new("cached", len), &s, |b, s| {
            let warm = uncached(s);
            warm.eco();
            b.iter(|| black_box(warm.eco().edge_count()))
        });
    }
    g.finish();
}

fn bench_hb(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2/hb");
    for len in [4usize, 8, 16, 32] {
        let s = chain_state(len);
        g.bench_with_input(BenchmarkId::new("compute", len), &s, |b, s| {
            b.iter(|| {
                let fresh = uncached(s);
                black_box(fresh.hb().edge_count())
            })
        });
    }
    g.finish();
}

fn bench_observability(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2/observability");
    for len in [4usize, 8, 16, 32] {
        let s = chain_state(len);
        g.bench_with_input(BenchmarkId::new("EW", len), &s, |b, s| {
            b.iter(|| {
                let fresh = uncached(s);
                black_box(encountered_writes(&fresh, ThreadId(2)))
            })
        });
        g.bench_with_input(BenchmarkId::new("OW", len), &s, |b, s| {
            b.iter(|| {
                let fresh = uncached(s);
                black_box(observable_writes(&fresh, ThreadId(2)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eco, bench_hb, bench_observability);
criterion_main!(benches);
