//! E15/E16 — ablations: state dedup on/off, sequential vs parallel
//! exploration, and full vs hb-only observability.

use c11_bench::contended_workload;
use c11_core::model::{RaModel, WeakObsRaModel};
use c11_explore::{parallel_explore, ExploreConfig, Explorer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("E16/dedup");
    g.sample_size(10);
    let prog = contended_workload(3);
    g.bench_function("on", |b| {
        b.iter(|| black_box(Explorer::new(RaModel).explore(&prog, ExploreConfig::default())))
    });
    g.bench_function("off", |b| {
        b.iter(|| {
            black_box(Explorer::new(RaModel).explore(
                &prog,
                ExploreConfig {
                    dedup: false,
                    max_states: 1_000_000,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("E16/parallel");
    g.sample_size(10);
    let prog = contended_workload(4);
    let cfg = ExploreConfig::default().max_events(24).record_traces(false);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(parallel_explore(&RaModel, &prog, &cfg, w)))
        });
    }
    g.finish();
}

fn bench_observability_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("E15/observability");
    g.sample_size(10);
    let prog = contended_workload(3);
    g.bench_function("full(eco+hb)", |b| {
        b.iter(|| black_box(Explorer::new(RaModel).explore(&prog, ExploreConfig::default())))
    });
    g.bench_function("weak(hb-only)", |b| {
        b.iter(|| black_box(Explorer::new(WeakObsRaModel).explore(&prog, ExploreConfig::default())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dedup,
    bench_parallel,
    bench_observability_ablation
);
criterion_main!(benches);
