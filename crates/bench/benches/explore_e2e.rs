//! E13-style end-to-end exploration benchmark: wall-clock state-space
//! throughput over the litmus corpus and the scaling workloads, plus the
//! `transitive_closure` microbenches that dominate the per-transition cost.
//!
//! Unlike the criterion targets this is a hand-rolled harness (`harness =
//! false` + own `main`) so it can emit machine-readable JSON: run with
//!
//! ```sh
//! cargo bench --bench explore_e2e -- --json BENCH_explore_e2e.json
//! cargo bench --bench explore_e2e -- --quick        # CI smoke mode
//! cargo bench --bench explore_e2e -- --budget-ms 500  # cap each run
//! ```
//!
//! `--budget-ms` puts a per-repetition deadline on the exploration
//! groups (wide / contended / scaling): a host too slow to finish a
//! shape still produces a row, but the row is stamped
//! `"interrupted": true` — its wall time measures the budget, not the
//! workload — and `c11bench compare` skips such rows with a note.
//!
//! The JSON lands in `BENCH_*.json` files that record the performance
//! trajectory across PRs (see README § Performance).

use c11_bench::{
    chain_state, contended_workload, sym_contended_workload, sym_fan_workload, wide_workload,
};
use c11_core::model::RaModel;
use c11_explore::{
    explore_dpor, explore_source, parallel_explore, Budget, ExploreConfig, ExploreResult, Explorer,
    StoreKind, SymClasses,
};
use c11_litmus::{corpus, run_test};
use std::time::{Duration, Instant};

/// One benchmark row: a label, a size measure (states or carrier), the
/// best-of-`reps` wall time in nanoseconds, and whether any measured
/// repetition was cut short by the `--budget-ms` deadline. The `store`
/// group additionally records the backend-specific numbers its CI gate
/// checks — unique states and resident store bytes.
#[derive(Default)]
struct Row {
    group: &'static str,
    name: String,
    size: usize,
    nanos: u128,
    interrupted: bool,
    /// Unique states after dedup (`store` group only).
    unique: Option<usize>,
    /// Visited-store resident bytes (`store` group only).
    bytes_resident: Option<usize>,
}

/// Stamps a fresh deadline onto `cfg` for one timed repetition (the
/// budget bounds each run, not the whole bench).
fn budgeted(cfg: &ExploreConfig, budget: Option<Duration>) -> ExploreConfig {
    match budget {
        Some(d) => cfg
            .clone()
            .budget(Budget::with_deadline(Instant::now() + d)),
        None => cfg.clone(),
    }
}

impl Row {
    fn per_sec(&self) -> f64 {
        if self.nanos == 0 {
            f64::INFINITY
        } else {
            self.size as f64 * 1e9 / self.nanos as f64
        }
    }
}

/// Times `f` `reps` times and returns the best run in nanos (min over reps
/// filters scheduler noise; the shim criterion reports min too).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn bench_corpus(reps: usize, rows: &mut Vec<Row>) {
    for test in corpus() {
        let mut states = 0usize;
        let nanos = best_of(reps, || {
            let r = run_test(&test);
            assert!(r.pass, "{} regressed during benchmarking", r.name);
            states = r.ra.unique + r.sc.unique;
            r
        });
        rows.push(Row {
            group: "corpus",
            name: test.name.clone(),
            size: states,
            nanos,
            interrupted: false,
            ..Row::default()
        });
    }
}

fn bench_scaling(reps: usize, quick: bool, budget: Option<Duration>, rows: &mut Vec<Row>) {
    let wide: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4] };
    for &k in wide {
        let prog = wide_workload(k);
        let cfg = ExploreConfig::default().max_events(2 * k + 4);
        let mut states = 0usize;
        let mut interrupted = false;
        let nanos = best_of(reps, || {
            let res = Explorer::new(RaModel).explore(&prog, budgeted(&cfg, budget));
            states = res.unique;
            interrupted |= res.interrupted.is_some();
            res
        });
        rows.push(Row {
            group: "wide",
            name: format!("E13-wide-{k}"),
            size: states,
            nanos,
            interrupted,
            ..Row::default()
        });
    }
    let contended: &[usize] = if quick { &[3] } else { &[3, 4] };
    for &k in contended {
        let prog = contended_workload(k);
        let cfg = ExploreConfig::default();
        let mut states = 0usize;
        let mut interrupted = false;
        let nanos = best_of(reps, || {
            let res = Explorer::new(RaModel).explore(&prog, budgeted(&cfg, budget));
            states = res.unique;
            interrupted |= res.interrupted.is_some();
            res
        });
        rows.push(Row {
            group: "contended",
            name: format!("E16-contended-{k}"),
            size: states,
            nanos,
            interrupted,
            ..Row::default()
        });
    }
}

/// The DPOR reduction group: the E13 wide and E16 contended shapes under
/// the sleep-set engine, with the reduction ratio (dpor generated ÷
/// sequential generated) printed per shape. Asserts the backend's
/// contract while measuring: identical unique/finals, strictly fewer
/// generated transitions.
fn bench_dpor(reps: usize, quick: bool, rows: &mut Vec<Row>) {
    let wide: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4] };
    let contended: &[usize] = if quick { &[3] } else { &[3, 4] };
    let shapes = wide
        .iter()
        .map(|&k| (format!("E13-wide-{k}"), wide_workload(k), 2 * k + 4))
        .chain(
            contended
                .iter()
                .map(|&k| (format!("E16-contended-{k}"), contended_workload(k), 24)),
        );
    for (name, prog, max_events) in shapes {
        let cfg = ExploreConfig::default().max_events(max_events);
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let mut generated = 0usize;
        let nanos = best_of(reps, || {
            let res = explore_dpor(&RaModel, &prog, &cfg);
            assert_eq!(res.unique, seq.unique, "{name}: DPOR must keep every state");
            assert!(
                res.generated < seq.generated,
                "{name}: DPOR must generate strictly fewer states ({} vs {})",
                res.generated,
                seq.generated
            );
            let mut a = seq.final_snapshots();
            let mut b = res.final_snapshots();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{name}: finals multiset");
            generated = res.generated;
            res
        });
        println!(
            "dpor reduction {name}: generated {generated} vs sequential {} (ratio {:.2})",
            seq.generated,
            generated as f64 / seq.generated as f64
        );
        rows.push(Row {
            group: "dpor",
            name,
            size: generated,
            nanos,
            interrupted: false,
            ..Row::default()
        });
    }
}

/// The source-set reduction group: the sleep-set group's shapes explored
/// under the source-set engine, with the finals-only contract asserted
/// while measuring — identical finals multiset, and the headline ≥ 2×
/// generated reduction on the contended family. The wide (read-fan-out)
/// shapes are recorded without a ratio gate: a stateless per-trace walk
/// legitimately re-generates states a stateful sleep-set search dedups,
/// so the win is shape-dependent. Row size is the generated count, so the ratio
/// against sleep-set is derivable from the `dpor` rows of the same
/// shape. Row names carry `reduction` so the CI gate's
/// `--require-match reduction` anchors on them. The contended shapes run
/// in quick mode too: E16-contended-4 is the ISSUE's acceptance shape.
fn bench_reduction(reps: usize, quick: bool, rows: &mut Vec<Row>) {
    let wide: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4] };
    let shapes = wide
        .iter()
        .map(|&k| (format!("E13-wide-{k}"), wide_workload(k), 2 * k + 4))
        .chain(
            [3usize, 4]
                .iter()
                .map(|&k| (format!("E16-contended-{k}"), contended_workload(k), 24)),
        );
    for (name, prog, max_events) in shapes {
        let cfg = ExploreConfig::default().max_events(max_events);
        let sleep = explore_dpor(&RaModel, &prog, &cfg);
        let contended_shape = name.starts_with("E16");
        let mut generated = 0usize;
        let nanos = best_of(reps, || {
            let res = explore_source(&RaModel, &prog, &cfg);
            let mut a = sleep.final_snapshots();
            let mut b = res.final_snapshots();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{name}: finals multiset");
            if contended_shape {
                assert!(
                    res.generated * 2 <= sleep.generated,
                    "{name}: source-set must generate ≤ half of sleep-set ({} vs {})",
                    res.generated,
                    sleep.generated
                );
            }
            generated = res.generated;
            res
        });
        println!(
            "source reduction {name}: generated {generated} vs sleep-set {} (ratio {:.2})",
            sleep.generated,
            generated as f64 / sleep.generated as f64
        );
        rows.push(Row {
            group: "reduction",
            name: format!("{name}-reduction-source"),
            size: generated,
            nanos,
            interrupted: false,
            ..Row::default()
        });
    }
}

/// The worker-scaling group: E13-wide-4 and E16-contended-4 measured
/// sequentially and at 1/2/4/8 workers. The same shapes run in quick and
/// full mode (quick only drops repetitions) so the CI `worker-scaling`
/// job's quick rows line up with the committed full-mode trajectory.
/// Equality with the sequential engine (unique count, truncation, finals
/// cardinality) is asserted while measuring; speedup ratios are printed
/// per shape and derivable from the emitted rows (`-w1` ÷ `-wN` nanos).
fn bench_worker_scaling(reps: usize, budget: Option<Duration>, rows: &mut Vec<Row>) {
    let shapes = [
        ("E13-wide-4", wide_workload(4), 12),
        ("E16-contended-4", contended_workload(4), 24),
    ];
    for (name, prog, max_events) in shapes {
        let cfg = ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false);
        let seq = Explorer::new(RaModel).explore(&prog, cfg.clone());
        let states = seq.unique;
        let mut seq_interrupted = false;
        let seq_nanos = best_of(reps, || {
            let res = Explorer::new(RaModel).explore(&prog, budgeted(&cfg, budget));
            seq_interrupted |= res.interrupted.is_some();
            res
        });
        rows.push(Row {
            group: "scaling",
            name: format!("{name}-seq"),
            size: states,
            nanos: seq_nanos,
            interrupted: seq_interrupted,
            ..Row::default()
        });
        let mut w1_nanos = seq_nanos;
        for workers in [1usize, 2, 4, 8] {
            let mut interrupted = false;
            let nanos = best_of(reps, || {
                let res = parallel_explore(&RaModel, &prog, &budgeted(&cfg, budget), workers);
                // A budget-interrupted run stops early, so equality with
                // the (complete) reference is only asserted when it ran
                // to the end.
                if res.interrupted.is_none() {
                    assert_eq!(
                        res.unique, seq.unique,
                        "{name}: parallel({workers}) diverged from sequential"
                    );
                    assert_eq!(res.truncated, seq.truncated, "{name}: truncation flag");
                    assert_eq!(res.finals.len(), seq.finals.len(), "{name}: finals count");
                } else {
                    interrupted = true;
                }
                res
            });
            if workers == 1 {
                w1_nanos = nanos;
            }
            println!(
                "scaling {name} w{workers}: {:.2} ms (speedup {:.2}x vs w1, {:.2}x vs seq)",
                nanos as f64 / 1e6,
                w1_nanos as f64 / nanos as f64,
                seq_nanos as f64 / nanos as f64
            );
            rows.push(Row {
                group: "scaling",
                name: format!("{name}-w{workers}"),
                size: states,
                nanos,
                interrupted,
                ..Row::default()
            });
        }
    }
}

/// The state-storage group: symmetric 4-thread variants of the E13 wide
/// and E16 contended families (byte-identical sibling threads, so the
/// thread-permutation group acts with near-factorial orbits) explored
/// under each `--store` backend. Rows carry the numbers the CI
/// `state-storage` gate checks alongside wall time: `unique` (the
/// symmetry quotient shrinks it) and `bytes_resident` (hash-consed
/// chunk sharing shrinks it). Agreement of all backends on the
/// canonical final register states is asserted while measuring, as are
/// the two headline reductions (≥ 3× fewer unique states under `sym`,
/// fewer resident bytes under `shared`).
fn bench_store(reps: usize, budget: Option<Duration>, rows: &mut Vec<Row>) {
    let shapes = [
        ("E13-wide-4", sym_fan_workload(2, 3), 16),
        ("E16-contended-4", sym_contended_workload(2, 4), 24),
    ];
    for (family, prog, max_events) in shapes {
        let base = ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false);
        let classes = SymClasses::of(&prog);
        // The invariant every backend must reproduce: the *canonical*
        // deduplicated final register states. (Raw finals multisets
        // differ by exactly the orbit structure — the quotient keeps one
        // representative per orbit — so both sides are class-sorted and
        // deduplicated before comparing.)
        let canon_finals = |res: &ExploreResult<RaModel>| {
            let mut snaps = res.final_snapshots();
            for s in &mut snaps {
                s.class_sort(&classes);
            }
            snaps.sort();
            snaps.dedup();
            snaps
        };
        let reference = Explorer::new(RaModel).explore(&prog, base.clone());
        let finals0 = canon_finals(&reference);
        let mut measured: Vec<(StoreKind, usize, usize)> = Vec::new();
        for kind in StoreKind::ALL {
            let cfg = base.clone().store(kind);
            let (mut unique, mut bytes) = (0usize, 0usize);
            let mut interrupted = false;
            let nanos = best_of(reps, || {
                let res = Explorer::new(RaModel).explore(&prog, budgeted(&cfg, budget));
                if res.interrupted.is_none() {
                    assert_eq!(
                        canon_finals(&res),
                        finals0,
                        "{family}/{}: canonical finals diverged from flat",
                        kind.name()
                    );
                    unique = res.unique;
                    bytes = res.store_stats.expect("dedup is on").bytes_resident;
                } else {
                    interrupted = true;
                }
                res
            });
            if !interrupted {
                measured.push((kind, unique, bytes));
            }
            println!(
                "store {family} {}: {unique} unique, {bytes} bytes resident",
                kind.name()
            );
            rows.push(Row {
                group: "store",
                name: format!("{family}-store-{}", kind.name()),
                size: unique,
                nanos,
                interrupted,
                unique: Some(unique),
                bytes_resident: Some(bytes),
            });
        }
        // The headline reductions, asserted only over complete runs (a
        // budget-interrupted backend has nothing comparable to say).
        let of = |k: StoreKind| measured.iter().find(|(m, ..)| *m == k).copied();
        if let (Some((_, flat_u, flat_b)), Some((_, sym_u, _))) =
            (of(StoreKind::Flat), of(StoreKind::Sym))
        {
            assert!(
                sym_u * 3 <= flat_u,
                "{family}: symmetry must shrink unique states ≥ 3× ({flat_u} -> {sym_u})"
            );
            println!(
                "store {family}: symmetry quotient {flat_u} -> {sym_u} unique ({:.1}x)",
                flat_u as f64 / sym_u as f64
            );
            if let Some((_, shared_u, shared_b)) = of(StoreKind::Shared) {
                assert_eq!(
                    shared_u, flat_u,
                    "{family}: shared store must not drop states"
                );
                assert!(
                    shared_b < flat_b,
                    "{family}: hash-consing must lower resident bytes ({flat_b} vs {shared_b})"
                );
                println!(
                    "store {family}: resident bytes {flat_b} flat vs {shared_b} shared ({:.2}x)",
                    flat_b as f64 / shared_b as f64
                );
            }
        }
    }
}

fn bench_closure_micro(reps: usize, rows: &mut Vec<Row>) {
    for n in [16usize, 32, 64] {
        let s = chain_state(n);
        let base = s.sb().union(s.rf()).union(s.mo());
        let edges = base.edge_count();
        let nanos = best_of(reps.max(100), || base.transitive_closure());
        rows.push(Row {
            group: "closure",
            name: format!("warshall-{}", s.len()),
            size: edges,
            nanos,
            interrupted: false,
            ..Row::default()
        });
        // Incremental absorption: start from the closed relation and absorb
        // one fresh sink edge per iteration — the explorer's steady state.
        let closed = base.transitive_closure();
        let m = closed.len();
        let nanos = best_of(reps.max(100), || {
            let mut r = closed.clone();
            r.add_edge_transitive(m - 2, m + 1);
            r
        });
        rows.push(Row {
            group: "closure",
            name: format!("incremental-{}", s.len()),
            size: edges,
            nanos,
            interrupted: false,
            ..Row::default()
        });
    }
}

/// Anchors relative output paths at the workspace root: `cargo bench`
/// runs harness=false binaries with cwd = `crates/bench`, which would
/// otherwise scatter `BENCH_*.json` files away from where CI and the
/// README expect them.
fn resolve_output(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn emit_json(path: &std::path::Path, rows: &[Row]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    // Host core count recorded alongside the rows: `c11bench compare
    // --ratio-floor` relaxes the scaling gate when the measuring host has
    // fewer cores than workers (a 1-core container cannot show real
    // speedup no matter how contention-free the engine is).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out =
        format!("{{\n  \"bench\": \"explore_e2e\",\n  \"cores\": {cores},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // Optional fields (the store counters, the budget stamp) are
        // emitted only when set so trajectories of the other groups
        // stay byte-identical to the pre-stamp format.
        let mut extra = String::new();
        if let Some(u) = r.unique {
            let _ = write!(extra, ", \"unique\": {u}");
        }
        if let Some(b) = r.bytes_resident {
            let _ = write!(extra, ", \"bytes_resident\": {b}");
        }
        if r.interrupted {
            extra.push_str(", \"interrupted\": true");
        }
        let _ = writeln!(
            out,
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"size\": {}, \"nanos\": {}, \"per_sec\": {:.1}{}}}{}",
            r.group,
            r.name,
            r.size,
            r.nanos,
            r.per_sec(),
            extra,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let mut json: Option<String> = None;
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut budget: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--quick" => quick = true,
            // Restrict the run to one row group (e.g. `--only scaling`
            // for the CI worker-scaling job).
            "--only" => only = Some(args.next().expect("--only needs a group")),
            // Per-repetition deadline on the exploration groups: rows
            // whose run tripped it are stamped "interrupted": true.
            "--budget-ms" => {
                let ms: u64 = args
                    .next()
                    .expect("--budget-ms needs a value")
                    .parse()
                    .expect("--budget-ms needs milliseconds");
                budget = Some(Duration::from_millis(ms));
            }
            // `cargo bench` passes --bench through to harness=false targets.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }
    let reps = if quick { 2 } else { 5 };
    // An unknown group name must error, not silently run nothing and
    // exit 0 — a CI job with a typoed `--only` would otherwise pass
    // while measuring no rows at all.
    const GROUPS: [&str; 8] = [
        "corpus",
        "wide",
        "contended",
        "dpor",
        "reduction",
        "scaling",
        "closure",
        "store",
    ];
    if let Some(o) = only.as_deref() {
        if !GROUPS.contains(&o) {
            eprintln!(
                "unknown bench group {o:?}; valid groups: {}",
                GROUPS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let want = |g: &str| only.as_deref().is_none_or(|o| o == g);
    let mut rows = Vec::new();
    if want("corpus") {
        bench_corpus(reps, &mut rows);
    }
    if want("wide") || want("contended") {
        bench_scaling(reps, quick, budget, &mut rows);
    }
    if want("dpor") {
        bench_dpor(reps, quick, &mut rows);
    }
    if want("reduction") {
        bench_reduction(reps, quick, &mut rows);
    }
    if want("scaling") {
        bench_worker_scaling(reps, budget, &mut rows);
    }
    if want("store") {
        bench_store(reps, budget, &mut rows);
    }
    if want("closure") {
        bench_closure_micro(reps, &mut rows);
    }

    println!(
        "{:<12} {:<18} {:>10} {:>14} {:>14}",
        "group", "name", "size", "time", "size/s"
    );
    for r in &rows {
        let (t, unit) = if r.nanos >= 1_000_000 {
            (r.nanos as f64 / 1e6, "ms")
        } else {
            (r.nanos as f64 / 1e3, "us")
        };
        println!(
            "{:<12} {:<18} {:>10} {:>11.2} {} {:>14.0}{}",
            r.group,
            r.name,
            r.size,
            t,
            unit,
            r.per_sec(),
            if r.interrupted { "  [budget]" } else { "" }
        );
    }
    if let Some(path) = json {
        let path = resolve_output(&path);
        emit_json(&path, &rows).expect("write JSON results");
        println!("wrote {}", path.display());
    }
}
