//! E8 — bounded Theorem C.5 equivalence checking: exhaustive enumeration
//! cost by size, and per-candidate checking throughput via sampling.

use c11_axiomatic::memcheck::{equivalence_check, equivalence_sample, CandidateConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8/exhaustive");
    g.sample_size(10);
    for events in [2usize, 3] {
        let cfg = CandidateConfig {
            events,
            max_threads: 2,
            max_vars: 2,
        };
        g.bench_with_input(BenchmarkId::from_parameter(events), &cfg, |b, cfg| {
            b.iter(|| {
                let r = equivalence_check(cfg);
                assert!(r.agrees());
                black_box(r)
            })
        });
    }
    g.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8/sampled-500");
    g.sample_size(10);
    for events in [5usize, 6, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, &n| {
            b.iter(|| {
                let r = equivalence_sample(0xC11, n, 3, 2, 500);
                assert!(r.agrees());
                black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exhaustive, bench_sampled);
criterion_main!(benches);
