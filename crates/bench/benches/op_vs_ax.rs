//! E13 — operational on-the-fly checking vs the axiomatic generate-and-
//! test baseline, over the widening write/read workload. The crossover and
//! growth shape (axiomatic ∝ (values+1)^reads, operational ∝ valid
//! behaviours) is the paper's motivating claim.

use c11_axiomatic::justify::search_stats;
use c11_bench::wide_workload;
use c11_core::model::{PreExecutionModel, RaModel};
use c11_explore::{ExploreConfig, Explorer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_operational(c: &mut Criterion) {
    let mut g = c.benchmark_group("E13/operational");
    for k in [1usize, 2, 3] {
        let prog = wide_workload(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &prog, |b, prog| {
            b.iter(|| black_box(Explorer::new(RaModel).explore(prog, ExploreConfig::default())))
        });
    }
    g.finish();
}

fn bench_axiomatic(c: &mut Criterion) {
    let mut g = c.benchmark_group("E13/axiomatic");
    g.sample_size(10);
    for k in [1usize, 2, 3] {
        let prog = wide_workload(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &prog, |b, prog| {
            b.iter(|| {
                let model = PreExecutionModel::for_program(prog);
                let pe = Explorer::new(model).explore(prog, ExploreConfig::default());
                let mut total = 0usize;
                for f in &pe.finals {
                    total += search_stats(&f.mem).candidates;
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operational, bench_axiomatic);
criterion_main!(benches);
