//! E11 — Peterson verification cost as the event budget grows (each +2
//! events roughly covers one more spin iteration / lock round).

use c11_verify::peterson::check_peterson;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_peterson(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11/peterson");
    g.sample_size(10);
    for budget in [10usize, 12, 14] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &n| {
            b.iter(|| {
                let r = check_peterson(n);
                assert!(r.mutual_exclusion && r.invariant_failures.is_empty());
                black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_peterson);
criterion_main!(benches);
