//! E14 — litmus corpus evaluation throughput: full exploration + verdict
//! per test, under the RA semantics and the SC baseline.

use c11_core::model::{RaModel, ScModel};
use c11_explore::{ExploreConfig, Explorer};
use c11_lang::parse_program;
use c11_litmus::{corpus, run_test};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_corpus_verdicts(c: &mut Criterion) {
    let mut g = c.benchmark_group("E14/verdict");
    g.sample_size(20);
    for test in corpus() {
        // Skip the two slowest (4-thread) shapes in the default run; the
        // full table is produced by `cargo run --example litmus_suite`.
        if test.name == "IRIW-ra" {
            continue;
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(test.name.clone()),
            &test,
            |b, t| b.iter(|| black_box(run_test(t))),
        );
    }
    g.finish();
}

fn bench_models_side_by_side(c: &mut Criterion) {
    let mut g = c.benchmark_group("E14/explore-SB");
    let prog = parse_program(
        "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }",
    )
    .unwrap();
    g.bench_function("RA", |b| {
        b.iter(|| black_box(Explorer::new(RaModel).explore(&prog, ExploreConfig::default())))
    });
    g.bench_function("SC", |b| {
        b.iter(|| black_box(Explorer::new(ScModel).explore(&prog, ExploreConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench_corpus_verdicts, bench_models_side_by_side);
criterion_main!(benches);
