//! `c11load` end to end against in-process mock servers: a well-behaved
//! server (id echoed into a canned ok report) must yield a clean run —
//! exit 0, zero malformed frames, p50/p95/p99 rows per mix — and the
//! emitted document must flow through `c11bench compare --require-match`
//! unchanged. A server that violates the protocol (wrong id echo) must
//! fail the run with every frame counted malformed.

use c11_api::json::Json;
use c11_api::net::{read_frame, write_frame, FrameIn};
use std::net::TcpListener;
use std::process::Command;

/// Starts a mock frame server; `reply` maps each request document to a
/// response payload. Accept/connection threads are detached — they die
/// with the test process.
fn mock_server(reply: fn(&Json) -> String) -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            std::thread::spawn(move || loop {
                match read_frame(&mut conn) {
                    Ok(FrameIn::Frame(payload)) => {
                        let doc = Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
                        if write_frame(&mut conn, reply(&doc).as_bytes()).is_err() {
                            return;
                        }
                    }
                    Ok(FrameIn::Idle) => {}
                    Ok(FrameIn::Eof) | Err(_) => return,
                }
            });
        }
    });
    port
}

fn ok_reply(id: &str) -> String {
    format!(
        "{{\"schema\":\"c11check/v1\",\"id\":\"{id}\",\"status\":\"ok\",\
         \"mode\":\"count\",\"cache_hit\":false}}"
    )
}

fn run_c11load(port: u16, json: &std::path::Path, extra: &[&str]) -> (bool, Json) {
    let out = Command::new(env!("CARGO_BIN_EXE_c11load"))
        .args([
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--mix",
            "shapes",
            "--conns",
            "2",
            "--requests",
            "12",
            "--json",
        ])
        .arg(json)
        .args(extra)
        .output()
        .expect("run c11load");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = Json::parse(stdout.trim()).unwrap_or_else(|e| panic!("bad output ({e}): {stdout}"));
    (out.status.success(), doc)
}

#[test]
fn a_clean_mix_yields_percentile_rows_and_gates_through_c11bench() {
    let port = mock_server(|req| {
        let id = req.get("id").and_then(Json::as_str).expect("id present");
        assert!(req.get("program").is_some(), "shapes mix sends programs");
        ok_reply(id)
    });
    let dir = std::env::temp_dir().join("c11load-test-clean");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("serve.json");
    let (ok, doc) = run_c11load(port, &json, &[]);
    assert!(ok, "clean run exits 0: {doc:?}");
    assert_eq!(doc.get("malformed").and_then(Json::as_usize), Some(0));
    assert_eq!(doc.get("errors").and_then(Json::as_usize), Some(0));
    assert_eq!(doc.get("ok").and_then(Json::as_usize), Some(12));

    // p50/p95/p99 + mean rows for the shapes mix, monotone percentiles.
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows array");
    let nanos = |tag: &str| {
        rows.iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(&format!("shapes-{tag}")))
            .unwrap_or_else(|| panic!("missing shapes-{tag} row"))
            .get("nanos")
            .and_then(Json::as_u128)
            .unwrap()
    };
    assert!(nanos("p50") <= nanos("p95") && nanos("p95") <= nanos("p99"));

    // The emitted file must round-trip the `c11bench compare` gate with
    // --require-match p99 — the exact CI plumbing.
    let emitted = std::fs::read_to_string(&json).unwrap();
    assert_eq!(emitted.trim(), doc.render(), "--json writes the document");
    let gate = Command::new(env!("CARGO_BIN_EXE_c11bench"))
        .arg("compare")
        .arg(&json)
        .arg(&json)
        .args([
            "--tolerance",
            "1.0",
            "--min-nanos",
            "1",
            "--require-match",
            "p99",
        ])
        .output()
        .expect("run c11bench");
    assert!(
        gate.status.success(),
        "self-compare passes the p99 gate: {}",
        String::from_utf8_lossy(&gate.stderr)
    );
}

#[test]
fn a_server_that_breaks_the_id_echo_fails_the_run() {
    let port = mock_server(|_| ok_reply("wrong-id"));
    let dir = std::env::temp_dir().join("c11load-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, doc) = run_c11load(port, &dir.join("serve.json"), &[]);
    assert!(!ok, "malformed frames must fail the exit code");
    assert_eq!(doc.get("malformed").and_then(Json::as_usize), Some(12));
    assert_eq!(doc.get("ok").and_then(Json::as_usize), Some(0));
}

#[test]
fn overloaded_responses_are_counted_but_not_malformed() {
    let port = mock_server(|req| {
        let id = req.get("id").and_then(Json::as_str).unwrap();
        format!("{{\"schema\":\"c11check/v1\",\"id\":\"{id}\",\"status\":\"overloaded\"}}")
    });
    let dir = std::env::temp_dir().join("c11load-test-overload");
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, doc) = run_c11load(port, &dir.join("serve.json"), &[]);
    assert!(
        ok,
        "overload alone is not a load-generator failure: {doc:?}"
    );
    assert_eq!(doc.get("overloaded").and_then(Json::as_usize), Some(12));
    assert_eq!(doc.get("malformed").and_then(Json::as_usize), Some(0));
}
