//! `c11load` — closed-loop load generator for `c11netd`.
//!
//! Opens `--conns` TCP connections and drives `--requests` framed
//! `c11check/v1` requests through them as fast as the server answers
//! (closed loop: each connection has exactly one request in flight).
//! The request mix is drawn from the litmus corpus (`--mix corpus`),
//! from the E13/E16 program shapes (`--mix shapes`), or both
//! (`--mix all`, the default). Per-request wall latency lands in a
//! fixed-bucket log-scale histogram (≤ 1/32 relative error) and the
//! run emits a `BENCH_serve_latency.json`-style document with p50,
//! p95 and p99 rows per mix that `c11bench compare` can diff and gate.
//!
//! Every response is verified: the frame must parse as JSON, echo the
//! request id, and carry an "ok" (or "overloaded") status. Anything
//! else counts as malformed and fails the run — the exit status is 0
//! only when zero malformed frames and zero transport errors occurred.

use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use c11_api::json::Json;
use c11_api::net::{read_frame, write_frame, FrameIn};
use c11_bench::latency::LogHistogram;
use c11_bench::{contended_workload_src, wide_workload_src};

const USAGE: &str = "\
usage: c11load --addr HOST:PORT [options]

  --addr HOST:PORT   server to load (required)
  --conns N          concurrent connections, one request in flight each
                     (default 8)
  --requests N       total requests across all connections (default 128)
  --mix KIND         corpus | shapes | all (default all)
  --litmus DIR       litmus corpus directory (default litmus)
  --json FILE        also write the result document to FILE
  --timeout-ms N     per-request response deadline (default 30000)
  -h, --help         this text
";

struct Opts {
    addr: String,
    conns: usize,
    requests: usize,
    mix: String,
    litmus: String,
    json: Option<String>,
    timeout: Duration,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: String::new(),
        conns: 8,
        requests: 128,
        mix: "all".to_string(),
        litmus: "litmus".to_string(),
        json: None,
        timeout: Duration::from_millis(30_000),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--conns" => {
                opts.conns = value("--conns")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--conns must be a positive integer")?;
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--requests must be a positive integer")?;
            }
            "--mix" => {
                let mix = value("--mix")?;
                if !["corpus", "shapes", "all"].contains(&mix.as_str()) {
                    return Err("--mix must be corpus, shapes or all".to_string());
                }
                opts.mix = mix;
            }
            "--litmus" => opts.litmus = value("--litmus")?,
            "--json" => opts.json = Some(value("--json")?),
            "--timeout-ms" => {
                let ms = value("--timeout-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--timeout-ms must be a positive integer")?;
                opts.timeout = Duration::from_millis(ms);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(opts)
}

/// One entry of the request mix: a request body (without "id") plus the
/// mix label its latencies are reported under.
struct Shape {
    mix: &'static str,
    body: Json,
}

fn corpus_shapes(dir: &Path) -> Result<Vec<Shape>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read litmus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "litmus"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .litmus files in {}", dir.display()));
    }
    files
        .into_iter()
        .map(|path| {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Ok(Shape {
                mix: "corpus",
                body: Json::obj(vec![
                    ("litmus_source", Json::str(&src)),
                    ("mode", Json::str("litmus")),
                ]),
            })
        })
        .collect()
}

fn program_shapes() -> Vec<Shape> {
    // The E13 widening and E16 contention workloads at sizes that finish
    // in milliseconds, so the closed loop measures service latency
    // rather than a single giant exploration.
    let mut shapes = Vec::new();
    for k in [2usize, 4] {
        shapes.push(Shape {
            mix: "shapes",
            body: Json::obj(vec![
                ("program", Json::str(wide_workload_src(k))),
                ("mode", Json::str("count")),
            ]),
        });
    }
    for k in [2usize, 3] {
        shapes.push(Shape {
            mix: "shapes",
            body: Json::obj(vec![
                ("program", Json::str(contended_workload_src(k))),
                ("mode", Json::str("count")),
            ]),
        });
    }
    shapes
}

/// What each worker accumulates locally and merges into the shared
/// tally when it finishes.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    cache_hits: u64,
    malformed: u64,
    errors: u64,
    by_mix: Vec<(&'static str, LogHistogram)>,
}

impl Tally {
    fn histogram(&mut self, mix: &'static str) -> &mut LogHistogram {
        if let Some(pos) = self.by_mix.iter().position(|(name, _)| *name == mix) {
            return &mut self.by_mix[pos].1;
        }
        self.by_mix.push((mix, LogHistogram::new()));
        &mut self.by_mix.last_mut().unwrap().1
    }

    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.cache_hits += other.cache_hits;
        self.malformed += other.malformed;
        self.errors += other.errors;
        for (mix, hist) in other.by_mix {
            self.histogram(mix).merge(&hist);
        }
    }
}

/// Reads one response frame, polling through read-timeout `Idle` ticks
/// until `deadline`.
fn read_response(stream: &mut TcpStream, deadline: Instant) -> Result<Vec<u8>, String> {
    loop {
        match read_frame(stream)? {
            FrameIn::Frame(payload) => return Ok(payload),
            FrameIn::Eof => return Err("server closed the connection".to_string()),
            FrameIn::Idle => {
                if Instant::now() >= deadline {
                    return Err("response deadline exceeded".to_string());
                }
            }
        }
    }
}

fn run_worker(
    opts: &Opts,
    shapes: &[Shape],
    next: &AtomicUsize,
    shared: &Mutex<Tally>,
) -> Result<(), String> {
    let mut tally = Tally::default();
    let result = drive(opts, shapes, next, &mut tally);
    shared.lock().unwrap().merge(tally);
    result
}

fn drive(
    opts: &Opts,
    shapes: &[Shape],
    next: &AtomicUsize,
    tally: &mut Tally,
) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream.set_nodelay(true).ok();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= opts.requests {
            return Ok(());
        }
        let shape = &shapes[i % shapes.len()];
        let id = format!("load-{i}");
        let payload = {
            let mut fields = match &shape.body {
                Json::Obj(fields) => fields.clone(),
                _ => unreachable!("shape bodies are objects"),
            };
            fields.insert(0, ("id".to_string(), Json::str(&id)));
            Json::Obj(fields).render()
        };
        let start = Instant::now();
        tally.sent += 1;
        write_frame(&mut stream, payload.as_bytes()).map_err(|e| {
            tally.errors += 1;
            format!("write: {e}")
        })?;
        let response = match read_response(&mut stream, start + opts.timeout) {
            Ok(bytes) => bytes,
            Err(e) => {
                tally.errors += 1;
                return Err(e);
            }
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // A response is well-formed only if it parses, echoes our id,
        // and reports a known status. Everything else is malformed and
        // fails the run — the whole point is catching framing bugs.
        let doc = match std::str::from_utf8(&response)
            .ok()
            .and_then(|text| Json::parse(text).ok())
        {
            Some(doc) => doc,
            None => {
                tally.malformed += 1;
                continue;
            }
        };
        if doc.get("id").and_then(Json::as_str) != Some(&id) {
            tally.malformed += 1;
            continue;
        }
        match doc.get("status").and_then(Json::as_str) {
            Some("ok") => {
                tally.ok += 1;
                if doc.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                    tally.cache_hits += 1;
                }
                tally.histogram(shape.mix).record(nanos);
            }
            Some("overloaded") => tally.overloaded += 1,
            _ => tally.malformed += 1,
        }
    }
}

fn result_doc(opts: &Opts, tally: &Tally) -> Json {
    let mut rows = Vec::new();
    let mut mixes: Vec<&(&'static str, LogHistogram)> = tally.by_mix.iter().collect();
    mixes.sort_by_key(|(name, _)| *name);
    for (mix, hist) in mixes {
        for (tag, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
            rows.push(Json::obj(vec![
                ("group", Json::str("serve")),
                ("name", Json::str(format!("{mix}-{tag}"))),
                ("size", Json::from(hist.total() as u128)),
                ("nanos", Json::from(hist.percentile(p) as u128)),
            ]));
        }
        rows.push(Json::obj(vec![
            ("group", Json::str("serve")),
            ("name", Json::str(format!("{mix}-mean"))),
            ("size", Json::from(hist.total() as u128)),
            ("nanos", Json::from(hist.mean() as u128)),
        ]));
    }
    Json::obj(vec![
        ("bench", Json::str("serve_latency")),
        ("addr", Json::str(&opts.addr)),
        ("mix", Json::str(&opts.mix)),
        ("conns", Json::from(opts.conns)),
        ("requests", Json::from(tally.sent as u128)),
        ("ok", Json::from(tally.ok as u128)),
        ("overloaded", Json::from(tally.overloaded as u128)),
        ("cache_hits", Json::from(tally.cache_hits as u128)),
        ("malformed", Json::from(tally.malformed as u128)),
        ("errors", Json::from(tally.errors as u128)),
        ("rows", Json::Arr(rows)),
    ])
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("c11load: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut shapes = Vec::new();
    if opts.mix == "corpus" || opts.mix == "all" {
        match corpus_shapes(Path::new(&opts.litmus)) {
            Ok(mut found) => shapes.append(&mut found),
            Err(msg) => {
                eprintln!("c11load: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.mix == "shapes" || opts.mix == "all" {
        shapes.append(&mut program_shapes());
    }

    let next = AtomicUsize::new(0);
    let shared = Mutex::new(Tally::default());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.conns)
            .map(|worker| {
                let opts = &opts;
                let shapes = &shapes;
                let next = &next;
                let shared = &shared;
                scope.spawn(move || {
                    if let Err(msg) = run_worker(opts, shapes, next, shared) {
                        eprintln!("c11load: worker {worker}: {msg}");
                    }
                })
            })
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    });

    let tally = shared.into_inner().unwrap();
    let doc = result_doc(&opts, &tally).render();
    println!("{doc}");
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("c11load: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if tally.malformed == 0 && tally.errors == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "c11load: FAILED — {} malformed frames, {} transport errors",
            tally.malformed, tally.errors
        );
        ExitCode::FAILURE
    }
}
