//! `c11bench` — offline comparators for the CI quality gates.
//!
//! ```sh
//! # Fail if any shared benchmark row of the fresh run regressed more
//! # than 25% against the committed baseline (rows faster than
//! # --min-nanos in the baseline are skipped as noise):
//! c11bench compare BENCH_baseline.json BENCH_fresh.json --tolerance 0.25
//!
//! # Fail if two `c11check --litmus --json` documents disagree on any
//! # per-test verdict (pass / observed_ra / observed_sc / expectations):
//! c11bench verdicts seq.json dpor.json
//! ```
//!
//! Both subcommands are plain-file, offline tools: `compare` reads the
//! `explore_e2e` JSON trajectory files (whose rows carry floats, so they
//! are scanned with a tolerant row reader instead of the strict
//! `c11check/v1` parser), `verdicts` reads `c11check-litmus/v1` reports
//! through `c11_api::json::Json::parse` and diffs the verdict projection
//! — stats (`wall_micros`, state counts) are deliberately ignored, since
//! backends differ exactly there.

use c11_api::json::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage:\n\
     c11bench compare <baseline.json> <fresh.json> [--tolerance F] [--min-nanos N] [--absolute]\n\
     \x20                [--ratio-floor F] [--ratio-match S] [--require-match S]\n\
     c11bench verdicts <a.json> <b.json>\n\
     compare: fail (exit 1) if a benchmark row shared by both files is \
     slower in <fresh> by more than the tolerance (default 0.25 = +25%) \
     after normalising by the median ratio across shared rows (so a \
     uniformly slower machine cancels out; --absolute compares raw wall \
     times); baseline rows below --min-nanos (default 100000 = 100µs) \
     are skipped as timer noise, and rows stamped \"interrupted\": true \
     (a run truncated by `explore_e2e --budget-ms`) are skipped with a \
     note — a deadline-bounded wall time measures the budget, not the \
     workload\n\
     --ratio-floor: additionally fail if, in <fresh>'s `scaling` group, \
     the w1/w4 speedup of any shape whose name contains --ratio-match \
     (default \"contended\") falls below F. The floor is scaled down when \
     <fresh> records fewer than 4 host cores (a 1-core runner cannot \
     exhibit real speedup), bottoming out at 0.7 = \"w4 must not be \
     catastrophically slower than w1\"\n\
     --require-match: error (exit 2) unless at least one row that \
     actually entered the regression loop has a name containing S — \
     catches a gate that silently compares nothing (e.g. every p99 row \
     fell under --min-nanos)\n\
     verdicts: fail (exit 1) if two c11check-litmus/v1 documents \
     disagree on any test's verdict fields (stats are ignored)";

/// One benchmark row: wall time plus whether the measured run was
/// deadline-interrupted (`explore_e2e --budget-ms`), in which case the
/// wall time measures the budget, not the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BenchRow {
    nanos: u128,
    interrupted: bool,
}

/// Benchmark rows keyed by (group, name).
type BenchRows = BTreeMap<(String, String), BenchRow>;

/// Scans an `explore_e2e` JSON trajectory for its rows. The file carries
/// floats (`per_sec`), which the strict report parser rejects, so this
/// reads the fields it needs (`group`, `name`, `nanos`, and the optional
/// `interrupted` stamp) with a small string scanner keyed to the
/// emitter's `"key": value` layout.
fn parse_bench_rows(src: &str) -> Result<BenchRows, String> {
    fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\":");
        let start = row.find(&pat)? + pat.len();
        let rest = row[start..].trim_start();
        if let Some(stripped) = rest.strip_prefix('"') {
            stripped.split('"').next()
        } else {
            rest.split([',', '}']).next().map(str::trim)
        }
    }
    let mut rows = BenchRows::new();
    for row in src.split('{').skip(2) {
        // Every row object carries all three fields; anything else
        // (the document header) simply doesn't match.
        let (Some(group), Some(name), Some(nanos)) =
            (field(row, "group"), field(row, "name"), field(row, "nanos"))
        else {
            continue;
        };
        let nanos: u128 = nanos
            .parse()
            .map_err(|e| format!("bad nanos for {group}/{name}: {e}"))?;
        let interrupted = field(row, "interrupted") == Some("true");
        if rows
            .insert(
                (group.to_string(), name.to_string()),
                BenchRow { nanos, interrupted },
            )
            .is_some()
        {
            return Err(format!("duplicate row {group}/{name}"));
        }
    }
    if rows.is_empty() {
        return Err("no benchmark rows found".to_string());
    }
    Ok(rows)
}

/// Reads the document-level `"cores"` field the `explore_e2e` emitter
/// records (absent in pre-scaling trajectory files).
fn parse_cores(src: &str) -> Option<usize> {
    let head = src.split("\"rows\"").next()?;
    let start = head.find("\"cores\":")? + "\"cores\":".len();
    head[start..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Runs the bench comparison; `Ok(true)` means no regressions.
fn run_compare(args: &[String]) -> Result<bool, String> {
    let (mut tolerance, mut min_nanos): (f64, u128) = (0.25, 100_000);
    let mut absolute = false;
    let mut ratio_floor: Option<f64> = None;
    let mut ratio_match = "contended".to_string();
    let mut require_match: Option<String> = None;
    let (mut baseline, mut fresh) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--min-nanos" => {
                min_nanos = it
                    .next()
                    .ok_or("--min-nanos needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --min-nanos: {e}"))?;
            }
            "--absolute" => absolute = true,
            "--ratio-floor" => {
                ratio_floor = Some(
                    it.next()
                        .ok_or("--ratio-floor needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --ratio-floor: {e}"))?,
                );
            }
            "--ratio-match" => {
                ratio_match = it.next().ok_or("--ratio-match needs a value")?.clone();
            }
            "--require-match" => {
                require_match = Some(it.next().ok_or("--require-match needs a value")?.clone());
            }
            p if baseline.is_none() => baseline = Some(p.to_string()),
            p if fresh.is_none() => fresh = Some(p.to_string()),
            other => return Err(format!("unknown compare argument {other:?}")),
        }
    }
    let (baseline, fresh) = (
        baseline.ok_or("compare needs a baseline file")?,
        fresh.ok_or("compare needs a fresh file")?,
    );
    let read = |p: &str| -> Result<(BenchRows, Option<usize>), String> {
        let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        let rows = parse_bench_rows(&src).map_err(|e| format!("{p}: {e}"))?;
        Ok((rows, parse_cores(&src)))
    };
    let ((base_rows, base_cores), (fresh_rows, fresh_cores)) = (read(&baseline)?, read(&fresh)?);
    // Scaling rows are only time-comparable between hosts with the same
    // core count: more cores change the *shape* across worker counts
    // (w4 speeds up, w1 doesn't), which median normalisation cannot
    // cancel. When the recorded core counts differ, the ratio-floor gate
    // owns the scaling group and the row loop skips it.
    let skip_scaling = match (base_cores, fresh_cores) {
        (Some(b), Some(f)) => b != f,
        _ => false,
    };
    if skip_scaling {
        println!(
            "skipping scaling rows in the regression loop: baseline measured on {} core(s), fresh on {} core(s)",
            base_cores.unwrap(),
            fresh_cores.unwrap()
        );
    }
    // Shared rows above the noise floor, with their raw new/base ratios.
    // A row whose measured run tripped a `--budget-ms` deadline (on
    // either side) times the budget rather than the workload, so it is
    // excluded from the regression gate with a note instead of reading
    // as a spurious pass or failure.
    let mut rows: Vec<(&String, &String, u128, u128, f64)> = Vec::new();
    let mut shared = 0usize;
    for ((group, name), &base) in &base_rows {
        let Some(&new) = fresh_rows.get(&(group.clone(), name.clone())) else {
            continue;
        };
        shared += 1;
        if new.interrupted || base.interrupted {
            println!(
                "skipping {group}/{name}: {} run was deadline-interrupted, its wall time is not comparable",
                if new.interrupted { "fresh" } else { "baseline" }
            );
            continue;
        }
        let (base, new) = (base.nanos, new.nanos);
        if base < min_nanos || (skip_scaling && group == "scaling") {
            continue;
        }
        rows.push((group, name, base, new, new as f64 / base as f64));
    }
    if shared == 0 {
        return Err("the two files share no benchmark rows".to_string());
    }
    // The SLO gates name a row substring they expect to actually gate
    // on (e.g. "p99"); if every such row was filtered out — noise
    // floor, deadline interruption, a missing counterpart — the gate
    // is vacuous and must error rather than silently pass.
    if let Some(needle) = &require_match {
        if !rows
            .iter()
            .any(|(_, name, ..)| name.contains(needle.as_str()))
        {
            return Err(format!(
                "--require-match: none of the {} compared rows has a name containing {needle:?}",
                rows.len()
            ));
        }
    }
    // The fresh run usually comes from a different machine (or a quick
    // CI pass) than the committed baseline, so by default ratios are
    // normalised by their median: a uniformly slower runner cancels out
    // and only *relative* per-row regressions trip the gate.
    // `--absolute` compares raw wall times instead (same-machine runs).
    let scale = if absolute || rows.is_empty() {
        1.0
    } else {
        let mut ratios: Vec<f64> = rows.iter().map(|r| r.4).collect();
        ratios.sort_by(f64::total_cmp);
        // Lower median: with few rows a real regression must not drag
        // the normaliser up with it.
        ratios[(ratios.len() - 1) / 2].max(f64::MIN_POSITIVE)
    };
    if scale != 1.0 {
        println!("normalising by the median ratio {scale:.2}x (pass --absolute to disable)");
    }
    let mut regressions = Vec::new();
    for (group, name, base, new, ratio) in rows {
        let relative = ratio / scale;
        let verdict = if relative > 1.0 + tolerance {
            regressions.push(format!(
                "  REGRESSION {group}/{name}: {base} ns -> {new} ns ({:+.1}% after normalisation)",
                (relative - 1.0) * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{group}/{name}: {base} -> {new} ns ({relative:.2}x) {verdict}");
    }
    // The worker-scaling gate: within the fresh run alone, w4 must beat
    // w1 by the (core-count-adjusted) floor on every matching shape.
    let mut floor_failures = Vec::new();
    if let Some(floor) = ratio_floor {
        // An absent cores field (older emitter) assumes a capable host
        // and keeps the gate strict.
        let cores = fresh_cores.unwrap_or(4);
        let effective = if cores >= 4 {
            floor
        } else {
            // The 0.7 bottom allows for genuine oversubscription
            // overhead (4 worker threads time-slicing one core pay for
            // scheduling and cache-line ping-pong) while still catching
            // a pathological collapse.
            floor.min((floor * cores as f64 / 4.0).max(0.7))
        };
        if effective < floor {
            println!(
                "ratio floor relaxed {floor:.2}x -> {effective:.2}x: fresh run measured on {cores} core(s)"
            );
        }
        let mut pairs = 0usize;
        for ((group, name), &w1) in &fresh_rows {
            if group != "scaling" {
                continue;
            }
            let Some(stem) = name.strip_suffix("-w1") else {
                continue;
            };
            if !stem.contains(&ratio_match) {
                continue;
            }
            let Some(&w4) = fresh_rows.get(&(group.clone(), format!("{stem}-w4"))) else {
                continue;
            };
            if w1.interrupted || w4.interrupted {
                println!(
                    "skipping scaling {stem}: a deadline-interrupted run cannot witness a speedup"
                );
                continue;
            }
            pairs += 1;
            let speedup = w1.nanos as f64 / w4.nanos as f64;
            let ok = speedup >= effective;
            println!(
                "scaling {stem}: w1 {} ns / w4 {} ns = {speedup:.2}x (floor {effective:.2}x) {}",
                w1.nanos,
                w4.nanos,
                if ok { "ok" } else { "BELOW FLOOR" }
            );
            if !ok {
                floor_failures.push(format!(
                    "  SCALING {stem}: w4 speedup {speedup:.2}x below floor {effective:.2}x"
                ));
            }
        }
        if pairs == 0 {
            return Err(format!(
                "--ratio-floor: no scaling rows matching {ratio_match:?} with w1/w4 pairs in {fresh}"
            ));
        }
    }
    if regressions.is_empty() && floor_failures.is_empty() {
        println!(
            "bench compare: {shared} shared rows within +{:.0}%",
            tolerance * 100.0
        );
        Ok(true)
    } else {
        let mut all = regressions;
        all.extend(floor_failures);
        eprintln!(
            "bench compare: {} of {shared} shared rows failed the gates:\n{}",
            all.len(),
            all.join("\n")
        );
        Ok(false)
    }
}

/// The verdict projection of one litmus report: everything that must
/// agree across backends (stats are excluded by construction).
type Verdicts = BTreeMap<String, Vec<(String, String)>>;

fn verdict_projection(path: &str) -> Result<Verdicts, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(src.trim()).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("c11check-litmus/v1") {
        return Err(format!("{path}: not a c11check-litmus/v1 document"));
    }
    let Some(Json::Arr(tests)) = doc.get("tests") else {
        return Err(format!("{path}: missing \"tests\" array"));
    };
    let mut out = Verdicts::new();
    for t in tests {
        let name = t
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: test without a name"))?;
        let mut fields = Vec::new();
        for key in [
            "expect_ra",
            "expect_sc",
            "observed_ra",
            "observed_sc",
            "pass",
        ] {
            let value = match t.get(key) {
                Some(Json::Bool(b)) => b.to_string(),
                Some(v) => v.as_str().unwrap_or("?").to_string(),
                None => return Err(format!("{path}: {name} misses {key:?}")),
            };
            fields.push((key.to_string(), value));
        }
        if out.insert(name.to_string(), fields).is_some() {
            return Err(format!("{path}: duplicate test {name:?}"));
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no tests"));
    }
    Ok(out)
}

/// Diffs two verdict documents; `Ok(true)` means they agree.
fn run_verdicts(args: &[String]) -> Result<bool, String> {
    let [a, b] = args else {
        return Err("verdicts needs exactly two files".to_string());
    };
    let (va, vb) = (verdict_projection(a)?, verdict_projection(b)?);
    let mut diverged = Vec::new();
    if va.keys().ne(vb.keys()) {
        diverged.push(format!(
            "  test sets differ: {:?} vs {:?}",
            va.keys().collect::<Vec<_>>(),
            vb.keys().collect::<Vec<_>>()
        ));
    } else {
        for (name, fa) in &va {
            for ((key, x), (_, y)) in fa.iter().zip(&vb[name]) {
                if x != y {
                    diverged.push(format!("  {name}.{key}: {x:?} vs {y:?}"));
                }
            }
        }
    }
    if diverged.is_empty() {
        println!("verdicts agree on {} tests ({a} vs {b})", va.len());
        Ok(true)
    } else {
        eprintln!(
            "verdict divergence between {a} and {b}:\n{}",
            diverged.join("\n")
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("verdicts") => run_verdicts(&args[1..]),
        Some("-h") | Some("--help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
  "bench": "explore_e2e",
  "rows": [
    {"group": "wide", "name": "E13-wide-2", "size": 100, "nanos": 1000000, "per_sec": 100.0},
    {"group": "dpor", "name": "E13-wide-2", "size": 90, "nanos": 900000, "per_sec": 100.0},
    {"group": "closure", "name": "tiny", "size": 1, "nanos": 50, "per_sec": 2.5}
  ]
}
"#;

    #[test]
    fn bench_rows_parse_despite_floats() {
        let rows = parse_bench_rows(BENCH).unwrap();
        assert_eq!(rows.len(), 3);
        let wide = rows[&("wide".into(), "E13-wide-2".into())];
        assert_eq!((wide.nanos, wide.interrupted), (1_000_000, false));
        assert_eq!(rows[&("closure".into(), "tiny".into())].nanos, 50);
    }

    #[test]
    fn interrupted_rows_are_skipped_not_compared() {
        let dir = std::env::temp_dir().join("c11bench-test-interrupted");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, BENCH).unwrap();
        // The big row regressed 5x, but its fresh run tripped a
        // --budget-ms deadline: its wall time measures the budget, so
        // the gate must skip it rather than flag a regression.
        std::fs::write(
            &fresh,
            BENCH.replace(
                "\"nanos\": 1000000, \"per_sec\": 100.0",
                "\"nanos\": 5000000, \"per_sec\": 100.0, \"interrupted\": true",
            ),
        )
        .unwrap();
        let args = vec![
            base.to_str().unwrap().to_string(),
            fresh.to_str().unwrap().to_string(),
        ];
        assert!(run_compare(&args).unwrap());
        // A deadline-truncated *baseline* is equally incomparable: the
        // fresh run looking 5x slower than a budget-capped number is
        // not a regression either.
        std::fs::write(
            &base,
            BENCH.replace(
                "\"nanos\": 1000000, \"per_sec\": 100.0",
                "\"nanos\": 200000, \"per_sec\": 100.0, \"interrupted\": true",
            ),
        )
        .unwrap();
        std::fs::write(&fresh, BENCH).unwrap();
        assert!(run_compare(&args).unwrap());
    }

    #[test]
    fn interrupted_scaling_rows_drop_out_of_the_ratio_gate() {
        let dir = std::env::temp_dir().join("c11bench-test-interrupted-ratio");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, SCALING).unwrap();
        // The contended w4 run tripped its budget: the apparent 3.0x
        // speedup is fiction, so the pair is skipped — leaving no
        // matching pairs, which the gate reports as an error rather
        // than a silent pass.
        std::fs::write(
            &fresh,
            SCALING.replace(
                "\"name\": \"E16-contended-4-w4\", \"size\": 553, \"nanos\": 1000000",
                "\"name\": \"E16-contended-4-w4\", \"size\": 553, \"nanos\": 1000000, \"interrupted\": true",
            ),
        )
        .unwrap();
        let args = vec![
            base.to_str().unwrap().to_string(),
            fresh.to_str().unwrap().to_string(),
            "--ratio-floor".to_string(),
            "2.5".to_string(),
        ];
        assert!(run_compare(&args).is_err());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let dir = std::env::temp_dir().join("c11bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, BENCH).unwrap();
        // +10% on the big row, 3x on the sub-min-nanos row: both fine.
        std::fs::write(
            &fresh,
            BENCH
                .replace("\"nanos\": 1000000", "\"nanos\": 1100000")
                .replace("\"nanos\": 50", "\"nanos\": 150"),
        )
        .unwrap();
        let args = |a: &std::path::Path, b: &std::path::Path| {
            vec![
                a.to_str().unwrap().to_string(),
                b.to_str().unwrap().to_string(),
            ]
        };
        assert!(run_compare(&args(&base, &fresh)).unwrap());
        // +30% on the big row: regression at the default 25% tolerance…
        std::fs::write(
            &fresh,
            BENCH.replace("\"nanos\": 1000000", "\"nanos\": 1300000"),
        )
        .unwrap();
        assert!(!run_compare(&args(&base, &fresh)).unwrap());
        // …but fine at 50%.
        let mut relaxed = args(&base, &fresh);
        relaxed.extend(["--tolerance".to_string(), "0.5".to_string()]);
        assert!(run_compare(&relaxed).unwrap());
    }

    #[test]
    fn compare_normalises_away_a_uniformly_slower_machine() {
        let dir = std::env::temp_dir().join("c11bench-test-scale");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, BENCH).unwrap();
        // Everything 2x slower (a weaker CI runner): fine by default…
        std::fs::write(
            &fresh,
            BENCH
                .replace("\"nanos\": 1000000", "\"nanos\": 2000000")
                .replace("\"nanos\": 900000", "\"nanos\": 1800000"),
        )
        .unwrap();
        let args: Vec<String> = vec![
            base.to_str().unwrap().to_string(),
            fresh.to_str().unwrap().to_string(),
        ];
        assert!(run_compare(&args).unwrap());
        // …but a raw-wall-time comparison flags it.
        let mut strict = args.clone();
        strict.push("--absolute".to_string());
        assert!(!run_compare(&strict).unwrap());
        // A lopsided slowdown (one row 2x, the other untouched) is a
        // per-row regression even after normalisation.
        std::fs::write(
            &fresh,
            BENCH.replace("\"nanos\": 1000000", "\"nanos\": 2000000"),
        )
        .unwrap();
        assert!(!run_compare(&args).unwrap());
    }

    const SCALING: &str = r#"{
  "bench": "explore_e2e",
  "cores": 4,
  "rows": [
    {"group": "scaling", "name": "E16-contended-4-w1", "size": 553, "nanos": 3000000, "per_sec": 1.0},
    {"group": "scaling", "name": "E16-contended-4-w4", "size": 553, "nanos": 1000000, "per_sec": 1.0},
    {"group": "scaling", "name": "E13-wide-4-w1", "size": 400, "nanos": 2000000, "per_sec": 1.0},
    {"group": "scaling", "name": "E13-wide-4-w4", "size": 400, "nanos": 1900000, "per_sec": 1.0}
  ]
}
"#;

    #[test]
    fn cores_field_is_read_from_the_header_only() {
        assert_eq!(parse_cores(SCALING), Some(4));
        assert_eq!(parse_cores(BENCH), None, "older files carry no cores");
        // A hypothetical row-level "cores" key must not leak into the
        // document-level read.
        assert_eq!(parse_cores("{\n \"rows\": [\n {\"cores\": 9}\n]}"), None);
    }

    #[test]
    fn ratio_floor_gates_the_contended_scaling_pair() {
        let dir = std::env::temp_dir().join("c11bench-test-ratio");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, SCALING).unwrap();
        std::fs::write(&fresh, SCALING).unwrap();
        let args = |extra: &[&str]| {
            let mut v = vec![
                base.to_str().unwrap().to_string(),
                fresh.to_str().unwrap().to_string(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        // 3.0x speedup on the contended shape: clears a 2.5x floor. The
        // wide shape's 1.05x is outside the default "contended" match.
        assert!(run_compare(&args(&["--ratio-floor", "2.5"])).unwrap());
        // Matching the wide shape instead: 1.05x misses the floor.
        assert!(!run_compare(&args(&["--ratio-floor", "2.5", "--ratio-match", "wide"])).unwrap());
        // A collapsed speedup on a 4-core host fails…
        std::fs::write(
            &fresh,
            SCALING.replace("\"nanos\": 1000000", "\"nanos\": 2900000"),
        )
        .unwrap();
        assert!(!run_compare(&args(&["--ratio-floor", "2.5"])).unwrap());
        // …but the same measurement from a 1-core host only has to beat
        // the 0.7x sanity bound (baseline matched so only the ratio gate
        // is in play).
        let one_core = SCALING
            .replace("\"cores\": 4", "\"cores\": 1")
            .replace("\"nanos\": 1000000", "\"nanos\": 2900000");
        std::fs::write(&base, &one_core).unwrap();
        std::fs::write(&fresh, &one_core).unwrap();
        assert!(run_compare(&args(&["--ratio-floor", "2.5"])).unwrap());
        // A pathological collapse (w4 twice as slow as w1) fails even
        // the relaxed 1-core bound.
        let collapsed = SCALING
            .replace("\"cores\": 4", "\"cores\": 1")
            .replace("\"nanos\": 1000000", "\"nanos\": 6000000");
        std::fs::write(&base, &collapsed).unwrap();
        std::fs::write(&fresh, &collapsed).unwrap();
        assert!(!run_compare(&args(&["--ratio-floor", "2.5"])).unwrap());
        // No matching scaling pairs at all: a misconfigured gate errors
        // instead of silently passing.
        std::fs::write(&fresh, BENCH).unwrap();
        std::fs::write(&base, BENCH).unwrap();
        assert!(run_compare(&args(&["--ratio-floor", "2.5"])).is_err());
    }

    #[test]
    fn scaling_rows_skip_the_regression_loop_across_core_counts() {
        let dir = std::env::temp_dir().join("c11bench-test-cores-skip");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        let args = vec![
            base.to_str().unwrap().to_string(),
            fresh.to_str().unwrap().to_string(),
        ];
        // A 1-core fresh run is 3x slower on the w4 row than the 4-core
        // baseline — a *shape* change from losing parallelism, not a
        // regression. Same core count: the row loop flags it…
        let slow_w4 = SCALING.replace("\"nanos\": 1000000", "\"nanos\": 3000000");
        std::fs::write(&base, SCALING).unwrap();
        std::fs::write(&fresh, &slow_w4).unwrap();
        assert!(!run_compare(&args).unwrap());
        // …but across core counts the scaling group is excluded.
        std::fs::write(&fresh, slow_w4.replace("\"cores\": 4", "\"cores\": 1")).unwrap();
        assert!(run_compare(&args).unwrap());
    }

    #[test]
    fn require_match_rejects_a_vacuous_gate() {
        let dir = std::env::temp_dir().join("c11bench-test-require");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, BENCH).unwrap();
        std::fs::write(&fresh, BENCH).unwrap();
        let args = |needle: &str| {
            vec![
                base.to_str().unwrap().to_string(),
                fresh.to_str().unwrap().to_string(),
                "--require-match".to_string(),
                needle.to_string(),
            ]
        };
        // "E13" rows survive the noise floor and are compared: passes.
        assert!(run_compare(&args("E13")).unwrap());
        // "tiny" exists but sits below --min-nanos, so nothing with
        // that name is actually compared: the gate is vacuous.
        assert!(run_compare(&args("tiny")).is_err());
        // A substring matching nothing at all errors too.
        assert!(run_compare(&args("p99")).is_err());
    }

    const LITMUS_A: &str = r#"{"schema":"c11check-litmus/v1","tests":[{"schema":"c11check/v1","mode":"litmus","name":"SB","expect_ra":"allowed","expect_sc":"forbidden","observed_ra":true,"observed_sc":false,"pass":true,"ra":{"unique":10,"wall_micros":5},"sc":{"unique":4,"wall_micros":1}}],"failed":0}"#;

    #[test]
    fn verdicts_ignore_stats_but_catch_flips() {
        let dir = std::env::temp_dir().join("c11bench-test-verdicts");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, LITMUS_A).unwrap();
        // Different stats, same verdicts: agreement.
        std::fs::write(&b, LITMUS_A.replace("\"unique\":10", "\"unique\":7")).unwrap();
        let args = vec![
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        ];
        assert!(run_verdicts(&args).unwrap());
        // A flipped observation is a divergence.
        std::fs::write(
            &b,
            LITMUS_A.replace("\"observed_ra\":true", "\"observed_ra\":false"),
        )
        .unwrap();
        assert!(!run_verdicts(&args).unwrap());
    }
}
