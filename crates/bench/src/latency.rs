//! A fixed-footprint log-scale latency histogram (the offline stand-in
//! for hdrhistogram): 32 sub-buckets per power of two, so any recorded
//! value is off by at most 1/32 (~3 %) of itself — plenty for p50/p95/p99
//! gating — in a flat 1920-slot array that merges with a loop of adds.
//!
//! Values below 64 are exact (they fit entirely in the first two
//! octaves' worth of slots); everything above lands in bucket
//! `(octave + 1) * 32 + top-5-mantissa-bits`, which is continuous with
//! the exact region (63 → slot 63, 64 → slot 64) and monotone.

/// Mantissa bits kept per octave: 2^5 = 32 sub-buckets.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Slots: exact region (0..64) + (octaves 6..=63) × 32 sub-buckets.
const SIZE: usize = SUBS * 2 + (64 - SUB_BITS as usize - 1) * SUBS;

/// A fixed-bucket logarithmic histogram over `u64` values (nanoseconds,
/// here, but unit-agnostic).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; SIZE]>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: Box::new([0; SIZE]),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }
}

fn index_of(v: u64) -> usize {
    if v < (SUBS as u64) * 2 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // position of the highest set bit
    let shift = top - SUB_BITS;
    let mantissa = ((v >> shift) as usize) & (SUBS - 1);
    (shift as usize + 1) * SUBS + mantissa
}

/// The representative (midpoint) value of bucket `idx` — the value
/// [`LogHistogram::percentile`] reports for samples in that bucket.
fn value_of(idx: usize) -> u64 {
    if idx < SUBS * 2 {
        return idx as u64;
    }
    let shift = (idx / SUBS - 1) as u32;
    let mantissa = (idx % SUBS) as u64;
    let lower = (SUBS as u64 + mantissa) << shift;
    lower + (1u64 << shift) / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values, exact (tracked outside the buckets).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// The value at percentile `p` (0–100): the representative value of
    /// the bucket holding the ⌈p% · total⌉-th smallest sample, clamped
    /// into the observed min/max. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_the_scale_is_continuous() {
        for v in 0..256u64 {
            let idx = index_of(v);
            if v < 64 {
                assert_eq!(idx, v as usize, "exact region");
                assert_eq!(value_of(idx), v);
            }
        }
        // Boundary between the exact region and the log region.
        assert_eq!(index_of(63), 63);
        assert_eq!(index_of(64), 64);
        assert_eq!(index_of(127), 95);
        assert_eq!(index_of(128), 96);
        assert!(index_of(u64::MAX) < SIZE, "largest value fits the array");
    }

    #[test]
    fn indexing_is_monotone() {
        let probes: Vec<u64> = (0..2000)
            .chain((1..54).map(|s| (1u64 << s) - 1))
            .chain((1..54).map(|s| 1u64 << s))
            .chain((1..54).map(|s| (1u64 << s) + 1))
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            assert!(
                index_of(pair[0]) <= index_of(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn representative_values_round_trip_within_a_bucket() {
        for v in [100u64, 1_000, 65_536, 1_000_000, 123_456_789] {
            let rep = value_of(index_of(v));
            assert_eq!(index_of(rep), index_of(v), "rep stays in the bucket");
        }
    }

    #[test]
    fn percentiles_track_sorted_quantiles_within_bucket_error() {
        // A spread resembling a latency distribution: microseconds to
        // tens of milliseconds in nanosecond units.
        let mut h = LogHistogram::new();
        let mut values: Vec<u64> = (0..10_000u64)
            .map(|i| 1_000 + i * i % 7_777_777 + (i % 97) * 10_000)
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [50.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil() as usize - 1;
            let exact = values[rank] as f64;
            let approx = h.percentile(p) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err <= 1.0 / 32.0, "p{p}: {approx} vs {exact} (err {err})");
        }
        assert_eq!(h.total(), 10_000);
        assert_eq!(h.min(), *values.first().unwrap());
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 0..500u64 {
            let v = 1_000 + i * 331;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.total(), both.total());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.mean(), both.mean());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LogHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }
}
