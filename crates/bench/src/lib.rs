//! Shared workloads for the benchmark harness. Each bench target under
//! `benches/` regenerates one experiment of `EXPERIMENTS.md`; this crate
//! hosts the workload generators they share.

use c11_core::state::C11State;
use c11_core::Event;
use c11_lang::{parse_program, Action, Prog, ThreadId, VarId};

pub mod latency;

/// A single-variable history: `chain_len` writes by one thread, each read
/// once by a second thread, with `rf`/`mo` fully wired. Scales the derived-
/// relation benchmarks (E2).
pub fn chain_state(chain_len: usize) -> C11State {
    let x = VarId(0);
    let mut s = C11State::initial(&[0]);
    let mut prev = 0usize;
    for i in 0..chain_len {
        let (mut s2, w) = s.append_event(Event::new(
            ThreadId(1),
            Action::Wr {
                var: x,
                val: (i + 1) as u32,
                release: i % 2 == 0,
            },
        ));
        s2.mo_mut().add(prev, w);
        // keep mo transitive
        let preds: Vec<usize> = s2.mo().preimage(prev).collect();
        for p in preds {
            s2.mo_mut().add(p, w);
        }
        let (mut s3, r) = s2.append_event(Event::new(
            ThreadId(2),
            Action::Rd {
                var: x,
                val: (i + 1) as u32,
                acquire: i % 2 == 0,
            },
        ));
        s3.rf_mut().add(w, r);
        prev = w;
        s = s3;
    }
    s
}

/// The E13 widening workload as DSL source (what `c11load` sends over
/// the wire): `k` variables, one writer thread, one reader thread.
pub fn wide_workload_src(k: usize) -> String {
    let vars: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
    let mut t1 = String::new();
    let mut t2 = String::new();
    for (i, v) in vars.iter().enumerate() {
        t1.push_str(&format!("{v} := {}; ", i + 1));
        t2.push_str(&format!("r{i} <- {v}; "));
    }
    format!(
        "vars {};\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}",
        vars.join(" ")
    )
}

/// The widening write/read workload of E13: `k` variables, one writer
/// thread, one reader thread.
pub fn wide_workload(k: usize) -> Prog {
    parse_program(&wide_workload_src(k)).expect("workload parses")
}

/// The E16 contended workload as DSL source: `k` writes by each of two
/// threads to a single variable.
pub fn contended_workload_src(k: usize) -> String {
    let stmt = |base: usize| {
        (0..k)
            .map(|i| format!("x := {}; ", base + i))
            .collect::<String>()
    };
    format!(
        "vars x;\nthread t1 {{ {} }}\nthread t2 {{ {} }}",
        stmt(1),
        stmt(100)
    )
}

/// A contended workload: `k` writes by each of two threads to a single
/// variable (mo-insertion-heavy; used by the exploration ablation E16).
pub fn contended_workload(k: usize) -> Prog {
    parse_program(&contended_workload_src(k)).expect("workload parses")
}

/// A symmetric fan workload as DSL source: one release-writer publishing
/// `k` variables behind a flag, and `readers` byte-identical acquire
/// readers. The identical readers form one symmetry class, so the
/// state-storage benchmarks quotient their interleavings away.
pub fn sym_fan_workload_src(k: usize, readers: usize) -> String {
    let vars: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
    let mut writer = String::new();
    let mut reader = String::new();
    for (i, v) in vars.iter().enumerate() {
        writer.push_str(&format!("{v} := {}; ", i + 1));
        reader.push_str(&format!("r{i} <- {v}; "));
    }
    writer.push_str("f :=R 1; ");
    let mut out = format!("vars {} f;\nthread w {{ {writer} }}\n", vars.join(" "));
    for i in 0..readers {
        // The flag lands in r9 so data registers stay at r0..r(k-1).
        out.push_str(&format!("thread rd{i} {{ r9 <-A f; {reader} }}\n"));
    }
    out
}

/// The symmetric fan workload of the state-storage benchmarks: one
/// writer, `readers` identical acquire readers over `k` variables.
pub fn sym_fan_workload(k: usize, readers: usize) -> Prog {
    parse_program(&sym_fan_workload_src(k, readers)).expect("workload parses")
}

/// A symmetric contended workload as DSL source: `threads` byte-identical
/// threads, each issuing `k` writes (of the same values — identical
/// bodies are what makes the thread-permutation group act) to one
/// variable. The whole program is a single symmetry class of size
/// `threads`, the quotient's best case.
pub fn sym_contended_workload_src(k: usize, threads: usize) -> String {
    let body: String = (0..k).map(|i| format!("x := {}; ", i + 1)).collect();
    let mut out = String::from("vars x;\n");
    for i in 0..threads {
        out.push_str(&format!("thread t{i} {{ {body} }}\n"));
    }
    out
}

/// The symmetric contended workload: `threads` identical threads × `k`
/// single-variable writes each.
pub fn sym_contended_workload(k: usize, threads: usize) -> Prog {
    parse_program(&sym_contended_workload_src(k, threads)).expect("workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_state_is_valid_shape() {
        let s = chain_state(6);
        assert_eq!(s.len(), 1 + 12);
        assert!(s.mo().is_strict_total_order_on(&s.writes()));
        assert!(s.eco().is_irreflexive());
    }

    #[test]
    fn workloads_parse() {
        assert_eq!(wide_workload(3).num_vars(), 3);
        assert_eq!(contended_workload(2).num_threads(), 2);
    }

    #[test]
    fn symmetric_workloads_have_identical_thread_bodies() {
        let fan = sym_fan_workload(2, 3);
        assert_eq!(fan.num_threads(), 4);
        assert_eq!(fan.threads[1], fan.threads[2]);
        assert_eq!(fan.threads[2], fan.threads[3]);
        assert_ne!(fan.threads[0], fan.threads[1]);
        let cc = sym_contended_workload(2, 4);
        assert_eq!(cc.num_threads(), 4);
        assert!(cc.threads.windows(2).all(|w| w[0] == w[1]));
    }
}
