//! Shared workloads for the benchmark harness. Each bench target under
//! `benches/` regenerates one experiment of `EXPERIMENTS.md`; this crate
//! hosts the workload generators they share.

use c11_core::state::C11State;
use c11_core::Event;
use c11_lang::{parse_program, Action, Prog, ThreadId, VarId};

pub mod latency;

/// A single-variable history: `chain_len` writes by one thread, each read
/// once by a second thread, with `rf`/`mo` fully wired. Scales the derived-
/// relation benchmarks (E2).
pub fn chain_state(chain_len: usize) -> C11State {
    let x = VarId(0);
    let mut s = C11State::initial(&[0]);
    let mut prev = 0usize;
    for i in 0..chain_len {
        let (mut s2, w) = s.append_event(Event::new(
            ThreadId(1),
            Action::Wr {
                var: x,
                val: (i + 1) as u32,
                release: i % 2 == 0,
            },
        ));
        s2.mo_mut().add(prev, w);
        // keep mo transitive
        let preds: Vec<usize> = s2.mo().preimage(prev).collect();
        for p in preds {
            s2.mo_mut().add(p, w);
        }
        let (mut s3, r) = s2.append_event(Event::new(
            ThreadId(2),
            Action::Rd {
                var: x,
                val: (i + 1) as u32,
                acquire: i % 2 == 0,
            },
        ));
        s3.rf_mut().add(w, r);
        prev = w;
        s = s3;
    }
    s
}

/// The E13 widening workload as DSL source (what `c11load` sends over
/// the wire): `k` variables, one writer thread, one reader thread.
pub fn wide_workload_src(k: usize) -> String {
    let vars: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
    let mut t1 = String::new();
    let mut t2 = String::new();
    for (i, v) in vars.iter().enumerate() {
        t1.push_str(&format!("{v} := {}; ", i + 1));
        t2.push_str(&format!("r{i} <- {v}; "));
    }
    format!(
        "vars {};\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}",
        vars.join(" ")
    )
}

/// The widening write/read workload of E13: `k` variables, one writer
/// thread, one reader thread.
pub fn wide_workload(k: usize) -> Prog {
    parse_program(&wide_workload_src(k)).expect("workload parses")
}

/// The E16 contended workload as DSL source: `k` writes by each of two
/// threads to a single variable.
pub fn contended_workload_src(k: usize) -> String {
    let stmt = |base: usize| {
        (0..k)
            .map(|i| format!("x := {}; ", base + i))
            .collect::<String>()
    };
    format!(
        "vars x;\nthread t1 {{ {} }}\nthread t2 {{ {} }}",
        stmt(1),
        stmt(100)
    )
}

/// A contended workload: `k` writes by each of two threads to a single
/// variable (mo-insertion-heavy; used by the exploration ablation E16).
pub fn contended_workload(k: usize) -> Prog {
    parse_program(&contended_workload_src(k)).expect("workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_state_is_valid_shape() {
        let s = chain_state(6);
        assert_eq!(s.len(), 1 + 12);
        assert!(s.mo().is_strict_total_order_on(&s.writes()));
        assert!(s.eco().is_irreflexive());
    }

    #[test]
    fn workloads_parse() {
        assert_eq!(wide_workload(3).num_vars(), 3);
        assert_eq!(contended_workload(2).num_threads(), 2);
    }
}
