//! A text file format for litmus tests, so new shapes can be added and
//! run without recompiling.
//!
//! ```text
//! // name: MP-custom
//! // description: message passing with a twist
//! // expect-ra: forbidden
//! // expect-sc: forbidden
//! // exists: 2:r0=1 && 2:r1=0 && final:x=2
//! // max-events: 24
//! vars d f x;
//! thread t1 { d := 5; f :=R 1; x := 2; }
//! thread t2 { r0 <-A f; r1 <- d; }
//! ```
//!
//! Header lines are `// key: value` comments at the top of the file; the
//! remainder is a `c11-lang` DSL program. The `exists` clause is a
//! conjunction of `T:rN=V` (register of thread `T`) and `final:var=V`
//! (final value of a variable) conditions. `expect-ra` / `expect-sc` are
//! `allowed` or `forbidden`. Defaults: both `forbidden`, 24 events.

use crate::corpus::{Cond, LitmusTest, Verdict};

/// An error while parsing a `.litmus` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormatError {
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "litmus format error: {}", self.msg)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError { msg: msg.into() })
}

fn parse_verdict(v: &str) -> Result<Verdict, FormatError> {
    match v.trim() {
        "allowed" => Ok(Verdict::Allowed),
        "forbidden" => Ok(Verdict::Forbidden),
        other => err(format!("bad verdict {other:?} (allowed|forbidden)")),
    }
}

fn parse_cond(c: &str) -> Result<Cond, FormatError> {
    let c = c.trim();
    let (lhs, rhs) = c.split_once('=').ok_or_else(|| FormatError {
        msg: format!("condition {c:?} needs `=`"),
    })?;
    let val: u32 = rhs.trim().parse().map_err(|e| FormatError {
        msg: format!("bad value in {c:?}: {e}"),
    })?;
    let lhs = lhs.trim();
    if let Some(var) = lhs.strip_prefix("final:") {
        return Ok(Cond::FinalVar {
            var: var.trim().to_string(),
            val,
        });
    }
    let (t, r) = lhs.split_once(':').ok_or_else(|| FormatError {
        msg: format!("condition {c:?} needs `T:rN` or `final:var`"),
    })?;
    let thread: u8 = t.trim().parse().map_err(|e| FormatError {
        msg: format!("bad thread in {c:?}: {e}"),
    })?;
    let reg: u8 = r
        .trim()
        .strip_prefix('r')
        .ok_or_else(|| FormatError {
            msg: format!("register in {c:?} must be rN"),
        })?
        .parse()
        .map_err(|e| FormatError {
            msg: format!("bad register in {c:?}: {e}"),
        })?;
    Ok(Cond::Reg { thread, reg, val })
}

/// Parses a `.litmus` file (header comments + DSL program).
pub fn parse_litmus(src: &str) -> Result<LitmusTest, FormatError> {
    let mut name = String::from("unnamed");
    let mut description = String::new();
    let mut expect_ra = Verdict::Forbidden;
    let mut expect_sc = Verdict::Forbidden;
    let mut outcome: Option<Vec<Cond>> = None;
    let mut max_events = 24usize;
    let mut program_lines: Vec<&str> = Vec::new();
    let mut in_header = true;

    for line in src.lines() {
        let trimmed = line.trim();
        if in_header && trimmed.starts_with("//") {
            let body = trimmed.trim_start_matches('/').trim();
            if let Some((key, value)) = body.split_once(':') {
                match key.trim() {
                    "name" => name = value.trim().to_string(),
                    "description" => description = value.trim().to_string(),
                    "expect-ra" => expect_ra = parse_verdict(value)?,
                    "expect-sc" => expect_sc = parse_verdict(value)?,
                    "max-events" => {
                        max_events = value.trim().parse().map_err(|e| FormatError {
                            msg: format!("bad max-events: {e}"),
                        })?
                    }
                    "exists" => {
                        let conds: Result<Vec<Cond>, _> =
                            value.split("&&").map(parse_cond).collect();
                        outcome = Some(conds?);
                    }
                    _ => {} // unknown header keys are ignored (forward compat)
                }
                continue;
            }
            continue; // plain comment in header
        }
        if !trimmed.is_empty() {
            in_header = false;
        }
        program_lines.push(line);
    }
    let source = program_lines.join("\n");
    let outcome = match outcome {
        Some(o) if !o.is_empty() => o,
        _ => return err("missing or empty `// exists:` clause"),
    };
    // Validate the program eagerly so file errors surface at load time.
    c11_lang::parse_program(&source).map_err(|e| FormatError {
        msg: format!("program does not parse: {e}"),
    })?;
    Ok(LitmusTest {
        name,
        description,
        source,
        outcome,
        expect_ra,
        expect_sc,
        max_events,
    })
}

/// Loads a `.litmus` file from disk.
pub fn load_litmus_file(path: &std::path::Path) -> Result<LitmusTest, FormatError> {
    let src = std::fs::read_to_string(path).map_err(|e| FormatError {
        msg: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_litmus(&src)
}

/// Loads every `*.litmus` file in a directory (sorted by file name).
pub fn load_litmus_dir(dir: &std::path::Path) -> Result<Vec<LitmusTest>, FormatError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| FormatError {
            msg: format!("cannot read {}: {e}", dir.display()),
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_litmus_file(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "\
// name: MP-file
// description: message passing from a file
// expect-ra: forbidden
// expect-sc: forbidden
// exists: 2:r0=1 && 2:r1=0
vars d f;
thread t1 { d := 5; f :=R 1; }
thread t2 { r0 <-A f; r1 <- d; }
";

    #[test]
    fn parses_full_header() {
        let t = parse_litmus(MP).unwrap();
        assert_eq!(t.name, "MP-file");
        assert_eq!(t.expect_ra, Verdict::Forbidden);
        assert_eq!(
            t.outcome,
            vec![
                Cond::Reg {
                    thread: 2,
                    reg: 0,
                    val: 1
                },
                Cond::Reg {
                    thread: 2,
                    reg: 1,
                    val: 0
                }
            ]
        );
        // And it runs with the expected verdict.
        let r = crate::runner::run_test(&t);
        assert!(r.pass, "{r:?}");
    }

    #[test]
    fn final_var_conditions() {
        let src = "\
// name: coww
// expect-ra: forbidden
// expect-sc: forbidden
// exists: final:x=1
vars x;
thread t1 { x := 1; x := 2; }
";
        let t = parse_litmus(src).unwrap();
        assert_eq!(
            t.outcome,
            vec![Cond::FinalVar {
                var: "x".into(),
                val: 1
            }]
        );
        assert!(crate::runner::run_test(&t).pass);
    }

    #[test]
    fn missing_exists_rejected() {
        let src = "// name: x\nvars x;\nthread t { x := 1; }\n";
        assert!(parse_litmus(src).is_err());
    }

    #[test]
    fn bad_program_rejected_at_load() {
        let src = "// exists: 1:r0=1\nvars x;\nthread t { y := 1; }\n";
        let e = parse_litmus(src).unwrap_err();
        assert!(e.msg.contains("does not parse"));
    }

    #[test]
    fn bad_conditions_rejected() {
        for c in ["// exists: r0=1", "// exists: 1:x=1", "// exists: 1:r0"] {
            let src = format!("{c}\nvars x;\nthread t {{ x := 1; }}\n");
            assert!(parse_litmus(&src).is_err(), "{c}");
        }
    }

    #[test]
    fn defaults_applied() {
        let src = "// exists: 1:r0=0\nvars x;\nthread t { r0 <- x; }\n";
        let t = parse_litmus(src).unwrap();
        assert_eq!(t.name, "unnamed");
        assert_eq!(t.max_events, 24);
        assert_eq!(t.expect_sc, Verdict::Forbidden);
    }
}
