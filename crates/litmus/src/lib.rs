//! A litmus-test corpus for the RAR fragment, with expected verdicts under
//! the operational RA semantics and under the SC baseline.
//!
//! Each test is a program in the `c11-lang` DSL plus a conjunction of
//! observations over final registers / final variable values, and the
//! *expected* verdict (allowed / forbidden) for both models. The runner
//! explores the full (bounded) state space and compares.
//!
//! The corpus covers the standard weak-memory shapes the RAR fragment is
//! distinguished by: message passing (relaxed vs release-acquire), store
//! buffering, load buffering (excluded by NoThinAir), the coherence
//! shapes, IRIW (allowed under RA — it needs SC atomics to forbid), 2+2W,
//! WRC, and RMW-based variants.

pub mod corpus;
pub mod format;
pub mod runner;

pub use corpus::{corpus, Cond, LitmusTest, Verdict};
pub use format::{load_litmus_dir, load_litmus_file, parse_litmus, FormatError};
pub use runner::{
    outcome_holds_ra, outcome_holds_ra_orbit, outcome_holds_sc, outcome_holds_sc_orbit, run_corpus,
    run_test, run_test_backend, run_test_configured, LitmusResult,
};
