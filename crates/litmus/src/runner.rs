//! Evaluates litmus tests by exhaustive exploration under both models.

use crate::corpus::{Cond, LitmusTest, Verdict};
use c11_core::config::Config;
use c11_core::model::{RaModel, ScModel};
use c11_explore::{ExploreConfig, Explorer};
use c11_lang::{parse_program, Prog, RegId, ThreadId};

/// Result of running one test under both models.
#[derive(Clone, Debug)]
pub struct LitmusResult {
    /// Test name.
    pub name: String,
    /// Outcome observed under RA?
    pub observed_ra: bool,
    /// Outcome observed under SC?
    pub observed_sc: bool,
    /// Distinct RA configurations visited.
    pub states_ra: usize,
    /// Distinct SC configurations visited.
    pub states_sc: usize,
    /// Did RA exploration hit a bound? (A "forbidden" verdict is only
    /// sound when this is false.)
    pub truncated: bool,
    /// Verdicts match expectations?
    pub pass: bool,
}

fn reg_conds_hold(
    cfg_regs: &[(u8, u8, u32)],
    regs: &dyn Fn(ThreadId, RegId) -> Option<u32>,
) -> bool {
    cfg_regs
        .iter()
        .all(|&(t, r, v)| regs(ThreadId(t), RegId(r)) == Some(v))
}

fn outcome_holds_ra(test: &LitmusTest, prog: &Prog, cfg: &Config<RaModel>) -> bool {
    test.outcome.iter().all(|c| match c {
        Cond::Reg { thread, reg, val } => reg_conds_hold(&[(*thread, *reg, *val)], &|t, r| {
            cfg.regs.get(t.0 as usize - 1).map(|f| f.get(r))
        }),
        Cond::FinalVar { var, val } => {
            let v = prog.var(var).expect("known variable");
            cfg.mem.last(v).and_then(|w| cfg.mem.event(w).wrval()) == Some(*val)
        }
    })
}

fn outcome_holds_sc(test: &LitmusTest, prog: &Prog, cfg: &Config<ScModel>) -> bool {
    test.outcome.iter().all(|c| match c {
        Cond::Reg { thread, reg, val } => reg_conds_hold(&[(*thread, *reg, *val)], &|t, r| {
            cfg.regs.get(t.0 as usize - 1).map(|f| f.get(r))
        }),
        Cond::FinalVar { var, val } => {
            let v = prog.var(var).expect("known variable");
            cfg.mem.mem[v.0 as usize] == *val
        }
    })
}

/// Runs one test under both models.
pub fn run_test(test: &LitmusTest) -> LitmusResult {
    let prog = parse_program(&test.source).expect("corpus programs parse");
    let ra = Explorer::new(RaModel).explore(&prog, ExploreConfig::with_max_events(test.max_events));
    let observed_ra = ra.finals.iter().any(|c| outcome_holds_ra(test, &prog, c));
    let sc = Explorer::new(ScModel).explore(&prog, ExploreConfig::default());
    let observed_sc = sc.finals.iter().any(|c| outcome_holds_sc(test, &prog, c));
    let expect = |v: Verdict| v == Verdict::Allowed;
    let pass = observed_ra == expect(test.expect_ra)
        && observed_sc == expect(test.expect_sc)
        && (!ra.truncated || test.expect_ra == Verdict::Allowed);
    LitmusResult {
        name: test.name.clone(),
        observed_ra,
        observed_sc,
        states_ra: ra.unique,
        states_sc: sc.unique,
        truncated: ra.truncated,
        pass,
    }
}

/// Runs the whole corpus.
pub fn run_corpus() -> Vec<LitmusResult> {
    crate::corpus::corpus().iter().map(run_test).collect()
}

/// Renders results as an aligned text table (used by the example binary
/// and EXPERIMENTS.md).
pub fn render_table(results: &[LitmusResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>6}",
        "test", "RA", "SC", "RA-states", "SC-states", "pass"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>10} {:>10} {:>6}",
            r.name,
            if r.observed_ra { "observed" } else { "absent" },
            if r.observed_sc { "observed" } else { "absent" },
            r.states_ra,
            r.states_sc,
            if r.pass { "ok" } else { "FAIL" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_rlx_allows_stale_read() {
        let test = crate::corpus::corpus()
            .into_iter()
            .find(|t| t.name == "MP-rlx")
            .unwrap();
        let r = run_test(&test);
        assert!(r.observed_ra && !r.observed_sc && r.pass);
    }

    #[test]
    fn mp_ra_forbids_stale_read() {
        let test = crate::corpus::corpus()
            .into_iter()
            .find(|t| t.name == "MP-ra")
            .unwrap();
        let r = run_test(&test);
        assert!(!r.observed_ra && r.pass);
        assert!(!r.truncated);
    }
}
