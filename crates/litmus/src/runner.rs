//! Evaluates litmus tests by exhaustive exploration under both models.
//!
//! The runner is parameterised by [`ExploreBackend`]s, so verdicts can be
//! computed by the sequential reference engine or the parallel one
//! ([`run_test`] defaults to sequential for determinism).

use crate::corpus::{Cond, LitmusTest, Verdict};
use c11_core::config::Config;
use c11_core::model::{RaModel, ScModel};
use c11_explore::{ExploreBackend, ExploreConfig, SequentialBackend, Stats, SymClasses};
use c11_lang::{parse_program, Prog, RegId, ThreadId};
use std::time::Instant;

/// Result of running one test under both models, reported in the shared
/// [`Stats`] vocabulary.
#[derive(Clone, Debug)]
pub struct LitmusResult {
    /// Test name.
    pub name: String,
    /// Outcome observed under RA?
    pub observed_ra: bool,
    /// Outcome observed under SC?
    pub observed_sc: bool,
    /// RA exploration stats. A "forbidden" RA verdict is only sound when
    /// `ra.truncated` is false.
    pub ra: Stats,
    /// SC exploration stats.
    pub sc: Stats,
    /// Verdicts match expectations?
    pub pass: bool,
}

fn reg_conds_hold(
    cfg_regs: &[(u8, u8, u32)],
    regs: &dyn Fn(ThreadId, RegId) -> Option<u32>,
) -> bool {
    cfg_regs
        .iter()
        .all(|&(t, r, v)| regs(ThreadId(t), RegId(r)) == Some(v))
}

/// Does a terminated RA configuration exhibit the test's outcome?
pub fn outcome_holds_ra(test: &LitmusTest, prog: &Prog, cfg: &Config<RaModel>) -> bool {
    test.outcome.iter().all(|c| match c {
        Cond::Reg { thread, reg, val } => reg_conds_hold(&[(*thread, *reg, *val)], &|t, r| {
            cfg.regs.get(t.0 as usize - 1).map(|f| f.get(r))
        }),
        Cond::FinalVar { var, val } => {
            let v = prog.var(var).expect("known variable");
            cfg.mem.last(v).and_then(|w| cfg.mem.event(w).wrval()) == Some(*val)
        }
    })
}

/// Does a terminated SC configuration exhibit the test's outcome?
pub fn outcome_holds_sc(test: &LitmusTest, prog: &Prog, cfg: &Config<ScModel>) -> bool {
    test.outcome.iter().all(|c| match c {
        Cond::Reg { thread, reg, val } => reg_conds_hold(&[(*thread, *reg, *val)], &|t, r| {
            cfg.regs.get(t.0 as usize - 1).map(|f| f.get(r))
        }),
        Cond::FinalVar { var, val } => {
            let v = prog.var(var).expect("known variable");
            cfg.mem.mem[v.0 as usize] == *val
        }
    })
}

/// Does any orbit member of a terminated RA configuration exhibit the
/// test's outcome?
///
/// Under symmetry quotienting the explorer keeps one representative per
/// thread-relabelling orbit, so a register condition naming a specific
/// thread must be checked across every class relabelling of the
/// representative's register files ([`SymClasses::maps`]); `final:`
/// conditions read memory, which is orbit-invariant.
pub fn outcome_holds_ra_orbit(
    test: &LitmusTest,
    prog: &Prog,
    cfg: &Config<RaModel>,
    classes: Option<&SymClasses>,
) -> bool {
    let Some(classes) = classes else {
        return outcome_holds_ra(test, prog, cfg);
    };
    classes.maps().iter().any(|map| {
        test.outcome.iter().all(|c| match c {
            Cond::Reg { thread, reg, val } => {
                map.get(*thread as usize)
                    .and_then(|&t| cfg.regs.get(t as usize - 1))
                    .map(|f| f.get(RegId(*reg)))
                    == Some(*val)
            }
            Cond::FinalVar { var, val } => {
                let v = prog.var(var).expect("known variable");
                cfg.mem.last(v).and_then(|w| cfg.mem.event(w).wrval()) == Some(*val)
            }
        })
    })
}

/// Does any orbit member of a terminated SC configuration exhibit the
/// test's outcome? See [`outcome_holds_ra_orbit`].
pub fn outcome_holds_sc_orbit(
    test: &LitmusTest,
    prog: &Prog,
    cfg: &Config<ScModel>,
    classes: Option<&SymClasses>,
) -> bool {
    let Some(classes) = classes else {
        return outcome_holds_sc(test, prog, cfg);
    };
    classes.maps().iter().any(|map| {
        test.outcome.iter().all(|c| match c {
            Cond::Reg { thread, reg, val } => {
                map.get(*thread as usize)
                    .and_then(|&t| cfg.regs.get(t as usize - 1))
                    .map(|f| f.get(RegId(*reg)))
                    == Some(*val)
            }
            Cond::FinalVar { var, val } => {
                let v = prog.var(var).expect("known variable");
                cfg.mem.mem[v.0 as usize] == *val
            }
        })
    })
}

/// Runs one test under both models with the given exploration backends
/// and per-model exploration configs (callers that override the test's
/// own event bound — e.g. the api crate's `CheckRequest::bounds` — pass
/// their bounds here).
pub fn run_test_configured(
    test: &LitmusTest,
    ra_backend: &dyn ExploreBackend<RaModel>,
    sc_backend: &dyn ExploreBackend<ScModel>,
    cfg_ra: &ExploreConfig,
    cfg_sc: &ExploreConfig,
) -> LitmusResult {
    let prog = parse_program(&test.source).expect("corpus programs parse");
    let t0 = Instant::now();
    let ra = ra_backend.run(&RaModel, &prog, cfg_ra);
    let ra_stats = ra.stats(t0.elapsed());
    let observed_ra = ra
        .finals
        .iter()
        .any(|c| outcome_holds_ra_orbit(test, &prog, c, ra.sym_classes.as_ref()));
    let t0 = Instant::now();
    let sc = sc_backend.run(&ScModel, &prog, cfg_sc);
    let sc_stats = sc.stats(t0.elapsed());
    let observed_sc = sc
        .finals
        .iter()
        .any(|c| outcome_holds_sc_orbit(test, &prog, c, sc.sym_classes.as_ref()));
    let expect = |v: Verdict| v == Verdict::Allowed;
    let pass = observed_ra == expect(test.expect_ra)
        && observed_sc == expect(test.expect_sc)
        && (!ra.truncated || test.expect_ra == Verdict::Allowed);
    LitmusResult {
        name: test.name.clone(),
        observed_ra,
        observed_sc,
        ra: ra_stats,
        sc: sc_stats,
        pass,
    }
}

/// Runs one test under both models with the given backends, bounding RA
/// exploration at the test's own `max_events`.
pub fn run_test_backend(
    test: &LitmusTest,
    ra_backend: &dyn ExploreBackend<RaModel>,
    sc_backend: &dyn ExploreBackend<ScModel>,
) -> LitmusResult {
    let cfg_ra = ExploreConfig::default()
        .max_events(test.max_events)
        .record_traces(false);
    let cfg_sc = ExploreConfig::default().record_traces(false);
    run_test_configured(test, ra_backend, sc_backend, &cfg_ra, &cfg_sc)
}

/// Runs one test under both models (sequential reference backend).
pub fn run_test(test: &LitmusTest) -> LitmusResult {
    run_test_backend(test, &SequentialBackend, &SequentialBackend)
}

/// Runs the whole corpus.
pub fn run_corpus() -> Vec<LitmusResult> {
    crate::corpus::corpus().iter().map(run_test).collect()
}

/// Renders results as an aligned text table (used by the example binary
/// and EXPERIMENTS.md).
pub fn render_table(results: &[LitmusResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>6}",
        "test", "RA", "SC", "RA-states", "SC-states", "pass"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>10} {:>10} {:>6}",
            r.name,
            if r.observed_ra { "observed" } else { "absent" },
            if r.observed_sc { "observed" } else { "absent" },
            r.ra.unique,
            r.sc.unique,
            if r.pass { "ok" } else { "FAIL" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_explore::ParallelBackend;

    #[test]
    fn mp_rlx_allows_stale_read() {
        let test = crate::corpus::corpus()
            .into_iter()
            .find(|t| t.name == "MP-rlx")
            .unwrap();
        let r = run_test(&test);
        assert!(r.observed_ra && !r.observed_sc && r.pass);
    }

    #[test]
    fn mp_ra_forbids_stale_read() {
        let test = crate::corpus::corpus()
            .into_iter()
            .find(|t| t.name == "MP-ra")
            .unwrap();
        let r = run_test(&test);
        assert!(!r.observed_ra && r.pass);
        assert!(!r.ra.truncated);
    }

    #[test]
    fn parallel_backend_gives_same_verdicts() {
        let par = ParallelBackend::new(2);
        for test in crate::corpus::corpus().iter().take(4) {
            let seq = run_test(test);
            let p = run_test_backend(test, &par, &par);
            assert_eq!(p.observed_ra, seq.observed_ra, "{}", test.name);
            assert_eq!(p.observed_sc, seq.observed_sc, "{}", test.name);
            assert_eq!(p.pass, seq.pass, "{}", test.name);
            assert_eq!(p.ra.unique, seq.ra.unique, "{}", test.name);
        }
    }
}
