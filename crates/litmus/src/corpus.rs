//! The tests themselves.

use c11_lang::Val;

/// Expected verdict for an outcome under a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Some execution exhibits the outcome.
    Allowed,
    /// No execution exhibits the outcome.
    Forbidden,
}

/// One conjunct of an observation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Register `rN` of thread `T` ends with `val`.
    Reg {
        /// Thread (1-based).
        thread: u8,
        /// Register index.
        reg: u8,
        /// Expected value.
        val: Val,
    },
    /// Variable `var` ends with `val` (the mo-last write under RA; the
    /// store value under SC).
    FinalVar {
        /// Variable name.
        var: String,
        /// Expected value.
        val: Val,
    },
}

/// A litmus test: program, observation, expectations.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Short conventional name (MP, SB, LB, …).
    pub name: String,
    /// What the shape demonstrates.
    pub description: String,
    /// DSL source.
    pub source: String,
    /// Conjunction of final observations.
    pub outcome: Vec<Cond>,
    /// Expected verdict under the RA operational semantics.
    pub expect_ra: Verdict,
    /// Expected verdict under the SC baseline.
    pub expect_sc: Verdict,
    /// Event bound for exploration (straight-line tests never hit it).
    pub max_events: usize,
}

fn reg(thread: u8, reg_: u8, val: Val) -> Cond {
    Cond::Reg {
        thread,
        reg: reg_,
        val,
    }
}

/// The full corpus.
pub fn corpus() -> Vec<LitmusTest> {
    use Verdict::*;
    vec![
        LitmusTest {
            name: "MP-rlx".into(),
            description: "message passing, all relaxed: stale data readable".into(),
            source: "vars d f;
                     thread t1 { d := 5; f := 1; }
                     thread t2 { r0 <- f; r1 <- d; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(2, 1, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "MP-ra".into(),
            description: "message passing, release/acquire: publication works".into(),
            source: "vars d f;
                     thread t1 { d := 5; f :=R 1; }
                     thread t2 { r0 <-A f; r1 <- d; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(2, 1, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "MP-rel-rlx".into(),
            description: "release write but relaxed read: no synchronisation".into(),
            source: "vars d f;
                     thread t1 { d := 5; f :=R 1; }
                     thread t2 { r0 <- f; r1 <- d; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(2, 1, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "SB-rlx".into(),
            description: "store buffering, relaxed: both reads may miss".into(),
            source: "vars x y;
                     thread t1 { x := 1; r0 <- y; }
                     thread t2 { y := 1; r0 <- x; }"
                .into(),
            outcome: vec![reg(1, 0, 0), reg(2, 0, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "SB-ra".into(),
            description: "store buffering with RA annotations: still allowed \
                          (RA is weaker than SC; forbidding SB needs SC atomics)"
                .into(),
            source: "vars x y;
                     thread t1 { x :=R 1; r0 <-A y; }
                     thread t2 { y :=R 1; r0 <-A x; }"
                .into(),
            outcome: vec![reg(1, 0, 0), reg(2, 0, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "SB-rmw".into(),
            description: "store buffering via RMWs: updates are RA, outcome \
                          remains allowed (cross-variable)"
                .into(),
            source: "vars x y;
                     thread t1 { x.swap(1); r0 <- y; }
                     thread t2 { y.swap(1); r0 <- x; }"
                .into(),
            outcome: vec![reg(1, 0, 0), reg(2, 0, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "LB".into(),
            description: "load buffering: excluded by NoThinAir (sb ∪ rf acyclic)".into(),
            source: "vars x y;
                     thread t1 { r0 <- x; y := 1; }
                     thread t2 { r0 <- y; x := 1; }"
                .into(),
            outcome: vec![reg(1, 0, 1), reg(2, 0, 1)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "CoRR".into(),
            description: "read-read coherence: values cannot go backwards in mo".into(),
            source: "vars x;
                     thread t1 { x := 1; x := 2; }
                     thread t2 { r0 <- x; r1 <- x; }"
                .into(),
            outcome: vec![reg(2, 0, 2), reg(2, 1, 1)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "CoRR-race".into(),
            description: "read-read coherence with racing writers".into(),
            source: "vars x;
                     thread t1 { x := 1; }
                     thread t2 { x := 2; }
                     thread t3 { r0 <- x; r1 <- x; r2 <- x; }"
                .into(),
            outcome: vec![reg(3, 0, 1), reg(3, 1, 2), reg(3, 2, 1)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "CoWR".into(),
            description: "write-read coherence: a thread cannot read a value \
                          older than its own write"
                .into(),
            source: "vars x;
                     thread t1 { x := 1; r0 <- x; }"
                .into(),
            outcome: vec![reg(1, 0, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "IRIW-ra".into(),
            description: "independent reads of independent writes, all RA: \
                          threads 3 and 4 may disagree on the write order \
                          (forbidding IRIW needs SC atomics)"
                .into(),
            source: "vars x y;
                     thread t1 { x :=R 1; }
                     thread t2 { y :=R 1; }
                     thread t3 { r0 <-A x; r1 <-A y; }
                     thread t4 { r0 <-A y; r1 <-A x; }"
                .into(),
            outcome: vec![reg(3, 0, 1), reg(3, 1, 0), reg(4, 0, 1), reg(4, 1, 0)],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "2+2W".into(),
            description: "two threads write both variables in opposite order: \
                          the 'crossed final values' are allowed relaxed"
                .into(),
            source: "vars x y;
                     thread t1 { x := 1; y := 2; }
                     thread t2 { y := 1; x := 2; }"
                .into(),
            outcome: vec![
                Cond::FinalVar {
                    var: "x".into(),
                    val: 1,
                },
                Cond::FinalVar {
                    var: "y".into(),
                    val: 1,
                },
            ],
            expect_ra: Allowed,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "WRC-ra".into(),
            description: "write-to-read causality with a release chain: the \
                          final read cannot miss the original write"
                .into(),
            source: "vars x y;
                     thread t1 { x := 1; }
                     thread t2 { r0 <- x; y :=R r0; }
                     thread t3 { r0 <-A y; r1 <- x; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(3, 0, 1), reg(3, 1, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "MP-swap".into(),
            description: "message passing where the flag is raised by an RMW: \
                          updates synchronise like releases"
                .into(),
            source: "vars d f;
                     thread t1 { d := 5; f.swap(1); }
                     thread t2 { r0 <-A f; r1 <- d; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(2, 1, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "RMW-excl".into(),
            description: "two RMWs on one variable cannot both read the \
                          initial value (update atomicity)"
                .into(),
            source: "vars x;
                     thread t1 { x.swap(1); r0 <- x; }
                     thread t2 { x.swap(2); r0 <- x; }"
                .into(),
            outcome: vec![Cond::FinalVar {
                var: "x".into(),
                val: 0,
            }],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "RMW-atomic".into(),
            description: "two exchanges on one variable cannot both see the \
                          initial value (RMW atomicity via covered writes)"
                .into(),
            source: "vars x;
                     thread t1 { r0 <- x.swap(1); }
                     thread t2 { r0 <- x.swap(2); }"
                .into(),
            outcome: vec![reg(1, 0, 0), reg(2, 0, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "ISA2".into(),
            description: "release chains compose: x published through two \
                          release/acquire hops stays visible"
                .into(),
            source: "vars x y z;
                     thread t1 { x := 1; y :=R 1; }
                     thread t2 { r0 <-A y; z :=R r0; }
                     thread t3 { r1 <-A z; r2 <- x; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(3, 1, 1), reg(3, 2, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "S".into(),
            description: "write-write coherence through hb: the hb-later \
                          write cannot be mo-earlier"
                .into(),
            source: "vars x y;
                     thread t1 { x := 2; y :=R 1; }
                     thread t2 { r0 <-A y; x := 1; }"
                .into(),
            outcome: vec![
                reg(2, 0, 1),
                Cond::FinalVar {
                    var: "x".into(),
                    val: 2,
                },
            ],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "CoWW".into(),
            description: "write-write coherence within a thread: sb forces mo".into(),
            source: "vars x;
                     thread t1 { x := 1; x := 2; }"
                .into(),
            outcome: vec![Cond::FinalVar {
                var: "x".into(),
                val: 1,
            }],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
        LitmusTest {
            name: "R-own-write".into(),
            description: "a thread reading its own unordered write sees no \
                          synchronisation: allowed under both models"
                .into(),
            source: "vars x y;
                     thread t1 { x := 1; y :=R 1; }
                     thread t2 { y := 2; r0 <-A y; r1 <- x; }"
                .into(),
            outcome: vec![reg(2, 0, 2), reg(2, 1, 0)],
            expect_ra: Allowed,
            expect_sc: Allowed,
            max_events: 24,
        },
        LitmusTest {
            name: "R-ra".into(),
            description: "the R shape: release write vs relaxed write race, \
                          then an acquire read on the second thread"
                .into(),
            source: "vars x y;
                     thread t1 { x := 1; y :=R 1; }
                     thread t2 { y := 2; r0 <-A y; r1 <- x; }"
                .into(),
            outcome: vec![reg(2, 0, 1), reg(2, 1, 0)],
            expect_ra: Forbidden,
            expect_sc: Forbidden,
            max_events: 24,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_well_formed() {
        let tests = corpus();
        assert!(tests.len() >= 12);
        let mut names: Vec<_> = tests.iter().map(|t| t.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tests.len(), "duplicate test names");
        for t in &tests {
            c11_lang::parse_program(&t.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", t.name));
            assert!(!t.outcome.is_empty());
        }
    }
}
