//! The one front door: a `CheckRequest → CheckReport` session API over
//! every engine in the workspace.
//!
//! The paper's value is *one semantics answered many ways* — exhaustive RA
//! exploration, the SC baseline, invariant proofs, litmus verdicts. This
//! crate gives those ways a single structured request/response surface:
//!
//! ```
//! use c11_api::{CheckReport, CheckRequest, Engine, ModelChoice, Mode};
//!
//! let report = CheckRequest::program(
//!     "vars d f;
//!      thread t1 { d := 5; f :=R 1; }
//!      thread t2 { r0 <-A f; r1 <- d; }",
//! )
//! .model(ModelChoice::Ra)
//! .engine(Engine::Parallel { workers: 2 })
//! .mode(Mode::Outcomes)
//! .run()
//! .unwrap();
//!
//! let CheckReport::Outcomes(o) = &report else { unreachable!() };
//! assert!(!o.stats.truncated);
//! assert!(report.to_json().starts_with("{\"schema\":\"c11check/v1\""));
//! ```
//!
//! Every run produces a [`CheckReport`] carrying the shared
//! [`Stats`] vocabulary and a hand-rolled, offline-safe
//! [`CheckReport::to_json`] (schema documented in the README).

pub mod batch;
pub mod json;
pub mod net;
pub(crate) mod persist;
pub mod session;

pub use batch::{BatchReport, BatchRequest, BatchStats};
pub use session::{JobId, Session, SessionConfig, SessionStats};

use c11_axiomatic::axioms::is_valid;
use c11_core::config::Config;
use c11_core::dot::to_dot;
use c11_core::fingerprint::{combine128, fingerprint_prog, hash128_of};
use c11_core::model::{MemoryModel, PreExecutionModel, RaModel, ScModel};
use c11_explore::{
    AnyBackend, Budget, ExploreBackend, ExploreConfig, ExploreResult, Interrupt, RegSnapshot, Stats,
};
pub use c11_explore::{Engine, Reduction, StoreKind, StoreStats};
use c11_lang::step::RegFile;
use c11_lang::{parse_program, Prog, RegId, ThreadId, Val};
use c11_litmus::{run_test_configured, LitmusTest, Verdict};
use json::Json;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which memory model answers the request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ModelChoice {
    /// The paper's operational RA semantics (§3).
    #[default]
    Ra,
    /// The sequentially consistent baseline (§5's "conventional setting").
    Sc,
    /// The pre-execution semantics (§4.1; reads return any universe value).
    PreExecution,
}

impl ModelChoice {
    fn as_str(&self) -> &'static str {
        match self {
            ModelChoice::Ra => "ra",
            ModelChoice::Sc => "sc",
            ModelChoice::PreExecution => "pre-execution",
        }
    }
}

/// Exploration bounds, mirroring [`ExploreConfig`]'s knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Bounds {
    /// Stop expanding states with this many events (spin-loop bound).
    pub max_events: usize,
    /// Hard cap on distinct configurations visited.
    pub max_states: usize,
    /// BFS depth cap (store-based models whose states do not grow).
    pub max_depth: usize,
    /// Which visited-store backend deduplicates configurations.
    pub store: StoreKind,
    /// Quotient visited states by thread-permutation symmetry. Changes
    /// `unique`/`generated` counts (that is the point); verdicts and
    /// outcome multisets are unchanged. Ignored by models without exact
    /// relabelling support.
    pub symmetry: bool,
}

impl Default for Bounds {
    fn default() -> Self {
        let d = ExploreConfig::default();
        Bounds {
            max_events: d.max_events,
            max_states: d.max_states,
            max_depth: d.max_depth,
            store: d.store,
            symmetry: d.symmetry,
        }
    }
}

impl Bounds {
    /// Sets the event bound (chainable).
    pub fn max_events(mut self, n: usize) -> Self {
        self.max_events = n;
        self
    }

    /// Sets the state cap (chainable).
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Sets the depth bound (chainable).
    pub fn max_depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Selects the visited-store backend (chainable).
    pub fn store(mut self, k: StoreKind) -> Self {
        self.store = k;
        self
    }

    /// Enables symmetry quotienting (chainable).
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    fn explore_config(&self) -> ExploreConfig {
        ExploreConfig::default()
            .max_events(self.max_events)
            .max_states(self.max_states)
            .max_depth(self.max_depth)
            .store(self.store)
            .symmetry(self.symmetry)
    }
}

/// The legacy single-axis backend spelling, kept one deprecation cycle
/// as sugar over the [`Engine`] × [`Reduction`] pair that replaced it
/// (see [`CheckRequest::engine`] / [`CheckRequest::reduction`]).
///
/// Exhaustive selections (everything reachable through this enum)
/// produce identical reports for the same request (pinned corpus-wide
/// by the test suite) — they differ only in how much work it takes.
/// Sole exception: a search cut by the `max_states` safety cap keeps an
/// engine-dependent prefix of the state space (exploration order
/// differs across engines), so cap-truncated reports agree on
/// `truncated` but not necessarily on the surviving outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The sequential BFS reference engine (deterministic).
    #[default]
    Sequential,
    /// The contention-free parallel engine (worker-private queues, a
    /// striped lock-free visited filter, per-worker arenas).
    Parallel {
        /// Worker threads (clamped to ≥ 1).
        workers: usize,
    },
    /// The sleep-set dynamic-partial-order-reduction engine: same states
    /// and verdicts as [`Backend::Sequential`], strictly fewer generated
    /// transitions on programs with independent steps.
    #[deprecated(
        since = "0.10.0",
        note = "spell it as Engine::Sequential + Reduction::SleepSet \
                (CheckRequest::engine / CheckRequest::reduction)"
    )]
    Dpor,
}

impl Backend {
    /// The [`Engine`] axis this legacy spelling names.
    pub fn engine(&self) -> Engine {
        #[allow(deprecated)]
        match self {
            Backend::Sequential | Backend::Dpor => Engine::Sequential,
            Backend::Parallel { workers } => Engine::Parallel { workers: *workers },
        }
    }

    /// The [`Reduction`] axis this legacy spelling names.
    pub fn reduction(&self) -> Reduction {
        #[allow(deprecated)]
        match self {
            Backend::Dpor => Reduction::SleepSet,
            _ => Reduction::None,
        }
    }
}

/// A model-agnostic view of a configuration for invariant checking:
/// program counters and register files (the vocabulary pc-style mutual
/// exclusion properties are written in).
pub struct ConfigView<'a> {
    pcs: Vec<Option<u32>>,
    regs: &'a [RegFile],
}

impl<'a> ConfigView<'a> {
    fn of<M: MemoryModel>(c: &'a Config<M>) -> ConfigView<'a> {
        ConfigView {
            pcs: c.thread_ids().map(|t| c.pc(t)).collect(),
            regs: &c.regs,
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.pcs.len()
    }

    /// Program counter of thread `t` (label of its leftmost active
    /// statement), `None` when terminated/unlabelled.
    pub fn pc(&self, t: ThreadId) -> Option<u32> {
        self.pcs.get(t.0 as usize - 1).copied().flatten()
    }

    /// Current value of register `r` of thread `t`.
    pub fn reg(&self, t: ThreadId, r: RegId) -> Option<Val> {
        self.regs.get(t.0 as usize - 1).map(|f| f.get(r))
    }
}

/// The shared predicate type behind an [`Invariant`].
pub(crate) type PredFn = Arc<dyn Fn(&ConfigView) -> bool + Send + Sync>;

/// A named predicate over [`ConfigView`]s, checked on every reachable
/// configuration in [`Mode::Invariant`].
#[derive(Clone)]
pub struct Invariant {
    name: String,
    pred: PredFn,
}

impl Invariant {
    /// The shared predicate, for result-cache keys: clones of one
    /// [`Invariant`] share the `Arc`, so they (and only they) are
    /// guaranteed to be the same predicate — names alone are not. The
    /// cache key holds the `Arc` itself (not just its address), keeping
    /// the allocation alive so a recycled heap address can never alias
    /// a dropped predicate's cached report.
    pub(crate) fn shared_pred(&self) -> PredFn {
        self.pred.clone()
    }
}

impl Invariant {
    /// A named invariant from a predicate.
    pub fn new(
        name: impl Into<String>,
        pred: impl Fn(&ConfigView) -> bool + Send + Sync + 'static,
    ) -> Invariant {
        Invariant {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }

    /// The invariant's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Invariant({:?})", self.name)
    }
}

/// What question the request asks.
#[derive(Clone, Debug, Default)]
pub enum Mode {
    /// Enumerate final register outcomes (with optional witness traces).
    #[default]
    Outcomes,
    /// Count distinct configurations only (cheapest; sweeps).
    CountOnly,
    /// Check a named invariant on every reachable configuration.
    Invariant(Invariant),
    /// Evaluate a litmus test's expected verdicts under RA and SC
    /// (requires [`CheckRequest::litmus`] input).
    LitmusVerdict,
}

/// How a request can fail before producing a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The program source failed to parse.
    Parse(String),
    /// The mode/input combination is not supported.
    Unsupported(String),
    /// A session-level failure (unknown job id, collected twice, …).
    Session(String),
    /// The session's submission queue is full ([`SessionConfig`]'s
    /// `max_queue_depth`); the request was rejected, not queued. Retry
    /// after draining — nothing about the request itself is wrong.
    Overloaded,
    /// The job was cancelled while a waiter was blocked on it (a report
    /// that was *computed* under a cancelled budget comes back as a
    /// `"cancelled"`-status report instead, with partial stats).
    Cancelled,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "parse error: {e}"),
            CheckError::Unsupported(e) => write!(f, "unsupported request: {e}"),
            CheckError::Session(e) => write!(f, "session error: {e}"),
            CheckError::Overloaded => write!(f, "overloaded: submission queue is full"),
            CheckError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for CheckError {}

/// A program input: source text (parsed by [`CheckRequest::run`]) or an
/// already-parsed [`Prog`].
#[derive(Clone, Debug)]
pub enum ProgramInput {
    /// DSL source text.
    Source(String),
    /// A parsed program.
    Parsed(Prog),
}

impl From<&str> for ProgramInput {
    fn from(s: &str) -> ProgramInput {
        ProgramInput::Source(s.to_string())
    }
}

impl From<String> for ProgramInput {
    fn from(s: String) -> ProgramInput {
        ProgramInput::Source(s)
    }
}

impl From<Prog> for ProgramInput {
    fn from(p: Prog) -> ProgramInput {
        ProgramInput::Parsed(p)
    }
}

#[derive(Clone, Debug)]
enum Input {
    Program(ProgramInput),
    Litmus(LitmusTest),
}

/// A checking session request — the builder every consumer (CLI, tests,
/// examples, future batch service) goes through.
#[derive(Clone, Debug)]
pub struct CheckRequest {
    input: Input,
    model: ModelChoice,
    bounds: Bounds,
    engine: Engine,
    reduction: Reduction,
    mode: Mode,
    traces: Option<bool>,
    dot: usize,
    timeout: Option<Duration>,
}

impl CheckRequest {
    /// A request over a program (source text or parsed [`Prog`]).
    pub fn program(p: impl Into<ProgramInput>) -> CheckRequest {
        CheckRequest {
            input: Input::Program(p.into()),
            model: ModelChoice::default(),
            bounds: Bounds::default(),
            engine: Engine::default(),
            reduction: Reduction::default(),
            mode: Mode::default(),
            traces: None,
            dot: 0,
            timeout: None,
        }
    }

    /// A request over a litmus test. The test's event bound seeds
    /// `bounds.max_events` (override with [`CheckRequest::bounds`]).
    pub fn litmus(test: LitmusTest) -> CheckRequest {
        let bounds = Bounds::default().max_events(test.max_events);
        CheckRequest {
            input: Input::Litmus(test),
            model: ModelChoice::default(),
            bounds,
            engine: Engine::default(),
            reduction: Reduction::default(),
            mode: Mode::LitmusVerdict,
            traces: None,
            dot: 0,
            timeout: None,
        }
    }

    /// Selects the memory model (ignored by [`Mode::LitmusVerdict`], which
    /// always contrasts RA against SC).
    pub fn model(mut self, m: ModelChoice) -> Self {
        self.model = m;
        self
    }

    /// Sets the exploration bounds.
    pub fn bounds(mut self, b: Bounds) -> Self {
        self.bounds = b;
        self
    }

    /// Selects the visited-store backend (sugar for editing
    /// [`CheckRequest::bounds`]; part of the cache key).
    pub fn store(mut self, k: StoreKind) -> Self {
        self.bounds.store = k;
        self
    }

    /// Enables symmetry quotienting (sugar for editing
    /// [`CheckRequest::bounds`]; part of the cache key).
    pub fn symmetry(mut self, on: bool) -> Self {
        self.bounds.symmetry = on;
        self
    }

    /// Selects the exploration engine (who walks the state space).
    pub fn engine(mut self, e: Engine) -> Self {
        self.engine = e;
        self
    }

    /// Selects the reduction layered on the engine (how much of the
    /// state space the walk may skip). [`Reduction::SourceSet`] switches
    /// the report to the finals-only contract: verdicts, final-snapshot
    /// multisets and violations are identical to the sequential
    /// engine's, while `unique`/`generated` are intentionally smaller
    /// (surfaced in the report's `"reduction"` block).
    pub fn reduction(mut self, r: Reduction) -> Self {
        self.reduction = r;
        self
    }

    /// Selects engine and reduction through the legacy [`Backend`]
    /// spelling — sugar for [`CheckRequest::engine`] +
    /// [`CheckRequest::reduction`], kept one deprecation cycle.
    pub fn backend(mut self, b: Backend) -> Self {
        self.engine = b.engine();
        self.reduction = b.reduction();
        self
    }

    /// Selects the question to answer.
    pub fn mode(mut self, m: Mode) -> Self {
        self.mode = m;
        self
    }

    /// Requests (or suppresses) traces: witness schedules per outcome in
    /// [`Mode::Outcomes`], counterexample traces in [`Mode::Invariant`]
    /// (on by default there).
    pub fn traces(mut self, on: bool) -> Self {
        self.traces = Some(on);
        self
    }

    /// Renders up to `n` final executions as DOT (event-based models).
    pub fn dot(mut self, n: usize) -> Self {
        self.dot = n;
        self
    }

    /// Caps the exploration's wall-clock time, measured from when compute
    /// starts (queue wait excluded). A tripped deadline yields a normal
    /// report with status `"timed_out"` and sane partial stats — not an
    /// error. Overrides the session's `job_timeout` when tighter.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// Runs the request on a throwaway [`Session`], inline on the calling
    /// thread (no pool threads are spawned, no cache outlives the call).
    ///
    /// This one-shot form is kept for one deprecation cycle as
    /// convenience sugar; consumers issuing more than one request should
    /// hold a [`Session`] and get result caching, job scheduling and
    /// batch submission for free.
    pub fn run(self) -> Result<CheckReport, CheckError> {
        Session::new(SessionConfig::default()).run(self)
    }

    /// Parses and validates the request into its executable [`Resolved`]
    /// form. The input is parsed exactly once (the session fingerprints
    /// the parse result for its cache) and mode/input mismatches are
    /// rejected here, so [`Resolved::compute`] cannot fail.
    pub(crate) fn resolve(self) -> Result<Resolved, CheckError> {
        let parse = |src: &str| parse_program(src).map_err(|e| CheckError::Parse(e.to_string()));
        let input = match (self.input, matches!(self.mode, Mode::LitmusVerdict)) {
            (Input::Program(_), true) => {
                return Err(CheckError::Unsupported(
                    "LitmusVerdict mode needs CheckRequest::litmus input".to_string(),
                ));
            }
            (Input::Litmus(test), true) => {
                let prog = parse(&test.source)?;
                ResolvedInput::Litmus { test, prog }
            }
            (Input::Program(ProgramInput::Parsed(p)), false) => ResolvedInput::Program(p),
            (Input::Program(ProgramInput::Source(src)), false) => {
                ResolvedInput::Program(parse(&src)?)
            }
            (Input::Litmus(test), false) => ResolvedInput::Program(parse(&test.source)?),
        };
        // Reductions are sequential algorithms: a parallel engine cannot
        // host one, and silently running sequentially would misreport
        // what the user asked for.
        if matches!(self.engine, Engine::Parallel { .. }) && self.reduction != Reduction::None {
            return Err(CheckError::Unsupported(format!(
                "the parallel engine cannot run a {} reduction; use the sequential engine",
                self.reduction.kind_str()
            )));
        }
        // Invariants quantify over every reachable configuration; the
        // source-set reduction's finals-only contract cannot answer
        // them, so fall back to the exhaustive sleep-set reduction.
        let reduction = match (&self.mode, self.reduction) {
            (Mode::Invariant(_), Reduction::SourceSet) => Reduction::SleepSet,
            (_, r) => r,
        };
        Ok(Resolved {
            input,
            model: self.model,
            bounds: self.bounds,
            engine: self.engine,
            reduction,
            mode: self.mode,
            traces: self.traces,
            dot: self.dot,
            timeout: self.timeout,
        })
    }
}

/// A borrowed per-configuration hook (validity self-check, DOT renderer)
/// passed into the monomorphised run.
type ConfigFn<'a, M, R> = &'a dyn Fn(&Config<M>) -> R;

/// A request after parsing and validation — the unit the [`Session`]
/// fingerprints, caches, schedules and executes.
pub(crate) struct Resolved {
    input: ResolvedInput,
    pub(crate) model: ModelChoice,
    pub(crate) bounds: Bounds,
    pub(crate) engine: Engine,
    pub(crate) reduction: Reduction,
    pub(crate) mode: Mode,
    pub(crate) traces: Option<bool>,
    pub(crate) dot: usize,
    pub(crate) timeout: Option<Duration>,
}

enum ResolvedInput {
    Program(Prog),
    Litmus { test: LitmusTest, prog: Prog },
}

impl Resolved {
    fn prog(&self) -> &Prog {
        match &self.input {
            ResolvedInput::Program(p) => p,
            ResolvedInput::Litmus { prog, .. } => prog,
        }
    }

    /// Number of threads of the underlying program (the session's
    /// small-vs-large scheduling signal).
    pub(crate) fn threads(&self) -> usize {
        self.prog().threads.len()
    }

    /// The 128-bit input identity the session cache keys on: the parsed
    /// program's fingerprint (formatting-insensitive), plus — for litmus
    /// verdicts — the observation and expectations the report embeds.
    pub(crate) fn fingerprint(&self) -> u128 {
        match &self.input {
            ResolvedInput::Program(p) => fingerprint_prog(p),
            ResolvedInput::Litmus { test, prog } => combine128(&[
                fingerprint_prog(prog),
                hash128_of(&(&test.name, &test.outcome, test.expect_ra, test.expect_sc)),
            ]),
        }
    }

    /// Executes the request and produces its report. Infallible: every
    /// error surface lives in [`CheckRequest::resolve`].
    ///
    /// `token` is the job's cancel token (unlimited for one-shot runs);
    /// the request's `timeout` is stamped onto it *here*, so the deadline
    /// measures compute time, not queue wait. A tripped budget yields a
    /// `"timed_out"`/`"cancelled"` report with partial stats.
    pub(crate) fn compute(&self, token: &Budget) -> CheckReport {
        let budget = match self.timeout {
            Some(t) => token.with_deadline_at(Instant::now() + t),
            None => token.clone(),
        };
        let meta = Meta {
            model: self.model,
            engine: self.engine,
            reduction: self.reduction,
            cache_hit: false,
        };
        if let Mode::LitmusVerdict = self.mode {
            let ResolvedInput::Litmus { test, .. } = &self.input else {
                unreachable!("resolve() pairs LitmusVerdict with litmus input");
            };
            // The request's bounds (seeded from the test's own event
            // bound in `CheckRequest::litmus`, overridable via
            // `.bounds(..)`) govern both explorations.
            let cfg = self
                .bounds
                .explore_config()
                .record_traces(false)
                .budget(budget);
            let be = AnyBackend {
                engine: self.engine,
                reduction: self.reduction,
            };
            let result = run_test_configured(test, &be, &be, &cfg, &cfg);
            return CheckReport::Litmus(LitmusVerdictReport {
                meta,
                name: result.name.clone(),
                expect_ra: test.expect_ra,
                expect_sc: test.expect_sc,
                observed_ra: result.observed_ra,
                observed_sc: result.observed_sc,
                ra: result.ra,
                sc: result.sc,
                pass: result.pass,
            });
        }
        let prog = self.prog();
        match self.model {
            ModelChoice::Ra => self.run_on(
                meta,
                &budget,
                &RaModel,
                prog,
                Some(&|c: &Config<RaModel>| is_valid(&c.mem)),
                Some(&|c: &Config<RaModel>| to_dot(&c.mem, &prog.var_names)),
            ),
            ModelChoice::Sc => self.run_on(meta, &budget, &ScModel, prog, None, None),
            ModelChoice::PreExecution => {
                let model = PreExecutionModel::for_program(prog);
                let dot = |c: &Config<PreExecutionModel>| to_dot(&c.mem, &prog.var_names);
                self.run_on(meta, &budget, &model, prog, None, Some(&dot))
            }
        }
    }

    fn run_on<M>(
        &self,
        meta: Meta,
        budget: &Budget,
        model: &M,
        prog: &Prog,
        valid: Option<ConfigFn<'_, M, bool>>,
        dot: Option<ConfigFn<'_, M, String>>,
    ) -> CheckReport
    where
        M: MemoryModel + Sync,
        M::State: Send + Sync,
    {
        let backend = AnyBackend {
            engine: self.engine,
            reduction: self.reduction,
        };
        match &self.mode {
            Mode::LitmusVerdict => unreachable!("handled before model dispatch"),
            Mode::CountOnly => {
                let cfg = self
                    .bounds
                    .explore_config()
                    .record_traces(false)
                    .budget(budget.clone());
                let t0 = Instant::now();
                let res = backend.run_invariant(model, prog, &cfg, &|_| true);
                CheckReport::Count(CountReport {
                    meta,
                    stats: res.stats(t0.elapsed()),
                })
            }
            Mode::Outcomes => {
                let witness = self.traces.unwrap_or(false);
                let cfg = self
                    .bounds
                    .explore_config()
                    .record_traces(false)
                    .witness_traces(witness)
                    .budget(budget.clone());
                let t0 = Instant::now();
                let res = backend.run_invariant(model, prog, &cfg, &|_| true);
                let stats = res.stats(t0.elapsed());
                let invalid_finals = valid
                    .map(|v| res.finals.iter().filter(|c| !v(c)).count())
                    .unwrap_or(0);
                let dot = dot
                    .map(|d| res.finals.iter().take(self.dot).map(d).collect())
                    .unwrap_or_default();
                CheckReport::Outcomes(OutcomesReport {
                    meta,
                    stats,
                    outcomes: aggregate_outcomes(&res, prog, witness),
                    invalid_finals,
                    dot,
                })
            }
            Mode::Invariant(inv) => {
                let cfg = self
                    .bounds
                    .explore_config()
                    .record_traces(self.traces.unwrap_or(true))
                    .budget(budget.clone());
                let pred = inv.pred.clone();
                let adapter = move |c: &Config<M>| pred(&ConfigView::of(c));
                let t0 = Instant::now();
                let res = backend.run_invariant(model, prog, &cfg, &adapter);
                let stats = res.stats(t0.elapsed());
                let violations = res
                    .violations
                    .iter()
                    .map(|(c, trace)| ViolationRow {
                        pcs: c.thread_ids().map(|t| c.pc(t)).collect(),
                        trace: trace.iter().map(|s| s.render(prog)).collect(),
                    })
                    .collect();
                CheckReport::Invariant(InvariantReport {
                    meta,
                    stats,
                    invariant: inv.name.clone(),
                    holds: res.holds(),
                    violations,
                })
            }
        }
    }
}

/// Aggregates the finals into a deterministic multiset of outcome rows
/// (sorted by register values, so sequential and parallel backends emit
/// identical reports).
fn aggregate_outcomes<M: MemoryModel>(
    res: &ExploreResult<M>,
    prog: &Prog,
    witness: bool,
) -> Vec<OutcomeRow> {
    let mut map: BTreeMap<RegSnapshot, (usize, Option<Vec<String>>)> = BTreeMap::new();
    for (i, snap) in res.final_snapshots().into_iter().enumerate() {
        let entry = map.entry(snap).or_insert((0, None));
        entry.0 += 1;
        if witness && entry.1.is_none() {
            if let Some(trace) = res.final_traces.get(i) {
                entry.1 = Some(trace.iter().map(|s| s.render(prog)).collect());
            }
        }
    }
    map.into_iter()
        .map(|(snap, (count, witness))| OutcomeRow {
            count,
            threads: (1..=snap.num_threads() as u8)
                .map(|t| snap.thread_regs(ThreadId(t)))
                .collect(),
            witness,
        })
        .collect()
}

/// What the report was computed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Meta {
    /// The memory model.
    pub model: ModelChoice,
    /// The exploration engine.
    pub engine: Engine,
    /// The reduction layered on it.
    pub reduction: Reduction,
    /// `true` iff this report was served from a [`Session`]'s result
    /// cache instead of a fresh exploration. A cached report is the
    /// originally-computed one verbatim (including its `wall_micros` and
    /// the engine that computed it) with only this flag flipped.
    pub cache_hit: bool,
}

impl Meta {
    /// The report's `"backend"` block: the engine that did the walking.
    fn backend_json(&self) -> Json {
        match self.engine {
            Engine::Sequential => Json::obj(vec![("kind", Json::str("sequential"))]),
            Engine::Parallel { workers } => Json::obj(vec![
                ("kind", Json::str("parallel")),
                ("workers", Json::from(workers.max(1))),
            ]),
        }
    }

    /// The report's `"reduction"` block. Only reduced runs carry the
    /// key — reduction-free reports stay byte-identical to previous
    /// schema emissions.
    fn reduction_json(&self) -> Option<Json> {
        match self.reduction {
            Reduction::None => None,
            r => Some(Json::obj(vec![
                ("kind", Json::str(r.kind_str())),
                ("contract", Json::str(r.contract_str())),
            ])),
        }
    }
}

/// One distinct final register outcome (a multiset row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutcomeRow {
    /// How many distinct terminated configurations share these values.
    pub count: usize,
    /// `threads[i]` is thread `i + 1`'s written registers.
    pub threads: Vec<Vec<(RegId, Val)>>,
    /// A witness schedule (rendered steps), when traces were requested.
    pub witness: Option<Vec<String>>,
}

impl OutcomeRow {
    /// Renders the row like the CLI does: `{ t1.r0=1, t2.r0=1 }` with
    /// zero-valued registers elided.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, regs) in self.threads.iter().enumerate() {
            for (r, v) in regs {
                if *v != 0 {
                    parts.push(format!("t{}.r{}={v}", i + 1, r.0));
                }
            }
        }
        if parts.is_empty() {
            "{ all registers 0 }".to_string()
        } else {
            format!("{{ {} }}", parts.join(", "))
        }
    }
}

/// Outcome-enumeration report.
#[derive(Clone, Debug)]
pub struct OutcomesReport {
    /// Request metadata.
    pub meta: Meta,
    /// Exploration stats.
    pub stats: Stats,
    /// The distinct final register outcomes (deterministically sorted).
    pub outcomes: Vec<OutcomeRow>,
    /// Finals failing the RA validity axioms (Theorem 4.4 self-check;
    /// always 0 unless the semantics has a soundness bug, and only
    /// computed under [`ModelChoice::Ra`]).
    pub invalid_finals: usize,
    /// DOT renderings of the first `n` final executions (when requested).
    pub dot: Vec<String>,
}

/// Count-only report.
#[derive(Clone, Debug)]
pub struct CountReport {
    /// Request metadata.
    pub meta: Meta,
    /// Exploration stats.
    pub stats: Stats,
}

/// One invariant violation.
#[derive(Clone, Debug)]
pub struct ViolationRow {
    /// Program counters of the violating configuration.
    pub pcs: Vec<Option<u32>>,
    /// Rendered counterexample trace (empty if traces were suppressed).
    pub trace: Vec<String>,
}

/// Invariant-checking report.
#[derive(Clone, Debug)]
pub struct InvariantReport {
    /// Request metadata.
    pub meta: Meta,
    /// Exploration stats.
    pub stats: Stats,
    /// The invariant's name.
    pub invariant: String,
    /// `true` iff no reachable configuration violated it (up to bounds —
    /// see `stats.truncated`).
    pub holds: bool,
    /// The violations found.
    pub violations: Vec<ViolationRow>,
}

/// Litmus-verdict report (RA vs SC).
#[derive(Clone, Debug)]
pub struct LitmusVerdictReport {
    /// Request metadata (`meta.model` is nominal: this mode always runs
    /// both RA and SC).
    pub meta: Meta,
    /// Test name.
    pub name: String,
    /// Expected verdict under RA.
    pub expect_ra: Verdict,
    /// Expected verdict under SC.
    pub expect_sc: Verdict,
    /// Outcome observed under RA?
    pub observed_ra: bool,
    /// Outcome observed under SC?
    pub observed_sc: bool,
    /// RA exploration stats.
    pub ra: Stats,
    /// SC exploration stats.
    pub sc: Stats,
    /// Verdicts matched expectations?
    pub pass: bool,
}

/// The unified response: one enum, every engine and question.
#[derive(Clone, Debug)]
pub enum CheckReport {
    /// Final register outcomes.
    Outcomes(OutcomesReport),
    /// State count only.
    Count(CountReport),
    /// Invariant verdict with counterexamples.
    Invariant(InvariantReport),
    /// Litmus verdict (RA vs SC).
    Litmus(LitmusVerdictReport),
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Allowed => "allowed",
        Verdict::Forbidden => "forbidden",
    }
}

fn stats_json(s: &Stats) -> Json {
    let mut pairs = vec![
        ("unique", Json::from(s.unique)),
        ("generated", Json::from(s.generated)),
        ("finals", Json::from(s.finals)),
        ("truncated", Json::from(s.truncated)),
        ("stuck", Json::from(s.stuck)),
        ("wall_micros", Json::from(s.wall_micros)),
    ];
    // Only interrupted runs carry the key — clean reports' stats objects
    // stay byte-identical to previous schema emissions.
    if let Some(why) = s.interrupt {
        pairs.push(("interrupt", Json::str(why.as_str())));
    }
    // Likewise only non-default storage (a non-flat --store or symmetry
    // quotienting) carries the block, so default-run reports and
    // persisted snapshots keep their shape.
    if let Some(st) = s.store {
        pairs.push((
            "store",
            Json::obj(vec![
                ("kind", Json::str(st.kind.name())),
                ("symmetry", Json::from(st.sym)),
                ("bytes_resident", Json::from(st.bytes_resident)),
                ("nodes", Json::from(st.nodes)),
                ("dedup_hits", Json::from(st.dedup_hits)),
            ]),
        ));
    }
    Json::obj(pairs)
}

impl CheckReport {
    /// The report's stats (RA + SC merged for litmus verdicts).
    pub fn stats(&self) -> Stats {
        match self {
            CheckReport::Outcomes(r) => r.stats,
            CheckReport::Count(r) => r.stats,
            CheckReport::Invariant(r) => r.stats,
            CheckReport::Litmus(r) => r.ra.merged(&r.sc),
        }
    }

    /// The report's request metadata.
    pub fn meta(&self) -> Meta {
        match self {
            CheckReport::Outcomes(r) => r.meta,
            CheckReport::Count(r) => r.meta,
            CheckReport::Invariant(r) => r.meta,
            CheckReport::Litmus(r) => r.meta,
        }
    }

    /// `true` iff this report came from a session's result cache.
    pub fn cache_hit(&self) -> bool {
        self.meta().cache_hit
    }

    /// Stamps the cache-hit flag (used by [`Session`] when serving a
    /// cached report).
    pub(crate) fn set_cache_hit(&mut self, hit: bool) {
        let meta = match self {
            CheckReport::Outcomes(r) => &mut r.meta,
            CheckReport::Count(r) => &mut r.meta,
            CheckReport::Invariant(r) => &mut r.meta,
            CheckReport::Litmus(r) => &mut r.meta,
        };
        meta.cache_hit = hit;
    }

    /// The mode tag used in the JSON encoding.
    pub fn mode_str(&self) -> &'static str {
        match self {
            CheckReport::Outcomes(_) => "outcomes",
            CheckReport::Count(_) => "count",
            CheckReport::Invariant(_) => "invariant",
            CheckReport::Litmus(_) => "litmus",
        }
    }

    /// The report's budget verdict: `None` for a complete (or merely
    /// bound-truncated) run, `Some` when the deadline or a cancellation
    /// cut the exploration short.
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.stats().interrupt
    }

    /// The `"status"` word the `c11check/v1` encoding carries: `"ok"`
    /// for complete and bound-truncated runs, `"timed_out"`/`"cancelled"`
    /// when the budget tripped. (Service-level `"error"`/`"overloaded"`
    /// lines are emitted by `c11serve` for requests that never produced
    /// a report.)
    pub fn status_str(&self) -> &'static str {
        match self.interrupt() {
            None => "ok",
            Some(why) => why.as_str(),
        }
    }

    /// Renders the report as a single-line JSON document
    /// (`c11check/v1` schema; see README § JSON report schema). Offline
    /// hand-rolled writer — no serde.
    pub fn to_json(&self) -> String {
        self.json_value().render()
    }

    /// The report as a [`Json`] tree (for embedding in larger documents,
    /// e.g. the CLI's litmus-directory array).
    pub fn json_value(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("schema", Json::str("c11check/v1")),
            ("status", Json::str(self.status_str())),
            ("mode", Json::str(self.mode_str())),
        ];
        match self {
            CheckReport::Outcomes(r) => {
                pairs.push(("model", Json::str(r.meta.model.as_str())));
                pairs.push(("backend", r.meta.backend_json()));
                if let Some(red) = r.meta.reduction_json() {
                    pairs.push(("reduction", red));
                }
                pairs.push(("cache_hit", Json::from(r.meta.cache_hit)));
                pairs.push(("stats", stats_json(&r.stats)));
                pairs.push(("invalid_finals", Json::from(r.invalid_finals)));
                let rows = r
                    .outcomes
                    .iter()
                    .map(|row| {
                        let threads = row
                            .threads
                            .iter()
                            .enumerate()
                            .map(|(i, regs)| {
                                let regs_obj = Json::Obj(
                                    regs.iter()
                                        .map(|(r, v)| (format!("r{}", r.0), Json::from(*v)))
                                        .collect(),
                                );
                                Json::obj(vec![("thread", Json::from(i + 1)), ("regs", regs_obj)])
                            })
                            .collect();
                        let mut row_pairs = vec![
                            ("count", Json::from(row.count)),
                            ("threads", Json::Arr(threads)),
                        ];
                        if let Some(w) = &row.witness {
                            row_pairs
                                .push(("witness", Json::Arr(w.iter().map(Json::str).collect())));
                        }
                        Json::obj(row_pairs)
                    })
                    .collect();
                pairs.push(("outcomes", Json::Arr(rows)));
                if !r.dot.is_empty() {
                    pairs.push(("dot", Json::Arr(r.dot.iter().map(Json::str).collect())));
                }
            }
            CheckReport::Count(r) => {
                pairs.push(("model", Json::str(r.meta.model.as_str())));
                pairs.push(("backend", r.meta.backend_json()));
                if let Some(red) = r.meta.reduction_json() {
                    pairs.push(("reduction", red));
                }
                pairs.push(("cache_hit", Json::from(r.meta.cache_hit)));
                pairs.push(("stats", stats_json(&r.stats)));
            }
            CheckReport::Invariant(r) => {
                pairs.push(("model", Json::str(r.meta.model.as_str())));
                pairs.push(("backend", r.meta.backend_json()));
                if let Some(red) = r.meta.reduction_json() {
                    pairs.push(("reduction", red));
                }
                pairs.push(("cache_hit", Json::from(r.meta.cache_hit)));
                pairs.push(("stats", stats_json(&r.stats)));
                pairs.push(("invariant", Json::str(&r.invariant)));
                pairs.push(("holds", Json::from(r.holds)));
                let rows = r
                    .violations
                    .iter()
                    .map(|v| {
                        Json::obj(vec![
                            (
                                "pcs",
                                Json::Arr(
                                    v.pcs
                                        .iter()
                                        .map(|pc| pc.map(Json::from).unwrap_or(Json::Null))
                                        .collect(),
                                ),
                            ),
                            ("trace", Json::Arr(v.trace.iter().map(Json::str).collect())),
                        ])
                    })
                    .collect();
                pairs.push(("violations", Json::Arr(rows)));
            }
            CheckReport::Litmus(r) => {
                pairs.push(("backend", r.meta.backend_json()));
                if let Some(red) = r.meta.reduction_json() {
                    pairs.push(("reduction", red));
                }
                pairs.push(("cache_hit", Json::from(r.meta.cache_hit)));
                pairs.push(("name", Json::str(&r.name)));
                pairs.push(("expect_ra", Json::str(verdict_str(r.expect_ra))));
                pairs.push(("expect_sc", Json::str(verdict_str(r.expect_sc))));
                pairs.push(("observed_ra", Json::from(r.observed_ra)));
                pairs.push(("observed_sc", Json::from(r.observed_sc)));
                pairs.push(("pass", Json::from(r.pass)));
                pairs.push(("ra", stats_json(&r.ra)));
                pairs.push(("sc", stats_json(&r.sc)));
            }
        }
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: &str = "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }";

    #[test]
    fn outcomes_sequential_and_parallel_agree() {
        let seq = CheckRequest::program(SB).run().unwrap();
        let par = CheckRequest::program(SB)
            .backend(Backend::Parallel { workers: 4 })
            .run()
            .unwrap();
        let (CheckReport::Outcomes(a), CheckReport::Outcomes(b)) = (&seq, &par) else {
            panic!("expected outcome reports");
        };
        assert_eq!(a.stats.unique, b.stats.unique);
        assert_eq!(a.stats.finals, b.stats.finals);
        // The deterministic multiset rows must be identical.
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.invalid_finals, 0);
    }

    #[test]
    fn outcomes_with_witness_traces() {
        let report = CheckRequest::program(SB).traces(true).run().unwrap();
        let CheckReport::Outcomes(o) = report else {
            panic!()
        };
        assert!(o.outcomes.iter().all(|r| r.witness.is_some()));
        let w = o.outcomes[0].witness.as_ref().unwrap();
        assert!(w.iter().any(|s| s.starts_with("t1:")));
    }

    #[test]
    fn count_mode_matches_outcomes_unique() {
        let a = CheckRequest::program(SB).run().unwrap();
        let b = CheckRequest::program(SB)
            .mode(Mode::CountOnly)
            .run()
            .unwrap();
        assert_eq!(a.stats().unique, b.stats().unique);
        assert!(matches!(b, CheckReport::Count(_)));
    }

    #[test]
    fn sc_model_shrinks_the_outcome_set() {
        let ra = CheckRequest::program(SB).run().unwrap();
        let sc = CheckRequest::program(SB)
            .model(ModelChoice::Sc)
            .run()
            .unwrap();
        let (CheckReport::Outcomes(ra), CheckReport::Outcomes(sc)) = (&ra, &sc) else {
            panic!()
        };
        // SB: RA allows 0/0, SC forbids it — strictly fewer SC outcomes.
        assert!(sc.outcomes.len() < ra.outcomes.len());
    }

    const SB_LABELED: &str = "vars x y;
         thread t1 { 1: x := 1; 2: r0 <- y; }
         thread t2 { 1: y := 1; 2: r0 <- x; }";

    #[test]
    fn invariant_mode_finds_violations_with_traces() {
        // "Both threads are never at line 2 together" fails on SB (they
        // can both be between their write and their read).
        let inv = Invariant::new("never-both-at-2", |v: &ConfigView| {
            !(v.pc(ThreadId(1)) == Some(2) && v.pc(ThreadId(2)) == Some(2))
        });
        let report = CheckRequest::program(SB_LABELED)
            .mode(Mode::Invariant(inv))
            .run()
            .unwrap();
        let CheckReport::Invariant(r) = report else {
            panic!()
        };
        assert!(!r.holds);
        assert!(!r.violations.is_empty());
        assert!(!r.violations[0].trace.is_empty(), "traces on by default");
    }

    #[test]
    fn invariant_mode_parallel_agrees_on_verdict() {
        let mk = || {
            Invariant::new("never-both-at-2", |v: &ConfigView| {
                !(v.pc(ThreadId(1)) == Some(2) && v.pc(ThreadId(2)) == Some(2))
            })
        };
        let seq = CheckRequest::program(SB_LABELED)
            .mode(Mode::Invariant(mk()))
            .run()
            .unwrap();
        let par = CheckRequest::program(SB_LABELED)
            .mode(Mode::Invariant(mk()))
            .backend(Backend::Parallel { workers: 2 })
            .run()
            .unwrap();
        let (CheckReport::Invariant(a), CheckReport::Invariant(b)) = (&seq, &par) else {
            panic!()
        };
        assert_eq!(a.holds, b.holds);
        assert!(!a.holds, "RA allows the SB weak outcome");
    }

    #[test]
    fn litmus_mode_reproduces_runner_verdicts() {
        for test in c11_litmus::corpus().into_iter().take(3) {
            let expect = c11_litmus::run_test(&test);
            let report = CheckRequest::litmus(test).run().unwrap();
            let CheckReport::Litmus(r) = report else {
                panic!()
            };
            assert_eq!(r.pass, expect.pass, "{}", r.name);
            assert_eq!(r.observed_ra, expect.observed_ra, "{}", r.name);
        }
    }

    #[test]
    fn litmus_mode_honours_bounds_override() {
        // A forbidden test re-checked at a tiny event bound must come
        // back truncated (the verdict is only valid up to the bound).
        let test = c11_litmus::corpus()
            .into_iter()
            .find(|t| t.name == "MP-ra")
            .unwrap();
        let report = CheckRequest::litmus(test)
            .bounds(Bounds::default().max_events(3))
            .run()
            .unwrap();
        let CheckReport::Litmus(r) = report else {
            panic!()
        };
        assert!(r.ra.truncated, ".bounds(..) must override the test bound");
    }

    #[test]
    fn litmus_mode_requires_litmus_input() {
        let err = CheckRequest::program(SB).mode(Mode::LitmusVerdict).run();
        assert!(matches!(err, Err(CheckError::Unsupported(_))));
    }

    #[test]
    fn parse_errors_surface() {
        let err = CheckRequest::program("vars x; thread t { y := 1; }").run();
        assert!(matches!(err, Err(CheckError::Parse(_))));
    }

    #[test]
    fn dot_renders_final_executions() {
        let report = CheckRequest::program("vars x; thread t { x := 1; }")
            .dot(2)
            .run()
            .unwrap();
        let CheckReport::Outcomes(o) = report else {
            panic!()
        };
        assert_eq!(o.dot.len(), 1, "one final execution");
        assert!(o.dot[0].contains("digraph"));
    }

    #[test]
    fn json_is_stable_across_engines_and_reductions() {
        let mut reports = Vec::new();
        for (engine, reduction) in [
            (Engine::Sequential, Reduction::None),
            (Engine::Parallel { workers: 4 }, Reduction::None),
            (Engine::Sequential, Reduction::SleepSet),
        ] {
            let r = CheckRequest::program(SB)
                .engine(engine)
                .reduction(reduction)
                .run()
                .unwrap();
            let CheckReport::Outcomes(mut o) = r else {
                panic!()
            };
            // Stats carry wall time, work counters (reductions generate
            // fewer) and engine identity — normalise.
            o.stats = Stats::default();
            o.meta.engine = Engine::Sequential;
            o.meta.reduction = Reduction::None;
            reports.push(CheckReport::Outcomes(o).to_json());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert!(reports[0].contains("\"schema\":\"c11check/v1\""));
    }

    #[test]
    fn sleep_set_reduction_reports_identical_outcomes_with_less_work() {
        let seq = CheckRequest::program(SB).run().unwrap();
        let dpor = CheckRequest::program(SB)
            .reduction(Reduction::SleepSet)
            .run()
            .unwrap();
        let (CheckReport::Outcomes(a), CheckReport::Outcomes(b)) = (&seq, &dpor) else {
            panic!("expected outcome reports");
        };
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(
            a.stats.unique, b.stats.unique,
            "sleep sets keep every state"
        );
        assert!(
            b.stats.generated < a.stats.generated,
            "SB's independent first writes must let siblings sleep"
        );
        assert_eq!(b.meta.engine, Engine::Sequential);
        assert_eq!(b.meta.reduction, Reduction::SleepSet);
        assert!(dpor
            .to_json()
            .contains("\"backend\":{\"kind\":\"sequential\"}"));
        assert!(dpor
            .to_json()
            .contains("\"reduction\":{\"kind\":\"sleep-set\",\"contract\":\"exhaustive\"}"));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_dpor_backend_shims_to_sequential_sleep_set() {
        let report = CheckRequest::program(SB)
            .backend(Backend::Dpor)
            .run()
            .unwrap();
        let meta = report.meta();
        assert_eq!(meta.engine, Engine::Sequential);
        assert_eq!(meta.reduction, Reduction::SleepSet);
        assert_eq!(Backend::Dpor.engine(), Engine::Sequential);
        assert_eq!(Backend::Dpor.reduction(), Reduction::SleepSet);
        assert_eq!(
            Backend::Parallel { workers: 3 }.engine(),
            Engine::Parallel { workers: 3 }
        );
        assert_eq!(Backend::Sequential.reduction(), Reduction::None);
    }

    #[test]
    fn source_set_reduction_upholds_the_finals_only_contract() {
        let seq = CheckRequest::program(SB).run().unwrap();
        let src = CheckRequest::program(SB)
            .reduction(Reduction::SourceSet)
            .run()
            .unwrap();
        let (CheckReport::Outcomes(a), CheckReport::Outcomes(b)) = (&seq, &src) else {
            panic!("expected outcome reports");
        };
        // Finals-only contract: identical outcome multisets and
        // validity, intentionally fewer states visited and generated.
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(b.invalid_finals, 0);
        assert!(b.stats.unique <= a.stats.unique);
        assert!(b.stats.generated < a.stats.generated);
        assert!(src
            .to_json()
            .contains("\"reduction\":{\"kind\":\"source-set\",\"contract\":\"finals-only\"}"));
    }

    #[test]
    fn parallel_engine_rejects_reductions() {
        for reduction in [Reduction::SleepSet, Reduction::SourceSet] {
            let err = CheckRequest::program(SB)
                .engine(Engine::Parallel { workers: 2 })
                .reduction(reduction)
                .run();
            let Err(CheckError::Unsupported(msg)) = err else {
                panic!("parallel × {reduction:?} must be rejected");
            };
            assert!(msg.contains(reduction.kind_str()), "{msg}");
        }
    }

    #[test]
    fn invariant_mode_downgrades_source_set_to_sleep_set() {
        // Invariants inspect every reachable configuration; the
        // finals-only contract cannot answer them, so the request is
        // answered exhaustively (and says so in its meta).
        let inv = Invariant::new("never-both-at-2", |v: &ConfigView| {
            !(v.pc(ThreadId(1)) == Some(2) && v.pc(ThreadId(2)) == Some(2))
        });
        let report = CheckRequest::program(SB_LABELED)
            .mode(Mode::Invariant(inv))
            .reduction(Reduction::SourceSet)
            .run()
            .unwrap();
        let CheckReport::Invariant(r) = &report else {
            panic!()
        };
        assert_eq!(report.meta().reduction, Reduction::SleepSet);
        assert!(!r.holds, "RA allows the SB weak outcome");
    }
}
