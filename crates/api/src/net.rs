//! The `c11netd` wire protocol and the request/response vocabulary the
//! service front-ends (`c11serve` over stdio, `c11netd` over TCP) share.
//!
//! ## Frame layout
//!
//! One frame = a 4-byte big-endian payload length followed by exactly
//! that many payload bytes. The payload is one `c11check/v1` JSON
//! document — a request line going in, a report line coming out — with
//! no trailing newline. Frames are capped at [`MAX_FRAME_BYTES`]
//! (mirroring `c11serve`'s line cap): a longer length prefix is a
//! protocol error, and since the stream cannot be resynchronised after
//! one, the connection must be closed after answering.
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (BE)  | payload: len bytes (JSON) |
//! +----------------+---------------------------+
//! ```
//!
//! [`read_frame`] distinguishes an *idle* timeout (no bytes of the next
//! frame arrived before the socket's read timeout — the server polls its
//! shutdown flag and keeps waiting) from a *mid-frame* timeout (the peer
//! stalled halfway through a frame it started — a slow-client error that
//! closes the connection).
//!
//! ## Requests
//!
//! [`request_from_json`] is the one parser behind both front-ends: it
//! turns a request object (the schema documented in the README and on
//! `c11serve`) into a [`CheckRequest`]. [`stats_request`] recognises the
//! `{"stats": true}` control object, answered with [`stats_line`]
//! instead of a report. The response builders ([`report_line`],
//! [`error_line`], [`overloaded_line`]) render the exact line `c11serve`
//! has always emitted, so the two transports stay byte-compatible.

use crate::json::Json;
use crate::session::SessionStats;
use crate::{Bounds, CheckReport, CheckRequest, Engine, Mode, ModelChoice, Reduction, StoreKind};
use c11_litmus::{load_litmus_file, parse_litmus};
use std::io::{ErrorKind, Read, Write};

/// Longest accepted frame payload (1 MiB, matching `c11serve`'s line
/// cap); a length prefix past this is a protocol error.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// The outcome of one [`read_frame`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameIn {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The socket's read timeout expired with no bytes of the next frame
    /// read — the connection is merely idle. Callers poll their shutdown
    /// flag and call again.
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    // Unix reports an expired SO_RCVTIMEO as WouldBlock, Windows as
    // TimedOut; treat both as the timeout they are.
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one length-prefixed frame. Errors are protocol violations
/// (oversized length, mid-frame EOF/timeout) or genuine I/O failures;
/// after any of them the stream cannot be resynchronised, so the caller
/// should answer once (best effort) and close.
pub fn read_frame(r: &mut impl Read) -> Result<FrameIn, String> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameIn::Eof)
                } else {
                    Err(format!(
                        "connection closed mid-header ({got} of 4 length bytes)"
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return if got == 0 {
                    Ok(FrameIn::Idle)
                } else {
                    Err(format!(
                        "read timed out mid-header ({got} of 4 length bytes)"
                    ))
                };
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(format!(
                    "connection closed mid-frame ({got} of {len} payload bytes)"
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(format!(
                    "read timed out mid-frame ({got} of {len} payload bytes)"
                ));
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    Ok(FrameIn::Frame(payload))
}

/// Writes one length-prefixed frame and flushes. Payloads past
/// [`MAX_FRAME_BYTES`] are refused — the peer would reject them anyway.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Builds a [`CheckRequest`] from a parsed request object (the
/// `c11check/v1` request schema both `c11serve` lines and `c11netd`
/// frames carry). Errors are strings destined for the error response.
pub fn request_from_json(v: &Json) -> Result<CheckRequest, String> {
    let obj = v.as_obj().ok_or("request must be a JSON object")?;
    const KNOWN: [&str; 15] = [
        "id",
        "program",
        "litmus_path",
        "litmus_source",
        "model",
        "mode",
        "engine",
        "reduction",
        "backend",
        "bounds",
        "store",
        "symmetry",
        "traces",
        "dot",
        "timeout_ms",
    ];
    for (key, _) in obj {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?}"));
        }
    }
    let program = v.get("program");
    let litmus_path = v.get("litmus_path");
    let litmus_source = v.get("litmus_source");
    let inputs = [program, litmus_path, litmus_source]
        .iter()
        .filter(|i| i.is_some())
        .count();
    if inputs != 1 {
        return Err(
            "exactly one of \"program\", \"litmus_path\", \"litmus_source\" is required"
                .to_string(),
        );
    }
    let is_litmus = program.is_none();
    let mut req = if let Some(src) = program {
        let src = src.as_str().ok_or("\"program\" must be a string")?;
        CheckRequest::program(src)
    } else if let Some(path) = litmus_path {
        let path = path.as_str().ok_or("\"litmus_path\" must be a string")?;
        let test = load_litmus_file(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        CheckRequest::litmus(test)
    } else {
        let src = litmus_source
            .unwrap()
            .as_str()
            .ok_or("\"litmus_source\" must be a string")?;
        let test = parse_litmus(src).map_err(|e| e.to_string())?;
        CheckRequest::litmus(test)
    };
    if let Some(model) = v.get("model") {
        req = req.model(match model.as_str() {
            Some("ra") => ModelChoice::Ra,
            Some("sc") => ModelChoice::Sc,
            Some("pre-execution") => ModelChoice::PreExecution,
            _ => return Err("\"model\" must be \"ra\", \"sc\" or \"pre-execution\"".to_string()),
        });
    }
    if let Some(mode) = v.get("mode") {
        req = req.mode(match mode.as_str() {
            Some("outcomes") => Mode::Outcomes,
            Some("count") => Mode::CountOnly,
            Some("litmus") if is_litmus => Mode::LitmusVerdict,
            Some("litmus") => {
                return Err("\"litmus\" mode needs a litmus_path/litmus_source input".to_string());
            }
            _ => return Err("\"mode\" must be \"outcomes\", \"count\" or \"litmus\"".to_string()),
        });
    }
    if let Some(backend) = v.get("backend") {
        // The legacy single-axis spelling, kept one deprecation cycle.
        // Two sub-spellings: the bare kind string ("backend":"dpor") or
        // the old report-schema object
        // ("backend":{"kind":"parallel","workers":4}). "dpor" shims to
        // the sequential engine with the sleep-set reduction.
        if v.get("engine").is_some() || v.get("reduction").is_some() {
            return Err(
                "\"backend\" is the legacy spelling of \"engine\"/\"reduction\"; send one or the other"
                    .to_string(),
            );
        }
        req = if let Some(kind) = backend.as_str() {
            match kind {
                "sequential" => req.engine(Engine::Sequential),
                "dpor" => req.reduction(Reduction::SleepSet),
                "parallel" => req.engine(Engine::Parallel { workers: 2 }),
                _ => {
                    return Err(
                        "\"backend\" must be \"sequential\", \"parallel\" or \"dpor\"".into(),
                    );
                }
            }
        } else {
            let fields = backend.as_obj().ok_or("\"backend\" must be an object")?;
            for (key, _) in fields {
                if key != "kind" && key != "workers" {
                    return Err(format!("unknown \"backend\" key {key:?}"));
                }
            }
            match backend.get("kind").and_then(Json::as_str) {
                Some("sequential") => req.engine(Engine::Sequential),
                Some("dpor") => req.reduction(Reduction::SleepSet),
                Some("parallel") => req.engine(Engine::Parallel {
                    workers: backend
                        .get("workers")
                        .and_then(Json::as_usize)
                        .ok_or("parallel backend needs integer \"workers\"")?,
                }),
                _ => {
                    return Err(
                        "\"backend\".\"kind\" must be \"sequential\", \"parallel\" or \"dpor\""
                            .into(),
                    );
                }
            }
        };
    }
    if let Some(engine) = v.get("engine") {
        // Same two spellings as the report's "backend" block: a bare
        // kind string or {"kind", "workers"}.
        req = if let Some(kind) = engine.as_str() {
            match kind {
                "sequential" => req.engine(Engine::Sequential),
                "parallel" => req.engine(Engine::Parallel { workers: 2 }),
                _ => return Err("\"engine\" must be \"sequential\" or \"parallel\"".into()),
            }
        } else {
            let fields = engine.as_obj().ok_or("\"engine\" must be an object")?;
            for (key, _) in fields {
                if key != "kind" && key != "workers" {
                    return Err(format!("unknown \"engine\" key {key:?}"));
                }
            }
            match engine.get("kind").and_then(Json::as_str) {
                Some("sequential") => req.engine(Engine::Sequential),
                Some("parallel") => req.engine(Engine::Parallel {
                    workers: engine
                        .get("workers")
                        .and_then(Json::as_usize)
                        .ok_or("parallel engine needs integer \"workers\"")?,
                }),
                _ => {
                    return Err("\"engine\".\"kind\" must be \"sequential\" or \"parallel\"".into());
                }
            }
        };
    }
    if let Some(reduction) = v.get("reduction") {
        // A bare kind string or the report-schema {"kind", "contract"}
        // object (the contract is derived; a stated one must agree).
        let kind = if let Some(kind) = reduction.as_str() {
            kind
        } else {
            let fields = reduction
                .as_obj()
                .ok_or("\"reduction\" must be an object")?;
            for (key, _) in fields {
                if key != "kind" && key != "contract" {
                    return Err(format!("unknown \"reduction\" key {key:?}"));
                }
            }
            reduction
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("\"reduction\" needs a string \"kind\"")?
        };
        let parsed = match kind {
            "none" => Reduction::None,
            "sleep-set" => Reduction::SleepSet,
            "source-set" => Reduction::SourceSet,
            _ => {
                return Err(
                    "\"reduction\" must be \"none\", \"sleep-set\" or \"source-set\"".into(),
                );
            }
        };
        if let Some(stated) = reduction.get("contract") {
            if stated.as_str() != Some(parsed.contract_str()) {
                return Err(format!(
                    "\"reduction\" contract disagrees with kind {kind:?} (its contract is {:?})",
                    parsed.contract_str()
                ));
            }
        }
        req = req.reduction(parsed);
    }
    if let Some(bounds) = v.get("bounds") {
        // Strictly validated like the top level: a typo'd or mis-typed
        // bound must error, not silently run with defaults.
        let fields = bounds.as_obj().ok_or("\"bounds\" must be an object")?;
        let allowed: &[&str] = if is_litmus {
            // Litmus requests seed max_events from the test itself; the
            // other bounds govern both models at once and are not
            // overridable per request line.
            &["max_events"]
        } else {
            &["max_events", "max_states", "max_depth"]
        };
        let mut b = Bounds::default();
        for (key, value) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(if is_litmus {
                    format!("litmus \"bounds\" may only set \"max_events\", got {key:?}")
                } else {
                    format!("unknown \"bounds\" key {key:?}")
                });
            }
            let n = value
                .as_usize()
                .ok_or_else(|| format!("\"bounds\".{key:?} must be an integer"))?;
            b = match key.as_str() {
                "max_events" => b.max_events(n),
                "max_states" => b.max_states(n),
                _ => b.max_depth(n),
            };
        }
        if !fields.is_empty() {
            req = req.bounds(b);
        }
    }
    if let Some(store) = v.get("store") {
        req = req.store(
            store
                .as_str()
                .and_then(StoreKind::parse)
                .ok_or("\"store\" must be \"flat\", \"sym\" or \"shared\"")?,
        );
    }
    if let Some(sym) = v.get("symmetry") {
        req = req.symmetry(sym.as_bool().ok_or("\"symmetry\" must be a boolean")?);
    }
    if let Some(traces) = v.get("traces") {
        req = req.traces(traces.as_bool().ok_or("\"traces\" must be a boolean")?);
    }
    if let Some(dot) = v.get("dot") {
        req = req.dot(dot.as_usize().ok_or("\"dot\" must be an integer")?);
    }
    if let Some(t) = v.get("timeout_ms") {
        let ms = t.as_usize().ok_or("\"timeout_ms\" must be an integer")?;
        req = req.timeout(std::time::Duration::from_millis(ms as u64));
    }
    Ok(req)
}

/// Recognises the `{"stats": true}` control object (optionally carrying
/// an `id`). `None` when the object is not a stats request at all;
/// `Some(Err)` when it carries a `stats` key but is malformed — a
/// request must never be half-interpreted as a control message.
pub fn stats_request(v: &Json) -> Option<Result<(), String>> {
    v.get("stats")?;
    let check = || {
        if let Some(obj) = v.as_obj() {
            for (key, _) in obj {
                if key != "stats" && key != "id" {
                    return Err(format!("unknown key {key:?} in stats request"));
                }
            }
        }
        match v.get("stats").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err("\"stats\" must be the boolean true".to_string()),
        }
    };
    Some(check())
}

/// The error response both front-ends emit for a request that never
/// produced a report.
pub fn error_line(id: &str, msg: &str) -> String {
    Json::obj(vec![
        ("schema", Json::str("c11check/v1")),
        ("id", Json::str(id)),
        ("status", Json::str("error")),
        ("error", Json::str(msg)),
    ])
    .render()
}

/// The backpressure response for a submission bounced by a full queue.
pub fn overloaded_line(id: &str) -> String {
    Json::obj(vec![
        ("schema", Json::str("c11check/v1")),
        ("id", Json::str(id)),
        ("status", Json::str("overloaded")),
        ("error", Json::str("submission queue is full, retry later")),
    ])
    .render()
}

/// The report response: the `c11check/v1` report object with `id`
/// inserted right after `schema` for scannability.
pub fn report_line(id: &str, report: &CheckReport) -> String {
    let Json::Obj(mut pairs) = report.json_value() else {
        unreachable!("reports are objects");
    };
    pairs.insert(1, ("id".to_string(), Json::str(id)));
    Json::Obj(pairs).render()
}

/// The `{"stats": true}` control response: the session's counters as a
/// `"mode":"session-stats"` object.
pub fn stats_line(id: &str, stats: &SessionStats) -> String {
    Json::obj(vec![
        ("schema", Json::str("c11check/v1")),
        ("id", Json::str(id)),
        ("status", Json::str("ok")),
        ("mode", Json::str("session-stats")),
        ("submitted", Json::from(stats.submitted)),
        ("completed", Json::from(stats.completed)),
        ("cache_hits", Json::from(stats.cache_hits)),
        ("explorations", Json::from(stats.explorations)),
        ("explorations_none", Json::from(stats.explorations_none)),
        (
            "explorations_sleep_set",
            Json::from(stats.explorations_sleep_set),
        ),
        (
            "explorations_source_set",
            Json::from(stats.explorations_source_set),
        ),
        ("errors", Json::from(stats.errors)),
        ("evictions", Json::from(stats.evictions)),
        ("overloaded", Json::from(stats.overloaded)),
        ("persist_loaded", Json::from(stats.persist_loaded)),
        ("persist_skipped", Json::from(stats.persist_skipped)),
        ("persist_locked", Json::from(stats.persist_locked)),
    ])
    .render()
}

/// SIGTERM/SIGINT → graceful drain, shared by `c11serve` and `c11netd`:
/// the front-end stops accepting input, finishes every job already
/// submitted, flushes the cache snapshot and prints its summary. Raw
/// `signal(2)` via the C library keeps this crate-free.
#[cfg(unix)]
pub mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the drain handler for SIGTERM and SIGINT (Ctrl-C gets
    /// the same graceful treatment an orchestrator's TERM does).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    /// `true` once either signal has been received.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
pub mod shutdown {
    /// No-op on non-Unix targets (drain still happens on EOF).
    pub fn install() {}
    /// Always `false` on non-Unix targets.
    pub fn requested() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"stats\":true}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "τ→π".as_bytes()).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameIn::Frame(b"{\"stats\":true}".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameIn::Frame(Vec::new()));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameIn::Frame("τ→π".as_bytes().to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameIn::Eof);
    }

    #[test]
    fn oversized_frames_are_refused_on_both_sides() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &vec![0u8; MAX_FRAME_BYTES + 1]).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
        // A hostile length prefix is rejected before allocating.
        let mut r = Cursor::new(((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn truncation_mid_header_and_mid_frame_errors() {
        // Two of four header bytes, then EOF.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).unwrap_err().contains("mid-header"));
        // A full header promising 8 bytes, only 3 delivered.
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let mut r = Cursor::new(bytes);
        assert!(read_frame(&mut r).unwrap_err().contains("mid-frame"));
    }

    /// A reader that times out after yielding a prefix, like a socket
    /// with SO_RCVTIMEO.
    struct TimeoutAfter {
        data: Vec<u8>,
        at: usize,
    }

    impl Read for TimeoutAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.data.len() {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "timed out"));
            }
            let n = buf.len().min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_at_a_frame_boundary_is_idle_but_mid_frame_is_an_error() {
        let mut idle = TimeoutAfter {
            data: Vec::new(),
            at: 0,
        };
        assert_eq!(read_frame(&mut idle).unwrap(), FrameIn::Idle);
        // Timing out with half a header read is a slow client, not idle.
        let mut stalled = TimeoutAfter {
            data: vec![0, 0],
            at: 0,
        };
        assert!(read_frame(&mut stalled)
            .unwrap_err()
            .contains("timed out mid-header"));
        let mut bytes = 64u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"partial payload");
        let mut mid = TimeoutAfter { data: bytes, at: 0 };
        assert!(read_frame(&mut mid)
            .unwrap_err()
            .contains("timed out mid-frame"));
    }

    #[test]
    fn request_parsing_accepts_programs_and_rejects_unknown_keys() {
        let ok = Json::parse(r#"{"id":"a","program":"vars x; thread t { x := 1; }"}"#).unwrap();
        assert!(request_from_json(&ok).is_ok());
        let bad = Json::parse(r#"{"program":"vars x; thread t { x := 1; }","frob":1}"#).unwrap();
        assert!(request_from_json(&bad).unwrap_err().contains("unknown key"));
        let none = Json::parse(r#"{"id":"a"}"#).unwrap();
        assert!(request_from_json(&none)
            .unwrap_err()
            .contains("exactly one of"));
    }

    #[test]
    fn engine_and_reduction_keys_parse_as_string_or_object() {
        let prog = r#""program":"vars x; thread t { x := 1; }""#;
        for ok in [
            format!(r#"{{{prog},"engine":"parallel"}}"#),
            format!(r#"{{{prog},"engine":{{"kind":"parallel","workers":4}}}}"#),
            format!(r#"{{{prog},"reduction":"source-set"}}"#),
            format!(r#"{{{prog},"reduction":{{"kind":"source-set"}}}}"#),
            format!(r#"{{{prog},"reduction":{{"kind":"sleep-set","contract":"exhaustive"}}}}"#),
            format!(r#"{{{prog},"engine":"sequential","reduction":"sleep-set"}}"#),
            // The legacy spelling still parses for one cycle.
            format!(r#"{{{prog},"backend":"dpor"}}"#),
        ] {
            let v = Json::parse(&ok).unwrap();
            assert!(request_from_json(&v).is_ok(), "{ok}");
        }
        for (bad, msg) in [
            (
                format!(r#"{{{prog},"engine":"dpor"}}"#),
                "\"sequential\" or \"parallel\"",
            ),
            (
                format!(r#"{{{prog},"reduction":"dpor"}}"#),
                "\"none\", \"sleep-set\" or \"source-set\"",
            ),
            (
                format!(
                    r#"{{{prog},"reduction":{{"kind":"source-set","contract":"exhaustive"}}}}"#
                ),
                "disagrees",
            ),
            (
                format!(r#"{{{prog},"backend":"dpor","reduction":"none"}}"#),
                "legacy",
            ),
        ] {
            let v = Json::parse(&bad).unwrap();
            let err = request_from_json(&v).unwrap_err();
            assert!(err.contains(msg), "{bad}: {err}");
        }
    }

    #[test]
    fn stats_control_objects_are_recognised_strictly() {
        let ok = Json::parse(r#"{"stats":true,"id":"s"}"#).unwrap();
        assert_eq!(stats_request(&ok), Some(Ok(())));
        // Not a stats request at all: fall through to request parsing.
        let other = Json::parse(r#"{"id":"a","program":"x"}"#).unwrap();
        assert_eq!(stats_request(&other), None);
        // Carrying the key but malformed: an error, never a request.
        for bad in [
            r#"{"stats":false}"#,
            r#"{"stats":1}"#,
            r#"{"stats":true,"program":"x"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(matches!(stats_request(&v), Some(Err(_))), "{bad}");
        }
    }

    #[test]
    fn stats_line_carries_every_counter() {
        let line = stats_line("st", &SessionStats::default());
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("session-stats"));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("st"));
        for key in [
            "submitted",
            "completed",
            "cache_hits",
            "explorations",
            "explorations_none",
            "explorations_sleep_set",
            "explorations_source_set",
            "errors",
            "evictions",
            "overloaded",
            "persist_loaded",
            "persist_skipped",
            "persist_locked",
        ] {
            assert_eq!(v.get(key).and_then(Json::as_usize), Some(0), "{key}");
        }
    }
}
