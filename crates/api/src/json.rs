//! A minimal hand-rolled JSON value tree and writer.
//!
//! The workspace builds offline (no serde); this mirrors the bench
//! harness's `--json` writer but as a reusable tree so reports can be
//! assembled compositionally. Output is deterministic: object keys are
//! emitted in insertion order, numbers are integers (the reports have no
//! floats), and strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (report counters; no floats needed).
    UInt(u128),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u128)
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u128)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_json() {
        let v = Json::obj(vec![
            ("name", Json::str("MP-ra")),
            ("pass", Json::Bool(true)),
            ("states", Json::from(42usize)),
            ("tags", Json::Arr(vec![Json::str("ra"), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"MP-ra","pass":true,"states":42,"tags":["ra",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
    }
}
