//! A minimal hand-rolled JSON value tree, writer and reader.
//!
//! The workspace builds offline (no serde); this mirrors the bench
//! harness's `--json` writer but as a reusable tree so reports can be
//! assembled compositionally. Output is deterministic: object keys are
//! emitted in insertion order, numbers are integers (the reports have no
//! floats), and strings are escaped per RFC 8259.
//!
//! [`Json::parse`] is the matching recursive-descent reader: it accepts
//! exactly the subset the writer emits (objects, arrays, strings,
//! unsigned integers, booleans, `null`) and is what the `c11serve`
//! front-end parses request lines with — floats, signed numbers and
//! duplicate object keys are rejected with positioned error messages.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (report counters; no floats needed).
    UInt(u128),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document (the subset [`Json::render`] emits).
    /// Rejects trailing garbage, floats/signed numbers and duplicate
    /// object keys; errors carry the byte offset they occurred at.
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            s: src.as_bytes(),
            i: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value as a `usize`, if this is a number that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u128().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u128)
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u128)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// A positioned JSON parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the source.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Nesting cap for [`Json::parse`]: the report schema is a handful of
/// levels deep, and an unbounded recursive-descent parser would let one
/// deeply-nested request line (`[[[[…`) overflow the stack and kill a
/// long-lived `c11serve` process instead of producing an error line.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .s
                .get(self.i)
                .ok_or_else(|| self.err("eof in string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| self.err("eof in escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates (paired or lone) are not emitted by
                            // the writer; reject rather than guess.
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("unsupported \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("bad escape {:?}", other as char)));
                        }
                    }
                }
                c => {
                    // Re-assemble the full UTF-8 sequence starting at `c`.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let bytes = self
                        .s
                        .get(start..start + len)
                        .ok_or_else(|| self.err("eof in string"))?;
                    self.i = start + len;
                    out.push_str(
                        std::str::from_utf8(bytes).map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected eof"))? {
            b'{' => {
                self.eat(b'{')?;
                let mut pairs: Vec<(String, Json)> = Vec::new();
                if self.peek() == Some(b'}') {
                    self.eat(b'}')?;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    if pairs.iter().any(|(existing, _)| *existing == k) {
                        return Err(self.err(format!("duplicate key {k:?}")));
                    }
                    self.eat(b':')?;
                    pairs.push((k, self.value()?));
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b'}')?;
                Ok(Json::Obj(pairs))
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.eat(b']')?;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b']')?;
                Ok(Json::Arr(items))
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            c if c.is_ascii_digit() => {
                let start = self.i;
                while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                    self.i += 1;
                }
                if let Some(b'.' | b'e' | b'E') = self.s.get(self.i) {
                    return Err(self.err("floats are not part of the schema"));
                }
                let n: u128 = std::str::from_utf8(&self.s[start..self.i])
                    .expect("digits are utf-8")
                    .parse()
                    .map_err(|_| self.err("number out of range"))?;
                Ok(Json::UInt(n))
            }
            b'-' => Err(self.err("negative numbers are not part of the schema")),
            c => Err(self.err(format!("unexpected {:?}", c as char))),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_json() {
        let v = Json::obj(vec![
            ("name", Json::str("MP-ra")),
            ("pass", Json::Bool(true)),
            ("states", Json::from(42usize)),
            ("tags", Json::Arr(vec![Json::str("ra"), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"MP-ra","pass":true,"states":42,"tags":["ra",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
    }
    #[test]
    fn parse_round_trips_the_writer_subset() {
        let v = Json::obj(vec![
            ("name", Json::str("MP-ra")),
            ("pass", Json::Bool(true)),
            ("none", Json::Null),
            ("states", Json::from(42usize)),
            ("weird", Json::str("\u{3c4} \"quoted\" \\ tab\tnl\n\u{1}")),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::from(7usize))])]),
            ),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("states").and_then(Json::as_usize), Some(42));
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("MP-ra"));
        assert_eq!(parsed.get("pass").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("nested").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "[1 2]",
            "1.5",
            "-3",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let err = Json::parse("{\"a\":1.5}").unwrap_err();
        assert!(err.to_string().contains("floats"), "{err}");
    }

    #[test]
    fn parse_caps_nesting_depth() {
        // Within the cap: fine.
        let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&shallow).is_ok());
        // A hostile deeply-nested line errors instead of overflowing
        // the stack (which would kill a long-lived c11serve process).
        let deep = "[".repeat(200_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\u{3c0}\u{2192}\u{3c4}\" , null ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("\u{3c0}\u{2192}\u{3c4}"));
    }
}
